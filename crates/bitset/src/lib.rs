//! # qbe-bitset — dense u64-word bitsets over interned ids
//!
//! Every learner in the workspace reasons about *sets of small integers*: document nodes
//! ([`qbe_xml::NodeId`]-style interned ids), graph vertices, indices into a cartesian product of
//! tuples, candidate paths. The interactive hot paths are dominated by set algebra over those
//! ids — intersect a match set with a constraint, subtract the newly determined region from the
//! candidate pool, count an overlap — and the paper-era representations (`BTreeSet`, sorted
//! `Vec`) pay a pointer chase or a branch per *element*.
//!
//! [`DenseSet`] stores the same sets as packed `u64` words, so every bulk operation is a
//! word-level kernel: intersection is `AND`, union is `OR`, difference is `AND NOT`, cardinality
//! is `popcount`, and membership is one shift. Sets over a universe of `n` ids cost `n/8` bytes
//! and their bulk operations touch `n/64` words — for the document and instance sizes the
//! learners see, whole match sets fit in a cache line or two.
//!
//! [`SetArena`] recycles the backing word buffers so a session that builds and discards
//! thousands of transient sets per round (the indexed twig evaluator, the incremental candidate
//! pools) allocates only at its high-water mark.
//!
//! Iteration order is always ascending id order, which is exactly the sorted order the
//! `BTreeSet`/sorted-`Vec` representations produced — the differential suites
//! (`tests/prop_bitset.rs` at the workspace root) pin the equivalence on hundreds of random
//! instances per model.
//!
//! ```
//! use qbe_bitset::DenseSet;
//!
//! // A set over a universe of 200 interned ids.
//! let mut evens: DenseSet = DenseSet::new(200);
//! for id in (0..200).step_by(2) {
//!     evens.insert(id);
//! }
//! let mut multiples_of_3: DenseSet = DenseSet::new(200);
//! for id in (0..200).step_by(3) {
//!     multiples_of_3.insert(id);
//! }
//!
//! // Intersection is a word-level AND; counting is popcount.
//! let mut both = evens.clone();
//! both.and_with(&multiples_of_3);
//! assert_eq!(both.len(), 34); // multiples of 6 in 0..200
//! assert_eq!(evens.intersection_len(&multiples_of_3), 34); // without materialising
//!
//! // Iteration yields ascending ids, like the sorted representations it replaces.
//! assert_eq!(both.iter().take(3).collect::<Vec<_>>(), vec![0, 6, 12]);
//! ```
//!
//! [`qbe_xml::NodeId`]: https://docs.rs/qbe-xml

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;

/// An id type a [`DenseSet`] can be indexed by: anything with a dense `usize` interning.
///
/// Implemented here for `usize` and `u32`; the model crates implement it for their interned id
/// newtypes (`NodeId`, `GNodeId`, …) so their sets are type-checked end to end.
pub trait DenseId: Copy {
    /// Rebuild the id from its dense index.
    fn from_index(index: usize) -> Self;
    /// The dense index of the id.
    fn index(self) -> usize;
}

impl DenseId for usize {
    fn from_index(index: usize) -> usize {
        index
    }
    fn index(self) -> usize {
        self
    }
}

impl DenseId for u32 {
    fn from_index(index: usize) -> u32 {
        index as u32
    }
    fn index(self) -> usize {
        self as usize
    }
}

/// A dense bitset over a fixed universe of interned ids.
///
/// All bulk operations ([`and_with`](DenseSet::and_with), [`or_with`](DenseSet::or_with),
/// [`and_not_with`](DenseSet::and_not_with), [`len`](DenseSet::len),
/// [`intersection_len`](DenseSet::intersection_len)) are word-level kernels over the packed
/// `u64` representation. Two sets can be combined only when they share a universe size (checked
/// by assertion — mixing sets over different documents is a logic error).
///
/// ```
/// use qbe_bitset::DenseSet;
///
/// let mut s: DenseSet = DenseSet::new(70);
/// assert!(s.insert(69));
/// assert!(!s.insert(69), "already present");
/// assert!(s.contains(69));
/// assert_eq!(s.len(), 1);
/// s.remove(69);
/// assert!(s.is_empty());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DenseSet<T: DenseId = usize> {
    words: Vec<u64>,
    universe: usize,
    _ids: PhantomData<T>,
}

impl<T: DenseId> DenseSet<T> {
    /// The empty set over a universe of `universe` ids (`0..universe`).
    pub fn new(universe: usize) -> DenseSet<T> {
        DenseSet {
            words: vec![0u64; universe.div_ceil(64)],
            universe,
            _ids: PhantomData,
        }
    }

    /// The full set: every id in `0..universe`.
    pub fn full(universe: usize) -> DenseSet<T> {
        let mut set = DenseSet {
            words: vec![u64::MAX; universe.div_ceil(64)],
            universe,
            _ids: PhantomData,
        };
        set.mask_tail();
        set
    }

    /// Collect ids into a set over the given universe.
    pub fn from_ids(universe: usize, ids: impl IntoIterator<Item = T>) -> DenseSet<T> {
        let mut set = DenseSet::new(universe);
        for id in ids {
            set.insert(id);
        }
        set
    }

    /// Zero any bits of the last word beyond the universe, so word-level kernels (`NOT`,
    /// popcount) never see phantom members.
    fn mask_tail(&mut self) {
        let tail = self.universe % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Size of the universe the set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Insert an id; returns `true` when it was not yet present.
    ///
    /// Panics on an out-of-universe id (also in release builds: an id that lands inside the
    /// tail word would otherwise become a phantom member that `len`/`iter` report but
    /// [`contains`](Self::contains) denies).
    pub fn insert(&mut self, id: T) -> bool {
        let ix = id.index();
        assert!(
            ix < self.universe,
            "id {ix} outside universe {}",
            self.universe
        );
        let word = &mut self.words[ix / 64];
        let bit = 1u64 << (ix % 64);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Remove an id; returns `true` when it was present. Panics on an out-of-universe id,
    /// like [`insert`](Self::insert).
    pub fn remove(&mut self, id: T) -> bool {
        let ix = id.index();
        assert!(
            ix < self.universe,
            "id {ix} outside universe {}",
            self.universe
        );
        let word = &mut self.words[ix / 64];
        let bit = 1u64 << (ix % 64);
        let present = *word & bit != 0;
        *word &= !bit;
        present
    }

    /// Whether the set contains the id.
    pub fn contains(&self, id: T) -> bool {
        let ix = id.index();
        ix < self.universe && self.words[ix / 64] & (1u64 << (ix % 64)) != 0
    }

    /// Number of members (sum of word popcounts).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove every member.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place intersection: `self &= other`.
    pub fn and_with(&mut self, other: &DenseSet<T>) {
        self.check_universe(other);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// In-place union: `self |= other`.
    pub fn or_with(&mut self, other: &DenseSet<T>) {
        self.check_universe(other);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// In-place difference: `self &= !other`.
    pub fn and_not_with(&mut self, other: &DenseSet<T>) {
        self.check_universe(other);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Whether every member of `self` is also in `other` — one AND-NOT per word, no
    /// materialisation. The empty set is a subset of everything.
    pub fn is_subset(&self, other: &DenseSet<T>) -> bool {
        self.check_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(w, o)| w & !o == 0)
    }

    /// `|self ∩ other|` without materialising the intersection — one AND+popcount per word.
    pub fn intersection_len(&self, other: &DenseSet<T>) -> usize {
        self.check_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(w, o)| (w & o).count_ones() as usize)
            .sum()
    }

    /// Overwrite `self` with a copy of `other` (reusing the existing buffer).
    pub fn copy_from(&mut self, other: &DenseSet<T>) {
        self.check_universe(other);
        self.words.copy_from_slice(&other.words);
    }

    /// The packed `u64` word representation, least-significant bit = id 0. This is the flat
    /// layout the snapshot store serialises directly; paired with
    /// [`from_words`](Self::from_words) it round-trips a set without per-member iteration.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a set from its [`words`](Self::words) representation.
    ///
    /// The word count must match the universe (`universe.div_ceil(64)` words); bits beyond the
    /// universe in the tail word are cleared, so a corrupted or hand-built tail can never
    /// introduce phantom members.
    ///
    /// # Panics
    /// Panics when `words.len() != universe.div_ceil(64)`.
    pub fn from_words(universe: usize, words: Vec<u64>) -> DenseSet<T> {
        assert_eq!(
            words.len(),
            universe.div_ceil(64),
            "word count does not match universe {universe}"
        );
        let mut set = DenseSet {
            words,
            universe,
            _ids: PhantomData,
        };
        set.mask_tail();
        set
    }

    /// The members, in ascending id order — the same order the sorted representations this
    /// kernel replaces produced.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.words.iter().enumerate().flat_map(|(wix, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(T::from_index(wix * 64 + bit))
            })
        })
    }

    fn check_universe(&self, other: &DenseSet<T>) {
        assert_eq!(
            self.universe, other.universe,
            "combining DenseSets over different universes"
        );
    }
}

impl<T: DenseId> fmt::Debug for DenseSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut set = f.debug_set();
        for id in self.iter() {
            set.entry(&id.index());
        }
        set.finish()
    }
}

/// A recycling pool for [`DenseSet`] word buffers.
///
/// Sessions build and discard many transient sets per round (per-edge constraint sets in the
/// twig evaluator, per-round scratch pools). Routing those through an arena caps allocation at
/// the high-water mark: [`take`](SetArena::take) hands out a cleared set reusing a previously
/// [`put`](SetArena::put) buffer when one with enough capacity exists.
///
/// ```
/// use qbe_bitset::{DenseSet, SetArena};
///
/// let mut arena = SetArena::new();
/// let mut a: DenseSet = arena.take(100);
/// a.insert(42);
/// arena.put(a);
/// let b: DenseSet = arena.take(100); // reuses a's buffer…
/// assert!(b.is_empty());             // …but hands it back cleared
/// assert_eq!(arena.recycled(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SetArena {
    free: Vec<Vec<u64>>,
    recycled: usize,
}

impl SetArena {
    /// An empty arena.
    pub fn new() -> SetArena {
        SetArena::default()
    }

    /// A cleared set over `universe` ids, reusing a recycled buffer when one fits.
    pub fn take<T: DenseId>(&mut self, universe: usize) -> DenseSet<T> {
        let needed = universe.div_ceil(64);
        match self.free.iter().position(|buf| buf.capacity() >= needed) {
            Some(pos) => {
                let mut words = self.free.swap_remove(pos);
                words.clear();
                words.resize(needed, 0);
                self.recycled += 1;
                DenseSet {
                    words,
                    universe,
                    _ids: PhantomData,
                }
            }
            None => DenseSet::new(universe),
        }
    }

    /// A copy of `src` backed by a recycled buffer when one fits.
    pub fn take_copy<T: DenseId>(&mut self, src: &DenseSet<T>) -> DenseSet<T> {
        let mut set = self.take(src.universe());
        set.copy_from(src);
        set
    }

    /// Return a set's buffer to the pool.
    pub fn put<T: DenseId>(&mut self, set: DenseSet<T>) {
        self.free.push(set.words);
    }

    /// How many takes were served from recycled buffers (observability for tests/benches).
    pub fn recycled(&self) -> usize {
        self.recycled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut s: DenseSet = DenseSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert_eq!(s.len(), 3);
        assert!(s.contains(64) && !s.contains(63));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn words_round_trip_and_mask_phantom_tail_bits() {
        let mut s: DenseSet = DenseSet::new(70);
        s.insert(0);
        s.insert(65);
        let rebuilt: DenseSet = DenseSet::from_words(70, s.words().to_vec());
        assert_eq!(rebuilt, s);
        assert_eq!(rebuilt.iter().collect::<Vec<_>>(), vec![0, 65]);
        // Garbage bits beyond the universe are cleared, not reported as members.
        let noisy: DenseSet = DenseSet::from_words(70, vec![0, u64::MAX]);
        assert_eq!(noisy.len(), 6, "only ids 64..70 survive the tail mask");
        assert!(!noisy.contains(70));
    }

    #[test]
    #[should_panic(expected = "word count")]
    fn from_words_rejects_mismatched_lengths() {
        let _: DenseSet = DenseSet::from_words(70, vec![0u64; 3]);
    }

    #[test]
    fn full_masks_the_tail_word() {
        let s: DenseSet = DenseSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        let empty: DenseSet = DenseSet::full(0);
        assert!(empty.is_empty());
    }

    #[test]
    fn bulk_kernels_match_set_semantics() {
        let a: DenseSet = DenseSet::from_ids(200, (0..200).step_by(2));
        let b: DenseSet = DenseSet::from_ids(200, (0..200).step_by(3));
        let mut and = a.clone();
        and.and_with(&b);
        let mut or = a.clone();
        or.or_with(&b);
        let mut diff = a.clone();
        diff.and_not_with(&b);
        for id in 0..200usize {
            assert_eq!(and.contains(id), id % 6 == 0, "{id}");
            assert_eq!(or.contains(id), id % 2 == 0 || id % 3 == 0, "{id}");
            assert_eq!(diff.contains(id), id % 2 == 0 && id % 3 != 0, "{id}");
        }
        assert_eq!(a.intersection_len(&b), and.len());
        assert!(and.is_subset(&a) && and.is_subset(&b));
        assert!(a.is_subset(&or) && b.is_subset(&or));
        assert!(!a.is_subset(&b));
        assert!(DenseSet::<usize>::new(200).is_subset(&a), "∅ ⊆ anything");
    }

    #[test]
    fn iteration_is_ascending() {
        let ids = [199usize, 0, 64, 63, 128, 1];
        let s: DenseSet = DenseSet::from_ids(200, ids);
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        assert_eq!(s.iter().collect::<Vec<_>>(), sorted);
    }

    #[test]
    #[should_panic]
    fn out_of_universe_insert_panics_in_all_builds() {
        // 100 lands inside the 70-universe's second word: without the unconditional bound
        // check it would become a phantom member that len/iter report but contains denies.
        let mut s: DenseSet = DenseSet::new(70);
        s.insert(100);
    }

    #[test]
    fn arena_recycles_buffers() {
        let mut arena = SetArena::new();
        let mut a: DenseSet = arena.take(128);
        a.insert(7);
        arena.put(a);
        let b: DenseSet = arena.take(64);
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(arena.recycled(), 1);
        let c: DenseSet = arena.take(4096);
        assert!(c.is_empty());
        assert_eq!(arena.recycled(), 1, "no fitting buffer for the larger set");
        let copy_src: DenseSet = DenseSet::from_ids(64, [3usize, 9]);
        arena.put(b);
        let copied = arena.take_copy(&copy_src);
        assert_eq!(copied, copy_src);
    }

    #[test]
    #[should_panic]
    fn mixing_universes_panics() {
        let mut a: DenseSet = DenseSet::new(64);
        let b: DenseSet = DenseSet::new(128);
        a.and_with(&b);
    }

    #[test]
    fn u32_ids_work() {
        let mut s: DenseSet<u32> = DenseSet::new(80);
        s.insert(79u32);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![79u32]);
    }
}
