//! The cross-model learning framework: the traits every model-specific learner instantiates,
//! plus adapters for the three data models.
//!
//! The thesis's unifying idea is that the same protocol works for relational, semi-structured
//! and graph databases: a query is a binary classifier over *items* of the instance (tuple
//! pairs, document nodes, paths); a learner produces such a classifier from labelled items; and
//! an interactive learner additionally chooses which item to ask about next, so that the number
//! of interactions is minimised. The adapters below wrap the concrete learners of `qbe-twig`,
//! `qbe-relational` and `qbe-graph` in this common vocabulary — they are what the exchange
//! scenarios and the quickstart example program against.

use crate::metrics::ConfusionMatrix;
use qbe_xml::{NodeId, XmlTree};

/// A learned query viewed as a classifier over the items of an instance.
pub trait Hypothesis {
    /// The kind of item the query classifies.
    type Item;

    /// Whether the query selects the item.
    fn selects(&self, item: &Self::Item) -> bool;

    /// A human-readable rendering of the query (XPath, SQL-ish predicate, regex, …).
    fn describe(&self) -> String;
}

/// A batch learner: from labelled items to a hypothesis.
pub trait Learner {
    /// Item kind.
    type Item;
    /// Hypothesis kind.
    type Query: Hypothesis<Item = Self::Item>;

    /// Learn a query consistent with the labels, or `None` when the labels are inconsistent for
    /// this hypothesis class.
    fn learn(&self, positives: &[Self::Item], negatives: &[Self::Item]) -> Option<Self::Query>;
}

/// Compare a hypothesis against a goal hypothesis over a set of items.
pub fn compare_hypotheses<H: Hypothesis>(
    goal: &H,
    learned: &H,
    items: impl IntoIterator<Item = H::Item>,
) -> ConfusionMatrix {
    let mut m = ConfusionMatrix::default();
    for item in items {
        m.record(goal.selects(&item), learned.selects(&item));
    }
    m
}

// ---------------------------------------------------------------------------------------------
// Semi-structured adapter
// ---------------------------------------------------------------------------------------------

/// An XML item: a document index and a node of that document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XmlItem {
    /// Index of the document in the instance.
    pub doc: usize,
    /// The node.
    pub node: NodeId,
}

/// A twig query bound to an XML instance (a list of documents), so that it classifies
/// [`XmlItem`]s.
#[derive(Debug, Clone)]
pub struct BoundTwigQuery<'a> {
    /// The documents of the instance.
    pub documents: &'a [XmlTree],
    /// The underlying twig query.
    pub query: qbe_twig::TwigQuery,
}

impl Hypothesis for BoundTwigQuery<'_> {
    type Item = XmlItem;

    fn selects(&self, item: &XmlItem) -> bool {
        qbe_twig::selects(&self.query, &self.documents[item.doc], item.node)
    }

    fn describe(&self) -> String {
        self.query.to_xpath()
    }
}

/// The twig learner of `qbe-twig` in the framework vocabulary.
#[derive(Debug, Clone)]
pub struct TwigLearner<'a> {
    /// The documents of the instance.
    pub documents: &'a [XmlTree],
}

impl<'a> Learner for TwigLearner<'a> {
    type Item = XmlItem;
    type Query = BoundTwigQuery<'a>;

    fn learn(&self, positives: &[XmlItem], negatives: &[XmlItem]) -> Option<Self::Query> {
        let mut set = qbe_twig::ExampleSet::new();
        let ixs: Vec<usize> = self
            .documents
            .iter()
            .map(|d| set.add_document(d.clone()))
            .collect();
        for p in positives {
            set.annotate(ixs[p.doc], p.node, true);
        }
        for n in negatives {
            set.annotate(ixs[n.doc], n.node, false);
        }
        let result = qbe_twig::most_specific_consistent(&set);
        result.query().cloned().map(|query| BoundTwigQuery {
            documents: self.documents,
            query,
        })
    }
}

// ---------------------------------------------------------------------------------------------
// Relational adapter
// ---------------------------------------------------------------------------------------------

/// A relational item: a pair of tuple indices from the two relations being joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairItem {
    /// Index into the left relation.
    pub left: usize,
    /// Index into the right relation.
    pub right: usize,
}

/// A join predicate bound to its two relations.
#[derive(Debug, Clone)]
pub struct BoundJoinQuery<'a> {
    /// Left relation.
    pub left: &'a qbe_relational::Relation,
    /// Right relation.
    pub right: &'a qbe_relational::Relation,
    /// The underlying predicate.
    pub predicate: qbe_relational::JoinPredicate,
}

impl Hypothesis for BoundJoinQuery<'_> {
    type Item = PairItem;

    fn selects(&self, item: &PairItem) -> bool {
        self.predicate.satisfied_by(
            &self.left.tuples()[item.left],
            &self.right.tuples()[item.right],
        )
    }

    fn describe(&self) -> String {
        self.predicate
            .describe(self.left.schema(), self.right.schema())
    }
}

/// The join learner of `qbe-relational` in the framework vocabulary.
#[derive(Debug, Clone)]
pub struct JoinLearner<'a> {
    /// Left relation.
    pub left: &'a qbe_relational::Relation,
    /// Right relation.
    pub right: &'a qbe_relational::Relation,
}

impl<'a> Learner for JoinLearner<'a> {
    type Item = PairItem;
    type Query = BoundJoinQuery<'a>;

    fn learn(&self, positives: &[PairItem], negatives: &[PairItem]) -> Option<Self::Query> {
        let labels: Vec<qbe_relational::LabelledPair> = positives
            .iter()
            .map(|p| qbe_relational::LabelledPair::new(p.left, p.right, true))
            .chain(
                negatives
                    .iter()
                    .map(|n| qbe_relational::LabelledPair::new(n.left, n.right, false)),
            )
            .collect();
        qbe_relational::learn_join(self.left, self.right, &labels)
            .ok()
            .flatten()
            .map(|predicate| BoundJoinQuery {
                left: self.left,
                right: self.right,
                predicate,
            })
    }
}

// ---------------------------------------------------------------------------------------------
// Graph adapter
// ---------------------------------------------------------------------------------------------

/// A graph item: an edge-label word (the word of a path shown to the user).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathItem {
    /// The word of edge labels.
    pub word: Vec<String>,
}

/// A block path query as a classifier over words.
#[derive(Debug, Clone)]
pub struct BoundPathQuery {
    /// The underlying block path query.
    pub query: qbe_graph::BlockPathQuery,
}

impl Hypothesis for BoundPathQuery {
    type Item = PathItem;

    fn selects(&self, item: &PathItem) -> bool {
        let refs: Vec<&str> = item.word.iter().map(String::as_str).collect();
        self.query.accepts(&refs)
    }

    fn describe(&self) -> String {
        self.query.to_string()
    }
}

/// The path-query learner of `qbe-graph` in the framework vocabulary.
#[derive(Debug, Clone, Default)]
pub struct PathLearner;

impl Learner for PathLearner {
    type Item = PathItem;
    type Query = BoundPathQuery;

    fn learn(&self, positives: &[PathItem], negatives: &[PathItem]) -> Option<Self::Query> {
        let pos: Vec<Vec<String>> = positives.iter().map(|p| p.word.clone()).collect();
        let neg: Vec<Vec<String>> = negatives.iter().map(|n| n.word.clone()).collect();
        qbe_graph::learn_path_query_with_negatives(&pos, &neg)
            .ok()
            .flatten()
            .map(|query| BoundPathQuery { query })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbe_xml::TreeBuilder;

    fn xml_instance() -> Vec<XmlTree> {
        vec![TreeBuilder::new("site")
            .open("people")
            .open("person")
            .leaf("name")
            .leaf("emailaddress")
            .close()
            .open("person")
            .leaf("name")
            .close()
            .close()
            .build()]
    }

    #[test]
    fn twig_adapter_learns_and_classifies() {
        let docs = xml_instance();
        let learner = TwigLearner { documents: &docs };
        let persons = docs[0].nodes_with_label("person");
        let positives = vec![XmlItem {
            doc: 0,
            node: persons[0],
        }];
        let negatives = vec![XmlItem {
            doc: 0,
            node: persons[1],
        }];
        let hypothesis = learner.learn(&positives, &negatives).expect("consistent");
        assert!(hypothesis.selects(&positives[0]));
        assert!(!hypothesis.selects(&negatives[0]));
        assert!(hypothesis.describe().contains("person"));
    }

    #[test]
    fn twig_adapter_reports_inconsistency() {
        let docs = xml_instance();
        let learner = TwigLearner { documents: &docs };
        let person = docs[0].nodes_with_label("person")[0];
        let item = XmlItem {
            doc: 0,
            node: person,
        };
        assert!(learner.learn(&[item], &[item]).is_none());
    }

    #[test]
    fn join_adapter_learns_and_classifies() {
        use qbe_relational::{Relation, RelationSchema, Tuple};
        let left = Relation::with_tuples(
            RelationSchema::new("l", &["id"]),
            vec![Tuple::new(vec![1.into()]), Tuple::new(vec![2.into()])],
        );
        let right = Relation::with_tuples(
            RelationSchema::new("r", &["ref"]),
            vec![Tuple::new(vec![1.into()]), Tuple::new(vec![3.into()])],
        );
        let learner = JoinLearner {
            left: &left,
            right: &right,
        };
        let hypothesis = learner
            .learn(
                &[PairItem { left: 0, right: 0 }],
                &[PairItem { left: 1, right: 0 }],
            )
            .expect("consistent");
        assert!(hypothesis.selects(&PairItem { left: 0, right: 0 }));
        assert!(!hypothesis.selects(&PairItem { left: 1, right: 1 }));
        assert!(hypothesis.describe().contains("l.id = r.ref"));
    }

    #[test]
    fn path_adapter_learns_and_classifies() {
        let learner = PathLearner;
        let positives = vec![
            PathItem {
                word: vec!["highway".into(), "highway".into()],
            },
            PathItem {
                word: vec!["highway".into()],
            },
        ];
        let negatives = vec![PathItem {
            word: vec!["local".into()],
        }];
        let hypothesis = learner.learn(&positives, &negatives).expect("consistent");
        assert!(hypothesis.selects(&positives[0]));
        assert!(!hypothesis.selects(&negatives[0]));
    }

    #[test]
    fn compare_hypotheses_builds_a_confusion_matrix() {
        let learner = PathLearner;
        let goal = learner
            .learn(
                &[PathItem {
                    word: vec!["highway".into()],
                }],
                &[],
            )
            .unwrap();
        let learned = learner
            .learn(
                &[
                    PathItem {
                        word: vec!["highway".into()],
                    },
                    PathItem {
                        word: vec!["local".into()],
                    },
                ],
                &[],
            )
            .unwrap();
        let items = vec![
            PathItem {
                word: vec!["highway".into()],
            },
            PathItem {
                word: vec!["local".into()],
            },
            PathItem {
                word: vec!["ferry".into()],
            },
        ];
        let m = compare_hypotheses(&goal, &learned, items);
        assert_eq!(m.true_positives, 1);
        assert!(m.false_positives >= 1);
    }
}
