//! Oracles and interactive sessions in the model-agnostic vocabulary.
//!
//! The paper's protocol is the same for every data model: the learner proposes an item, the user
//! (oracle) labels it, the learner prunes the items whose label has become determined, and the
//! loop stops when nothing informative remains. The model-specific crates implement specialised,
//! more efficient versions of this loop (`qbe_relational::interactive`,
//! `qbe_graph::interactive`); this module provides the generic counterpart used by the examples
//! and by the cross-model experiments, built directly on the [`crate::framework::Learner`]
//! trait with an explicit (finite) pool of candidate items.

use crate::framework::{Hypothesis, Learner};

/// Labels items on request; counts the questions it has been asked.
pub trait Oracle<Item> {
    /// Label an item (`true` = positive).
    fn label(&mut self, item: &Item) -> bool;

    /// Number of questions answered so far.
    fn questions(&self) -> usize;
}

/// An oracle backed by a goal [`Hypothesis`] — the simulated user of every experiment.
#[derive(Debug, Clone)]
pub struct GoalOracle<H> {
    goal: H,
    questions: usize,
}

impl<H> GoalOracle<H> {
    /// Create the oracle.
    pub fn new(goal: H) -> GoalOracle<H> {
        GoalOracle { goal, questions: 0 }
    }

    /// The hidden goal.
    pub fn goal(&self) -> &H {
        &self.goal
    }
}

impl<H: Hypothesis> Oracle<H::Item> for GoalOracle<H> {
    fn label(&mut self, item: &H::Item) -> bool {
        self.questions += 1;
        self.goal.selects(item)
    }

    fn questions(&self) -> usize {
        self.questions
    }
}

/// Outcome of a generic interactive session.
#[derive(Debug, Clone)]
pub struct InteractiveOutcome<Q> {
    /// The final hypothesis (None when the labels became inconsistent for the class).
    pub hypothesis: Option<Q>,
    /// How many labels were requested from the oracle.
    pub interactions: usize,
    /// How many pool items were never asked about.
    pub skipped: usize,
}

/// Generic interactive driver over a finite pool of candidate items.
///
/// The driver asks about pool items in order, but skips any item whose label is already
/// *determined*: the current hypothesis and the hypothesis learned from the opposite label
/// agree on it, or the opposite label would make the examples inconsistent. This realises the
/// paper's "uninformative tuple" pruning in a model-independent (if less optimised) way.
pub fn run_interactive<L, O>(
    learner: &L,
    pool: &[L::Item],
    oracle: &mut O,
) -> InteractiveOutcome<L::Query>
where
    L: Learner,
    L::Item: Clone,
    O: Oracle<L::Item>,
{
    let mut positives: Vec<L::Item> = Vec::new();
    let mut negatives: Vec<L::Item> = Vec::new();
    let mut interactions = 0usize;
    let mut skipped = 0usize;
    for item in pool {
        // Would either answer change anything? Learn under both tentative labels.
        let mut with_pos = positives.clone();
        with_pos.push(item.clone());
        let hyp_if_positive = learner.learn(&with_pos, &negatives);
        let mut with_neg = negatives.clone();
        with_neg.push(item.clone());
        let hyp_if_negative = learner.learn(&positives, &with_neg);
        let informative = match (&hyp_if_positive, &hyp_if_negative) {
            // Both labels keep the examples consistent: the item is informative iff the two
            // resulting hypotheses disagree on it.
            (Some(p), Some(n)) => p.selects(item) != n.selects(item),
            // Only one label is possible: the answer is forced, no need to ask.
            _ => false,
        };
        if !informative {
            skipped += 1;
            // Record the forced label silently so later inferences can use it.
            match (&hyp_if_positive, &hyp_if_negative) {
                (Some(_), None) => positives.push(item.clone()),
                (None, Some(_)) => negatives.push(item.clone()),
                _ => {}
            }
            continue;
        }
        interactions += 1;
        if oracle.label(item) {
            positives.push(item.clone());
        } else {
            negatives.push(item.clone());
        }
    }
    InteractiveOutcome {
        hypothesis: learner.learn(&positives, &negatives),
        interactions,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{BoundPathQuery, PathItem, PathLearner};

    fn item(word: &[&str]) -> PathItem {
        PathItem {
            word: word.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn goal() -> BoundPathQuery {
        let q = qbe_graph::learn_path_query(&[
            vec!["highway".to_string()],
            vec!["highway".to_string(), "highway".to_string()],
        ])
        .unwrap();
        BoundPathQuery { query: q }
    }

    #[test]
    fn goal_oracle_counts_questions() {
        let mut oracle = GoalOracle::new(goal());
        assert!(oracle.label(&item(&["highway"])));
        assert!(!oracle.label(&item(&["local"])));
        assert_eq!(oracle.questions(), 2);
    }

    #[test]
    fn interactive_driver_learns_the_goal_and_skips_determined_items() {
        let pool = vec![
            item(&["highway"]),
            item(&["highway", "highway"]),
            item(&["highway", "highway", "highway"]),
            item(&["local"]),
            item(&["highway", "local"]),
        ];
        let learner = PathLearner;
        let mut oracle = GoalOracle::new(goal());
        let outcome = run_interactive(&learner, &pool, &mut oracle);
        let hypothesis = outcome.hypothesis.expect("labels are consistent");
        // The learned query agrees with the goal on the whole pool.
        for p in &pool {
            assert_eq!(hypothesis.selects(p), goal().selects(p));
        }
        assert_eq!(outcome.interactions + outcome.skipped, pool.len());
        assert_eq!(oracle.questions(), outcome.interactions);
    }

    #[test]
    fn driver_reports_inconsistency_as_none_only_when_forced() {
        // A pool of identical items cannot be inconsistent with a noise-free oracle.
        let pool = vec![item(&["highway"]); 3];
        let learner = PathLearner;
        let mut oracle = GoalOracle::new(goal());
        let outcome = run_interactive(&learner, &pool, &mut oracle);
        assert!(outcome.hypothesis.is_some());
        assert!(
            outcome.interactions <= 1,
            "identical items should be asked about at most once"
        );
    }
}
