//! Concurrent multi-session workload driver.
//!
//! The paper's experiments run one interactive learning session at a time; the north star of
//! this reproduction is serving *many users at once*. This module provides the substrate: a
//! [`SessionPool`] runs N independent sessions over `std::thread` workers, all sessions sharing
//! the same immutable corpus and indexes (`Arc<Vec<XmlTree>>` + `Arc<Vec<NodeIndex>>` for twig
//! sessions, `Arc<PropertyGraph>` + `Arc<GraphIndex>` for path sessions — see
//! `qbe_twig::TwigSession::with_shared`).
//!
//! Scheduling follows the workload-mining playbook (closure-aware miners process their queue by
//! expected yield): sessions are dispatched **shortest expected work first**, from a priority
//! queue ordered by each session's *expected questions remaining*. With heterogeneous sessions
//! this minimises mean completion time, so cheap users are not stuck behind expensive ones.
//!
//! Every session reports a [`SessionReport`]; the pool aggregates them into
//! [`WorkloadMetrics`] — throughput, p50/p95 question counts, wall time — the numbers the
//! `exp_workload` experiment and the `workload` bench print.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What one completed session reports back to the pool.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Short human-readable description of the session (goal query, strategy, …).
    pub label: String,
    /// Name of the question-selection strategy the session consulted
    /// ([`qbe_strategy::Strategy::name`]; empty when unknown) — the key the per-strategy
    /// aggregates ([`WorkloadMetrics::by_strategy`]) group by.
    pub strategy: String,
    /// Number of oracle questions the session asked.
    pub questions: usize,
    /// Items whose label the session inferred without asking.
    pub inferred: usize,
    /// Whether the session completed successfully (learned a consistent hypothesis).
    pub success: bool,
    /// Wall time of this session alone.
    pub wall: Duration,
}

/// One session queued in a [`SessionPool`]: a priority estimate plus the closure that runs it.
///
/// The closure owns everything the session needs (typically `Arc` handles onto the shared
/// corpus/index plus per-session parameters) and returns the session's report. `Send` is
/// required because the pool moves jobs across worker threads.
pub struct SessionJob {
    label: String,
    expected_questions: usize,
    run: Box<dyn FnOnce() -> SessionReport + Send>,
}

impl SessionJob {
    /// Package a session. `expected_questions` is the scheduling priority: the pool serves
    /// sessions with the smallest estimate first. Estimates only order the queue — wrong
    /// estimates cost scheduling quality, never correctness.
    pub fn new(
        label: impl Into<String>,
        expected_questions: usize,
        run: impl FnOnce() -> SessionReport + Send + 'static,
    ) -> SessionJob {
        SessionJob {
            label: label.into(),
            expected_questions,
            run: Box::new(run),
        }
    }

    /// The session's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The scheduling estimate.
    pub fn expected_questions(&self) -> usize {
        self.expected_questions
    }
}

impl std::fmt::Debug for SessionJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionJob")
            .field("label", &self.label)
            .field("expected_questions", &self.expected_questions)
            .finish_non_exhaustive()
    }
}

/// A pool of interactive sessions executed concurrently by a fixed number of workers.
#[derive(Debug, Default)]
pub struct SessionPool {
    jobs: Vec<SessionJob>,
}

impl SessionPool {
    /// An empty pool.
    pub fn new() -> SessionPool {
        SessionPool::default()
    }

    /// Queue a session.
    pub fn push(&mut self, job: SessionJob) {
        self.jobs.push(job);
    }

    /// Queue an [`InteractiveLearner`](crate::session::InteractiveLearner) session, driven to
    /// completion by the generic [`drive`](crate::session::drive) loop against its embedded
    /// goal oracle.
    ///
    /// `make` builds the learner *on the worker thread* (sessions often want to generate or
    /// index their instance there rather than serially up front); it typically captures `Arc`
    /// handles onto a shared corpus.
    pub fn push_learner(
        &mut self,
        label: impl Into<String>,
        expected_questions: usize,
        make: impl FnOnce() -> Box<dyn crate::session::InteractiveLearner> + Send + 'static,
    ) {
        let label = label.into();
        let job_label = label.clone();
        self.push(SessionJob::new(label, expected_questions, move || {
            crate::session::drive(job_label, make().as_mut())
        }));
    }

    /// Number of queued sessions.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no session is queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Run every queued session on `workers` threads (clamped to at least 1) and aggregate the
    /// reports. Sessions are dispatched in ascending expected-questions order; each worker pops
    /// the cheapest remaining session as soon as it finishes its previous one.
    pub fn run(self, workers: usize) -> WorkloadMetrics {
        let started = Instant::now();
        let total = self.jobs.len();
        // Min-heap by (expected questions, insertion index): `Reverse` flips `BinaryHeap`'s
        // max-heap order; the index both breaks ties deterministically and addresses the job.
        let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
        let mut slots: Vec<Option<SessionJob>> = Vec::with_capacity(total);
        for (ix, job) in self.jobs.into_iter().enumerate() {
            heap.push(Reverse((job.expected_questions, ix)));
            slots.push(Some(job));
        }
        let queue = Mutex::new((heap, slots));
        let reports = Mutex::new(Vec::with_capacity(total));
        let workers = workers.max(1).min(total.max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = {
                        let mut q = queue.lock().expect("queue lock never poisoned");
                        match q.0.pop() {
                            Some(Reverse((_, ix))) => {
                                q.1[ix].take().expect("each job is dispatched once")
                            }
                            None => break,
                        }
                    };
                    let session_started = Instant::now();
                    let mut report = (job.run)();
                    report.wall = session_started.elapsed();
                    reports
                        .lock()
                        .expect("report lock never poisoned")
                        .push(report);
                });
            }
        });
        let reports = reports.into_inner().expect("all workers joined");
        WorkloadMetrics::aggregate(reports, started.elapsed())
    }
}

/// Aggregate statistics over one pool run.
#[derive(Debug, Clone)]
pub struct WorkloadMetrics {
    /// Per-session reports, sorted by ascending question count.
    pub reports: Vec<SessionReport>,
    /// Wall time of the whole pool run.
    pub wall: Duration,
}

impl WorkloadMetrics {
    fn aggregate(mut reports: Vec<SessionReport>, wall: Duration) -> WorkloadMetrics {
        reports.sort_by_key(|r| r.questions);
        WorkloadMetrics { reports, wall }
    }

    /// Number of completed sessions.
    pub fn sessions(&self) -> usize {
        self.reports.len()
    }

    /// Number of sessions that reported success.
    pub fn successes(&self) -> usize {
        self.reports.iter().filter(|r| r.success).count()
    }

    /// Total questions across all sessions.
    pub fn total_questions(&self) -> usize {
        self.reports.iter().map(|r| r.questions).sum()
    }

    /// Sessions completed per second of wall time (0 for an empty run).
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.sessions() as f64 / secs
        }
    }

    /// The `p`-th percentile (0–100) of per-session question counts, by the nearest-rank
    /// method: the smallest count such that at least `p`% of sessions asked no more. `None`
    /// for an empty run.
    pub fn questions_percentile(&self, p: f64) -> Option<usize> {
        percentile(self.reports.iter().map(|r| r.questions), p)
    }

    /// Median question count (`None` for an empty run).
    pub fn p50_questions(&self) -> Option<usize> {
        self.questions_percentile(50.0)
    }

    /// 95th-percentile question count (`None` for an empty run).
    pub fn p95_questions(&self) -> Option<usize> {
        self.questions_percentile(95.0)
    }

    /// Mean question count (`None` for an empty run).
    pub fn mean_questions(&self) -> Option<f64> {
        if self.reports.is_empty() {
            None
        } else {
            Some(self.total_questions() as f64 / self.sessions() as f64)
        }
    }

    /// Per-strategy aggregates over the run's reports, sorted by strategy name — the
    /// question-count/latency trade-off table the strategy experiments print. Sessions that
    /// did not record a strategy group under the empty name.
    pub fn by_strategy(&self) -> Vec<StrategyAggregate> {
        let mut groups: std::collections::BTreeMap<&str, Vec<&SessionReport>> =
            std::collections::BTreeMap::new();
        for r in &self.reports {
            groups.entry(r.strategy.as_str()).or_default().push(r);
        }
        groups
            .into_iter()
            .map(|(strategy, reports)| {
                // `self.reports` is sorted by question count, so each group's slice is too.
                let questions: Vec<usize> = reports.iter().map(|r| r.questions).collect();
                StrategyAggregate {
                    strategy: strategy.to_string(),
                    sessions: reports.len(),
                    successes: reports.iter().filter(|r| r.success).count(),
                    total_questions: questions.iter().sum(),
                    p50_questions: percentile_sorted(&questions, 50.0),
                    p95_questions: percentile_sorted(&questions, 95.0),
                    wall: reports.iter().map(|r| r.wall).sum(),
                }
            })
            .collect()
    }
}

/// Aggregate statistics for the sessions of one question-selection strategy within a pool run
/// (see [`WorkloadMetrics::by_strategy`]).
#[derive(Debug, Clone)]
pub struct StrategyAggregate {
    /// The strategy name the sessions reported.
    pub strategy: String,
    /// Number of sessions that used this strategy.
    pub sessions: usize,
    /// How many of them reported success.
    pub successes: usize,
    /// Total questions across the strategy's sessions.
    pub total_questions: usize,
    /// Nearest-rank median question count.
    pub p50_questions: Option<usize>,
    /// Nearest-rank 95th-percentile question count.
    pub p95_questions: Option<usize>,
    /// Summed per-session wall time (the strategy's compute cost, independent of pool
    /// parallelism).
    pub wall: Duration,
}

impl StrategyAggregate {
    /// Mean question count (`None` when the strategy served no sessions).
    pub fn mean_questions(&self) -> Option<f64> {
        if self.sessions == 0 {
            None
        } else {
            Some(self.total_questions as f64 / self.sessions as f64)
        }
    }
}

impl std::fmt::Display for WorkloadMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} sessions ({} ok) in {:?} ({:.1}/s), questions p50 {} p95 {} mean {:.1}",
            self.sessions(),
            self.successes(),
            self.wall,
            self.throughput(),
            self.p50_questions().unwrap_or(0),
            self.p95_questions().unwrap_or(0),
            self.mean_questions().unwrap_or(0.0),
        )
    }
}

/// Nearest-rank percentile of an unsorted sequence (`None` when empty). `p` is clamped to
/// 0–100; rank 0 (p = 0) maps to the minimum.
pub fn percentile(values: impl IntoIterator<Item = usize>, p: f64) -> Option<usize> {
    let mut sorted: Vec<usize> = values.into_iter().collect();
    sorted.sort_unstable();
    percentile_sorted(&sorted, p)
}

/// [`percentile`] over an already-sorted slice: an O(1) index lookup, for callers (the
/// `qbe-server` session registry) that maintain sorted data incrementally.
pub fn percentile_sorted(sorted: &[usize], p: f64) -> Option<usize> {
    if sorted.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1)])
}

/// Nearest-rank percentile of a sequence of durations (`None` when empty) — the latency
/// twin of [`percentile`], for serving-layer round-trip measurements where the samples are
/// wall-clock times rather than question counts.
pub fn duration_percentile(
    values: impl IntoIterator<Item = std::time::Duration>,
    p: f64,
) -> Option<std::time::Duration> {
    let mut sorted: Vec<std::time::Duration> = values.into_iter().collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_unstable();
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn job(label: &str, questions: usize) -> SessionJob {
        let label_owned = label.to_string();
        SessionJob::new(label, questions, move || SessionReport {
            label: label_owned,
            strategy: String::new(),
            questions,
            inferred: 0,
            success: true,
            wall: Duration::ZERO,
        })
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![15, 20, 35, 40, 50];
        assert_eq!(percentile(v.clone(), 5.0), Some(15));
        assert_eq!(percentile(v.clone(), 30.0), Some(20));
        assert_eq!(percentile(v.clone(), 40.0), Some(20));
        assert_eq!(percentile(v.clone(), 50.0), Some(35));
        assert_eq!(percentile(v.clone(), 95.0), Some(50));
        assert_eq!(percentile(v.clone(), 100.0), Some(50));
        assert_eq!(percentile(v, 0.0), Some(15));
        assert_eq!(percentile(Vec::new(), 50.0), None);
        assert_eq!(percentile(vec![7], 99.0), Some(7));
    }

    #[test]
    fn duration_percentile_matches_the_count_percentile() {
        let ms = Duration::from_millis;
        let v = vec![ms(15), ms(50), ms(35), ms(20), ms(40)]; // unsorted on purpose
        assert_eq!(duration_percentile(v.clone(), 50.0), Some(ms(35)));
        assert_eq!(duration_percentile(v.clone(), 95.0), Some(ms(50)));
        assert_eq!(duration_percentile(v, 0.0), Some(ms(15)));
        assert_eq!(duration_percentile(Vec::new(), 50.0), None);
    }

    #[test]
    fn empty_pool_yields_empty_metrics() {
        let metrics = SessionPool::new().run(4);
        assert_eq!(metrics.sessions(), 0);
        assert_eq!(metrics.successes(), 0);
        assert_eq!(metrics.total_questions(), 0);
        assert_eq!(metrics.p50_questions(), None);
        assert_eq!(metrics.p95_questions(), None);
        assert_eq!(metrics.mean_questions(), None);
    }

    #[test]
    fn single_session_metrics_are_that_session() {
        let mut pool = SessionPool::new();
        pool.push(job("only", 12));
        let metrics = pool.run(3);
        assert_eq!(metrics.sessions(), 1);
        assert_eq!(metrics.p50_questions(), Some(12));
        assert_eq!(metrics.p95_questions(), Some(12));
        assert_eq!(metrics.mean_questions(), Some(12.0));
        assert_eq!(metrics.total_questions(), 12);
        assert!(metrics.throughput() > 0.0);
    }

    #[test]
    fn aggregation_over_many_sessions() {
        let mut pool = SessionPool::new();
        for (ix, q) in [15usize, 20, 35, 40, 50].into_iter().enumerate() {
            pool.push(job(&format!("s{ix}"), q));
        }
        let metrics = pool.run(2);
        assert_eq!(metrics.sessions(), 5);
        assert_eq!(metrics.successes(), 5);
        assert_eq!(metrics.p50_questions(), Some(35));
        assert_eq!(metrics.p95_questions(), Some(50));
        assert_eq!(metrics.mean_questions(), Some(32.0));
        // Reports come back sorted by question count regardless of completion order.
        let qs: Vec<usize> = metrics.reports.iter().map(|r| r.questions).collect();
        assert_eq!(qs, vec![15, 20, 35, 40, 50]);
    }

    #[test]
    fn cheapest_sessions_are_dispatched_first() {
        // One worker ⇒ dispatch order is exactly the priority order.
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut pool = SessionPool::new();
        for expected in [30usize, 10, 20] {
            let order = order.clone();
            pool.push(SessionJob::new(
                format!("e{expected}"),
                expected,
                move || {
                    order.lock().unwrap().push(expected);
                    SessionReport {
                        label: format!("e{expected}"),
                        strategy: String::new(),
                        questions: expected,
                        inferred: 0,
                        success: true,
                        wall: Duration::ZERO,
                    }
                },
            ));
        }
        pool.run(1);
        assert_eq!(*order.lock().unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn every_job_runs_exactly_once_across_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = SessionPool::new();
        for i in 0..32 {
            let counter = counter.clone();
            pool.push(SessionJob::new(format!("j{i}"), i, move || {
                counter.fetch_add(1, Ordering::SeqCst);
                SessionReport {
                    label: format!("j{i}"),
                    strategy: String::new(),
                    questions: i,
                    inferred: 0,
                    success: true,
                    wall: Duration::ZERO,
                }
            }));
        }
        let metrics = pool.run(8);
        assert_eq!(counter.load(Ordering::SeqCst), 32);
        assert_eq!(metrics.sessions(), 32);
    }

    #[test]
    fn per_strategy_aggregates_partition_the_run() {
        let mut pool = SessionPool::new();
        for (ix, (strategy, questions)) in [
            ("paper-order", 10usize),
            ("paper-order", 30),
            ("max-coverage", 4),
            ("max-coverage", 6),
            ("max-coverage", 8),
        ]
        .into_iter()
        .enumerate()
        {
            let strategy = strategy.to_string();
            pool.push(SessionJob::new(format!("s{ix}"), questions, move || {
                SessionReport {
                    label: format!("s{ix}"),
                    strategy,
                    questions,
                    inferred: 0,
                    success: true,
                    wall: Duration::from_millis(1),
                }
            }));
        }
        let metrics = pool.run(2);
        let groups = metrics.by_strategy();
        assert_eq!(groups.len(), 2, "one aggregate per strategy name");
        let get = |name: &str| groups.iter().find(|g| g.strategy == name).unwrap();
        let coverage = get("max-coverage");
        assert_eq!(coverage.sessions, 3);
        assert_eq!(coverage.successes, 3);
        assert_eq!(coverage.total_questions, 18);
        assert_eq!(coverage.p50_questions, Some(6));
        assert_eq!(coverage.p95_questions, Some(8));
        assert_eq!(coverage.mean_questions(), Some(6.0));
        assert!(coverage.wall > Duration::ZERO);
        let paper = get("paper-order");
        assert_eq!(paper.sessions, 2);
        assert_eq!(paper.p50_questions, Some(10));
        assert_eq!(paper.p95_questions, Some(30));
        // The groups partition the run exactly.
        assert_eq!(
            groups.iter().map(|g| g.sessions).sum::<usize>(),
            metrics.sessions()
        );
        assert_eq!(
            groups.iter().map(|g| g.total_questions).sum::<usize>(),
            metrics.total_questions()
        );
    }

    #[test]
    fn failed_sessions_are_counted_but_not_successes() {
        let mut pool = SessionPool::new();
        pool.push(job("ok", 5));
        pool.push(SessionJob::new("bad", 1, || SessionReport {
            label: "bad".into(),
            strategy: String::new(),
            questions: 1,
            inferred: 0,
            success: false,
            wall: Duration::ZERO,
        }));
        let metrics = pool.run(2);
        assert_eq!(metrics.sessions(), 2);
        assert_eq!(metrics.successes(), 1);
    }
}
