//! # qbe-core — the cross-model query-learning framework
//!
//! This crate is the umbrella of the `qbe` workspace, a reproduction of *"Learning Queries for
//! Relational, Semi-structured, and Graph Databases"* (Ciucanu, SIGMOD/PODS 2013 PhD Symposium).
//! It ties the three model-specific learners together under one vocabulary and re-exports the
//! substrates so that applications (the runnable examples, the cross-model exchange scenarios,
//! the benchmarks) can depend on a single crate.
//!
//! * [`framework`] — the [`Hypothesis`]/[`Learner`] traits and the adapters binding them to twig
//!   queries, join predicates and path queries;
//! * [`oracle`] — oracles (simulated users) and a generic interactive driver that minimises the
//!   number of questions by skipping determined items;
//! * [`metrics`] — confusion-matrix quality metrics shared by all experiments;
//! * [`session`] — the *interactive* counterpart of [`framework`]: the object-safe
//!   [`InteractiveLearner`] trait plus owned adapters for twig/path/join sessions, so a
//!   registry (the `qbe-server` network service, the workload driver) can hold heterogeneous
//!   sessions as homogeneous boxed trait objects;
//! * [`workload`] — the concurrent multi-session driver: a [`SessionPool`] runs many
//!   interactive sessions over `std::thread` against shared immutable indexes, scheduled
//!   shortest-expected-work first, and aggregates throughput/percentile metrics (overall and
//!   per question-selection strategy);
//! * [`strategy`] — re-export of `qbe-strategy`: the model-agnostic, object-safe
//!   [`Strategy`] trait every interactive session consults to pick its next question, the
//!   [`SessionConfig`] builder (strategy, question budget, seed) accepted everywhere a
//!   session is created, and the shipped strategies ([`PaperOrder`], [`Random`],
//!   [`MaxCoverage`], [`CheapestFirst`]);
//! * re-exports: [`xml`], [`schema`], [`twig`], [`relational`], [`graph`], [`exchange`].
//!
//! ## Quickstart
//!
//! ```
//! use qbe_core::twig::{learn_from_positives, select};
//! use qbe_core::xml::parse_xml;
//!
//! // A document and two nodes the user wants ("give me the names of people").
//! let doc = parse_xml("<site><people><person><name>Ada</name></person>\
//!                      <person><name>Grace</name></person></people></site>").unwrap();
//! let wanted = doc.nodes_with_label("name");
//! let examples: Vec<_> = wanted.iter().map(|&n| (&doc, n)).collect();
//!
//! // Learn an XPath-like twig query from the examples and run it.
//! let query = learn_from_positives(&examples).unwrap();
//! assert_eq!(select(&query, &doc).len(), 2);
//! ```

#![warn(missing_docs)]

pub mod framework;
pub mod metrics;
pub mod noise;
pub mod oracle;
pub mod session;
pub mod workload;

pub use framework::{
    compare_hypotheses, BoundJoinQuery, BoundPathQuery, BoundTwigQuery, Hypothesis, JoinLearner,
    Learner, PairItem, PathItem, PathLearner, TwigLearner, XmlItem,
};
pub use metrics::ConfusionMatrix;
pub use noise::{
    majority_error_bound, majority_votes_needed, votes_for_session, MajorityOracle, NoisyOracle,
    NoisyPacPlan,
};
pub use oracle::{run_interactive, GoalOracle, InteractiveOutcome, Oracle};
pub use session::{
    drive, GraphQueryInteractive, InteractiveLearner, JoinInteractive, PathInteractive, Question,
    SessionError, TwigInteractive,
};
pub use workload::{
    percentile, percentile_sorted, SessionJob, SessionPool, SessionReport, StrategyAggregate,
    WorkloadMetrics,
};

/// Re-export of the dense-bitset match-set kernel (`qbe-bitset`): [`bitset::DenseSet`]
/// (u64-word bitsets over interned ids, word-level and/or/and-not/popcount kernels) and
/// [`bitset::SetArena`] (buffer recycling across rounds). Every hot set operation of the three
/// learners — twig match sets, relational agreement/pair sets, graph visited and candidate
/// pools — runs on it.
pub use qbe_bitset as bitset;

pub use qbe_bitset::{DenseSet, SetArena};

/// Re-export of the query algebra (`qbe-algebra`): the hash-consed IR every query dialect
/// lowers to ([`algebra::QueryStore`], [`algebra::ExprId`]), the rewrite-based optimizer (the
/// smart constructors), conjunctive plans ([`algebra::ConjQuery`], [`algebra::plan_join_order`])
/// and the bitset evaluator with its cross-query CSE cache ([`algebra::eval_expr`],
/// [`algebra::EvalCache`]).
pub use qbe_algebra as algebra;

/// Re-export of the question-selection strategy API (`qbe-strategy`).
pub use qbe_strategy as strategy;

pub use qbe_strategy::{
    strategy_by_name, Candidate, CheapestFirst, MaxCoverage, PaperOrder, PoolView, Random,
    ResolvedConfig, SessionConfig, Strategy, UnknownStrategy, STRATEGY_NAMES,
};

/// Re-export of the XML substrate (`qbe-xml`).
pub use qbe_xml as xml;

/// Re-export of the schema formalisms (`qbe-schema`).
pub use qbe_schema as schema;

/// Re-export of twig queries and their learners (`qbe-twig`).
pub use qbe_twig as twig;

/// Re-export of the relational substrate and join learners (`qbe-relational`).
pub use qbe_relational as relational;

/// Re-export of the graph substrate and path learners (`qbe-graph`).
pub use qbe_graph as graph;

/// Re-export of the cross-model exchange scenarios (`qbe-exchange`).
pub use qbe_exchange as exchange;

/// Re-export of the durability layer — corpus snapshots and the session WAL (`qbe-store`).
pub use qbe_store as store;

/// Re-export of the deterministic fault-injection layer (`qbe-faults`).
pub use qbe_faults as faults;
