//! Noisy-oracle learning: seeded answer flips, majority re-asking, and
//! PAC-style convergence bounds.
//!
//! The paper's user answers every membership question correctly. This module
//! opens the unreliable-world variant: a [`NoisyOracle`] flips each answer
//! with probability `p` (deterministically, from a seed), and a
//! [`MajorityOracle`] recovers the true label by re-asking the same question
//! `k` times and taking the majority — the classic noise-tolerance reduction
//! for random classification noise (Angluin–Laird). Both wrap any
//! [`Oracle`], so they compose with [`run_interactive`](crate::run_interactive)
//! and every goal-driven session unchanged.
//!
//! The bound side is exact rather than Chernoff-loose: [`majority_error_bound`]
//! evaluates the binomial tail `P[Bin(k, p) > k/2]` directly, and
//! [`majority_votes_needed`] / [`votes_for_session`] invert it (the latter with
//! a union bound over a whole session's questions). [`NoisyPacPlan`] combines
//! that with the qbe-twig PAC sample-size machinery
//! ([`qbe_twig::pac::pac_sample_size`]) into a single certificate: *ask this
//! many questions, re-ask each this many times, and the session converges to
//! an ε-good hypothesis with probability ≥ 1 − δ despite the noise*.
//!
//! For protocol-level sessions (`qbe-server`), the same vote arithmetic runs
//! client-side: the resilient client re-ASKs the pending question (the server
//! repeats it verbatim until answered) and commits the majority answer, so a
//! `k`-vote consumes `k` protocol round-trips but only **one** unit of the
//! session's question budget.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::oracle::Oracle;

/// An oracle whose answers are flipped with probability `p`, from a seeded
/// stream. Wraps any inner oracle; `questions()` is delegated, so budget
/// accounting is unchanged by the noise.
#[derive(Debug, Clone)]
pub struct NoisyOracle<O> {
    inner: O,
    p: f64,
    rng: StdRng,
    flips: u64,
}

impl<O> NoisyOracle<O> {
    /// Wraps `inner`; each answer is flipped with probability `p ∈ [0, 1]`
    /// drawn from a stream seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]` or not finite.
    pub fn new(inner: O, p: f64, seed: u64) -> NoisyOracle<O> {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "flip probability must be in [0, 1], got {p}"
        );
        NoisyOracle {
            inner,
            p,
            rng: StdRng::seed_from_u64(seed),
            flips: 0,
        }
    }

    /// Answers flipped so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<Item, O: Oracle<Item>> Oracle<Item> for NoisyOracle<O> {
    fn label(&mut self, item: &Item) -> bool {
        let truth = self.inner.label(item);
        if self.p > 0.0 && self.rng.gen_bool(self.p) {
            self.flips += 1;
            !truth
        } else {
            truth
        }
    }

    fn questions(&self) -> usize {
        self.inner.questions()
    }
}

/// A meta-oracle that answers each question by asking the wrapped (noisy)
/// oracle `k` times and returning the majority vote.
///
/// `k` is forced odd (rounded up) so votes never tie. Budget accounting is
/// honest: `questions()` delegates to the inner oracle, which counts every
/// individual vote — so a majority session over a question budget spends it
/// `k` times faster, and [`reasks`](Self::reasks) reports the overhead
/// (`(k−1)` extra asks per question).
#[derive(Debug, Clone)]
pub struct MajorityOracle<O> {
    inner: O,
    k: usize,
    reasks: u64,
}

impl<O> MajorityOracle<O> {
    /// Wraps `inner` with `k`-vote majority (k rounded up to an odd ≥ 1).
    pub fn new(inner: O, k: usize) -> MajorityOracle<O> {
        let k = k.max(1);
        MajorityOracle {
            inner,
            k: if k.is_multiple_of(2) { k + 1 } else { k },
            reasks: 0,
        }
    }

    /// The (odd) number of votes per question.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Extra asks beyond one per question, so far.
    pub fn reasks(&self) -> u64 {
        self.reasks
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<Item, O: Oracle<Item>> Oracle<Item> for MajorityOracle<O> {
    fn label(&mut self, item: &Item) -> bool {
        let mut positives = 0usize;
        for _ in 0..self.k {
            if self.inner.label(item) {
                positives += 1;
            }
        }
        self.reasks += (self.k - 1) as u64;
        2 * positives > self.k
    }

    fn questions(&self) -> usize {
        self.inner.questions()
    }
}

/// Exact probability that a `k`-vote majority is wrong when each vote is
/// independently flipped with probability `p`: the binomial tail
/// `P[Bin(k, p) ≥ ⌊k/2⌋ + 1]`.
///
/// Exact (iterated pmf, no Chernoff slack), so the vote counts it induces are
/// 2–3× smaller than the usual `ln(1/δ)/(2(1/2−p)²)` bound at the same
/// confidence.
pub fn majority_error_bound(p: f64, k: usize) -> f64 {
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "flip probability must be in [0, 1], got {p}"
    );
    let k = k.max(1);
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    let need = k / 2 + 1; // majority wrong ⇔ at least this many flips
    let ratio = p / (1.0 - p);
    let mut pmf = (1.0 - p).powi(k as i32); // P[Bin = 0]
    let mut tail = 0.0;
    for i in 0..=k {
        if i >= need {
            tail += pmf;
        }
        // P[Bin = i+1] from P[Bin = i].
        pmf *= ratio * (k - i) as f64 / (i + 1) as f64;
    }
    tail.min(1.0)
}

/// Smallest odd `k` with [`majority_error_bound`]`(p, k) ≤ delta`, i.e. the
/// votes per question needed to answer one question correctly with
/// probability ≥ 1 − δ under flip rate `p`.
///
/// Requires `p < 1/2` (at or beyond 1/2 the majority carries no signal and no
/// finite `k` suffices).
///
/// # Panics
///
/// Panics when `p ≥ 1/2`, `delta ≤ 0`, or either argument is not finite.
pub fn majority_votes_needed(p: f64, delta: f64) -> usize {
    assert!(
        p.is_finite() && (0.0..0.5).contains(&p),
        "majority voting needs flip probability in [0, 1/2), got {p}"
    );
    assert!(
        delta.is_finite() && delta > 0.0,
        "confidence delta must be positive, got {delta}"
    );
    let mut k = 1usize;
    while majority_error_bound(p, k) > delta {
        k += 2;
    }
    k
}

/// Votes per question for a whole session: a union bound over `questions`
/// questions, so that *every* majority in the session is correct with
/// probability ≥ 1 − δ. With all answers correct the session behaves exactly
/// like its noise-free twin — same questions, same transcript, same final
/// query.
pub fn votes_for_session(p: f64, delta: f64, questions: usize) -> usize {
    if p == 0.0 {
        return 1;
    }
    majority_votes_needed(p, delta / questions.max(1) as f64)
}

/// A PAC-style convergence certificate for a noisy session, combining the
/// qbe-twig sample-size machinery with the exact majority bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoisyPacPlan {
    /// Labelled examples that suffice for an ε-good hypothesis with
    /// probability ≥ 1 − δ/2 over the sample
    /// ([`qbe_twig::pac::pac_sample_size`]).
    pub questions: usize,
    /// Votes per question so that all majorities are simultaneously correct
    /// with probability ≥ 1 − δ/2 under flip rate `p`.
    pub votes_per_question: usize,
}

impl NoisyPacPlan {
    /// Builds the plan: split δ between the PAC sample and the vote union
    /// bound, so following the plan converges with probability ≥ 1 − δ
    /// overall.
    pub fn new(epsilon: f64, delta: f64, hypothesis_count: f64, p: f64) -> NoisyPacPlan {
        let questions = qbe_twig::pac::pac_sample_size(epsilon, delta / 2.0, hypothesis_count);
        NoisyPacPlan {
            questions,
            votes_per_question: votes_for_session(p, delta / 2.0, questions),
        }
    }

    /// Total oracle asks the plan costs (`questions × votes_per_question`).
    pub fn total_votes(&self) -> usize {
        self.questions * self.votes_per_question
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{BoundPathQuery, Hypothesis, PathItem, PathLearner};
    use crate::oracle::{run_interactive, GoalOracle};

    fn item(word: &[&str]) -> PathItem {
        PathItem {
            word: word.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn goal() -> BoundPathQuery {
        let q = qbe_graph::learn_path_query(&[
            vec!["highway".to_string()],
            vec!["highway".to_string(), "highway".to_string()],
        ])
        .unwrap();
        BoundPathQuery { query: q }
    }

    struct Truth;
    impl Oracle<bool> for Truth {
        fn label(&mut self, item: &bool) -> bool {
            *item
        }
        fn questions(&self) -> usize {
            0
        }
    }

    #[test]
    fn noisy_oracle_flips_at_the_configured_rate_deterministically() {
        let mut a = NoisyOracle::new(Truth, 0.2, 99);
        let mut b = NoisyOracle::new(Truth, 0.2, 99);
        let seq_a: Vec<bool> = (0..1000).map(|_| a.label(&true)).collect();
        let seq_b: Vec<bool> = (0..1000).map(|_| b.label(&true)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same flips");
        let rate = a.flips() as f64 / 1000.0;
        assert!((rate - 0.2).abs() < 0.05, "observed flip rate {rate}");

        let mut clean = NoisyOracle::new(Truth, 0.0, 99);
        assert!((0..100).all(|_| clean.label(&true)));
        assert_eq!(clean.flips(), 0);
    }

    #[test]
    fn majority_vote_recovers_the_truth_that_raw_noise_destroys() {
        // k chosen from the exact bound: 1000 questions all correct w.p. ≥ 0.999.
        let k = votes_for_session(0.2, 0.001, 1000);
        let mut majority = MajorityOracle::new(NoisyOracle::new(Truth, 0.2, 5), k);
        assert!((0..500).all(|_| majority.label(&true)));
        assert!((0..500).all(|_| !majority.label(&false)));
        assert_eq!(majority.reasks(), 1000 * (k as u64 - 1));

        // The raw noisy oracle at the same seed gets some of these wrong.
        let mut raw = NoisyOracle::new(Truth, 0.2, 5);
        assert!((0..500).any(|_| !raw.label(&true)));
    }

    #[test]
    fn even_k_is_rounded_up_to_odd() {
        let majority = MajorityOracle::new(Truth, 4);
        assert_eq!(majority.k(), 5);
        assert_eq!(MajorityOracle::new(Truth, 0).k(), 1);
    }

    #[test]
    fn exact_majority_bound_matches_hand_computed_binomials() {
        // k=3, p=0.1: wrong ⇔ ≥2 flips: 3·0.01·0.9 + 0.001 = 0.028.
        assert!((majority_error_bound(0.1, 3) - 0.028).abs() < 1e-12);
        // k=1 degenerates to p itself.
        assert!((majority_error_bound(0.3, 1) - 0.3).abs() < 1e-12);
        assert_eq!(majority_error_bound(0.0, 7), 0.0);
        assert_eq!(majority_error_bound(1.0, 7), 1.0);
    }

    #[test]
    fn vote_counts_grow_with_noise_and_confidence() {
        assert_eq!(majority_votes_needed(0.0, 0.01), 1);
        let easy = majority_votes_needed(0.1, 0.01);
        let noisy = majority_votes_needed(0.2, 0.01);
        let strict = majority_votes_needed(0.2, 0.0001);
        assert!(easy < noisy && noisy < strict, "{easy} {noisy} {strict}");
        assert!(noisy % 2 == 1);
        // And the bound the counts came from actually holds at the returned k.
        assert!(majority_error_bound(0.2, noisy) <= 0.01);
        assert!(majority_error_bound(0.2, noisy.saturating_sub(2)) > 0.01);
    }

    #[test]
    fn pac_plan_composes_sample_size_with_vote_counts() {
        let clean = NoisyPacPlan::new(0.1, 0.05, 1000.0, 0.0);
        assert_eq!(clean.votes_per_question, 1);
        let noisy = NoisyPacPlan::new(0.1, 0.05, 1000.0, 0.2);
        assert_eq!(
            noisy.questions, clean.questions,
            "noise never changes the sample size"
        );
        assert!(noisy.votes_per_question > 1);
        assert_eq!(
            noisy.total_votes(),
            noisy.questions * noisy.votes_per_question
        );
    }

    #[test]
    fn interactive_session_under_majority_voting_matches_the_clean_run() {
        let pool = vec![
            item(&["highway"]),
            item(&["highway", "highway"]),
            item(&["highway", "highway", "highway"]),
            item(&["local"]),
            item(&["highway", "local"]),
            item(&["local", "highway"]),
        ];
        let learner = PathLearner;
        let clean = run_interactive(&learner, &pool, &mut GoalOracle::new(goal()));
        let clean_hyp = clean.hypothesis.expect("clean labels are consistent");

        let k = votes_for_session(0.2, 0.01, pool.len());
        let mut voted = MajorityOracle::new(NoisyOracle::new(GoalOracle::new(goal()), 0.2, 13), k);
        let noisy = run_interactive(&learner, &pool, &mut voted);
        let noisy_hyp = noisy.hypothesis.expect("majority answers stay consistent");
        for p in &pool {
            assert_eq!(noisy_hyp.selects(p), clean_hyp.selects(p));
        }
        assert_eq!(
            noisy.interactions, clean.interactions,
            "same questions asked"
        );
    }
}
