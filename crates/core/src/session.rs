//! One vocabulary for *interactive* learning sessions across the three data models.
//!
//! [`crate::framework`] unifies the paper's **batch** learners (labelled items in, hypothesis
//! out); this module unifies the **interactive** ones. An [`InteractiveLearner`] is an
//! object-safe, owned (`'static`), `Send` session: it proposes membership [`Question`]s one at
//! a time, absorbs yes/no answers, and can always render its current hypothesis and the size
//! of that hypothesis's answer set. Homogeneous `Box<dyn InteractiveLearner>`s are what make a
//! multi-tenant session registry possible — the `qbe-server` wire protocol and the
//! [`SessionPool`](crate::workload::SessionPool) workload driver both speak this trait instead
//! of duplicating one driving loop per model.
//!
//! Three adapters wrap the concrete sessions:
//!
//! * [`TwigInteractive`] — node labelling over shared XML documents
//!   ([`qbe_twig::TwigSession`]);
//! * [`PathInteractive`] — path labelling between two graph endpoints
//!   ([`qbe_graph::PathSession`]);
//! * [`JoinInteractive`] — tuple-pair labelling over two relations
//!   ([`qbe_relational::InteractiveSession`]);
//! * [`GraphQueryInteractive`] — pair-membership labelling of RPQ/2RPQ/CRPQ queries over a
//!   typed graph ([`qbe_graph::QuerySession`], the algebra-backed query classes).
//!
//! Every adapter owns its substrate behind an `Arc`, so N concurrent sessions share one corpus
//! and one index. An adapter may also carry a *simulated user* (`with_goal`): the goal query's
//! answer to the pending question is then available via
//! [`InteractiveLearner::oracle_answer`], which is how [`drive`] runs fleets of sessions to
//! completion without a human — the experiments' mode. A server talking to real users simply
//! never calls `oracle_answer`.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crate::workload::SessionReport;
use qbe_graph::{
    GNodeId, PathConstraint, PathSession, PathStrategy, PropertyGraph, QueryClass, QuerySession,
};
use qbe_relational::{interactive::selected_pairs, JoinPredicate, Relation, Strategy};
use qbe_strategy::SessionConfig;
use qbe_twig::{eval, NodeStrategy, TwigQuery, TwigSession};
use qbe_xml::{NodeId, NodeIndex, XmlTree};

/// One membership question, in both machine- and human-readable form.
///
/// `fields` identifies the item being asked about (`doc`/`node` for twig, `path`/`types`/… for
/// path, `left`/`right` for join) as `key=value` pairs whose values never contain spaces — the
/// wire protocol prints them verbatim on one line, and a remote client (or a client-side
/// simulated user) reconstructs the item from them. `prompt` is the sentence a UI would show.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Machine-readable `key=value` identification of the proposed item.
    pub fields: Vec<(&'static str, String)>,
    /// Human-readable rendering of the question.
    pub prompt: String,
}

impl Question {
    /// The value of one field, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in &self.fields {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

/// Errors a driver can make against the ask/answer protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// `answer` was called with no question pending.
    NoPendingQuestion,
    /// `oracle_answer` was requested but the session has no embedded goal.
    NoGoal,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::NoPendingQuestion => write!(f, "no question is pending; call propose"),
            SessionError::NoGoal => write!(f, "session has no embedded goal oracle"),
        }
    }
}

impl std::error::Error for SessionError {}

/// An in-progress interactive learning session, seen model-agnostically.
///
/// The protocol: [`propose`](Self::propose) returns the pending question (asking again without
/// answering returns the *same* question), [`answer`](Self::answer) consumes it. `propose`
/// returns `None` exactly when the session is over — every item is labelled or pruned, or the
/// labels became inconsistent; [`consistent`](Self::consistent) tells which.
pub trait InteractiveLearner: Send {
    /// Which model the session learns over: `"twig"`, `"path"`, `"join"` or `"graph"`.
    fn kind(&self) -> &'static str;

    /// The name of the session's question-selection strategy
    /// ([`qbe_strategy::Strategy::name`]) — what per-strategy workload aggregates group by.
    fn strategy(&self) -> &str {
        ""
    }

    /// The pending question, proposing a fresh one if necessary. `None` when the session is
    /// complete.
    fn propose(&mut self) -> Option<Question>;

    /// Advance to (or confirm) a pending question *without rendering it*: `true` exactly when
    /// [`propose`](Self::propose) would return `Some`. Goal-driven drivers ([`drive`]) never
    /// display questions, so this skips the per-round string formatting `Question` costs;
    /// adapters override the default with their raw-item fast path.
    fn propose_pending(&mut self) -> bool {
        self.propose().is_some()
    }

    /// Record the user's answer to the pending question.
    fn answer(&mut self, positive: bool) -> Result<(), SessionError>;

    /// What the embedded simulated user (the hidden goal query) would answer to the pending
    /// question. Errors when the session was built without a goal, or nothing is pending.
    fn oracle_answer(&self) -> Result<bool, SessionError>;

    /// The current hypothesis rendered as query text (XPath / path constraint / SPJ
    /// predicate). `None` while no hypothesis exists yet (e.g. no positive twig example).
    fn hypothesis(&self) -> Option<String>;

    /// Answer-set size of the current hypothesis on the session's instance, via the indexed
    /// evaluators where available.
    fn answer_set_size(&self) -> usize;

    /// Questions asked (= answers recorded) so far.
    fn questions(&self) -> usize;

    /// Items whose label is inferred rather than asked. Final once the session completes;
    /// mid-session it counts every not-yet-asked item, determined or not.
    fn inferred(&self) -> usize;

    /// Whether the collected labels are still consistent with some hypothesis of the class.
    fn consistent(&self) -> bool;

    /// Whether the session has completed (a `propose` call returned `None`).
    fn done(&self) -> bool;
}

/// Drive a session to completion using its embedded goal oracle and report it in
/// [`SessionPool`](crate::workload::SessionPool) vocabulary.
///
/// This is *the* session-driving loop — the workload experiments, benches and smoke tests all
/// call it instead of hand-rolling one loop per model.
///
/// # Panics
///
/// Panics when the learner has no embedded goal (there is nobody to answer the questions).
pub fn drive(label: impl Into<String>, learner: &mut dyn InteractiveLearner) -> SessionReport {
    while learner.propose_pending() {
        let positive = learner
            .oracle_answer()
            .expect("drive requires a session with an embedded goal oracle");
        learner
            .answer(positive)
            .expect("a question was just proposed");
    }
    SessionReport {
        label: label.into(),
        strategy: learner.strategy().to_string(),
        questions: learner.questions(),
        inferred: learner.inferred(),
        success: learner.consistent() && learner.hypothesis().is_some(),
        wall: Duration::ZERO, // measured by the caller (the pool worker)
    }
}

// ---------------------------------------------------------------------------------------------
// Twig adapter
// ---------------------------------------------------------------------------------------------

/// [`InteractiveLearner`] over node-labelling twig sessions ([`qbe_twig::TwigSession`]).
pub struct TwigInteractive {
    session: TwigSession,
    docs: Arc<Vec<XmlTree>>,
    goal: Option<TwigQuery>,
    /// Goal answer sets, computed lazily per document (same trick as `GoalNodeOracle`); the
    /// `RefCell` keeps [`InteractiveLearner::oracle_answer`] a `&self` query.
    goal_answers: std::cell::RefCell<Vec<Option<BTreeSet<NodeId>>>>,
    pending: Option<(usize, NodeId)>,
    finished: bool,
}

impl TwigInteractive {
    /// Start a session over documents and indexes shared with other sessions.
    pub fn with_shared(
        docs: Arc<Vec<XmlTree>>,
        indexes: Arc<Vec<NodeIndex>>,
        strategy: NodeStrategy,
        seed: u64,
    ) -> TwigInteractive {
        TwigInteractive::with_config(
            docs,
            indexes,
            SessionConfig::new()
                .seed(seed)
                .strategy(strategy.strategy(seed)),
        )
    }

    /// Start a session from a [`SessionConfig`] (pluggable strategy, question budget, seed)
    /// over shared documents and indexes — the primary constructor;
    /// [`with_shared`](Self::with_shared) is a preset over it.
    pub fn with_config(
        docs: Arc<Vec<XmlTree>>,
        indexes: Arc<Vec<NodeIndex>>,
        config: SessionConfig,
    ) -> TwigInteractive {
        let goal_answers = std::cell::RefCell::new(vec![None; docs.len()]);
        TwigInteractive {
            session: TwigSession::with_config(docs.clone(), indexes, config),
            docs,
            goal: None,
            goal_answers,
            pending: None,
            finished: false,
        }
    }

    /// Embed a simulated user answering according to a hidden goal query.
    pub fn with_goal(mut self, goal: TwigQuery) -> TwigInteractive {
        self.goal = Some(goal);
        self
    }

    /// The underlying session (labels, candidate, status queries).
    pub fn session(&self) -> &TwigSession {
        &self.session
    }

    /// Advance the pending-question state machine without rendering anything.
    fn ensure_pending(&mut self) -> Option<(usize, NodeId)> {
        if self.finished {
            return None;
        }
        match self.pending {
            Some(p) => Some(p),
            None => match self.session.propose() {
                Some(p) => {
                    self.pending = Some(p);
                    Some(p)
                }
                None => {
                    self.finished = true;
                    None
                }
            },
        }
    }
}

impl InteractiveLearner for TwigInteractive {
    fn kind(&self) -> &'static str {
        "twig"
    }

    fn strategy(&self) -> &str {
        self.session.strategy_name()
    }

    fn propose(&mut self) -> Option<Question> {
        let (doc, node) = self.ensure_pending()?;
        let label = self.docs[doc].label(node);
        Some(Question {
            fields: vec![
                ("doc", doc.to_string()),
                ("node", node.index().to_string()),
                ("label", label.to_string()),
                (
                    "path",
                    format!("/{}", self.docs[doc].label_path(node).join("/")),
                ),
            ],
            prompt: format!(
                "Does your query select node {} (a <{label}> element) of document {doc}?",
                node.index()
            ),
        })
    }

    fn propose_pending(&mut self) -> bool {
        self.ensure_pending().is_some()
    }

    fn answer(&mut self, positive: bool) -> Result<(), SessionError> {
        let (doc, node) = self.pending.take().ok_or(SessionError::NoPendingQuestion)?;
        self.session.record(doc, node, positive);
        Ok(())
    }

    fn oracle_answer(&self) -> Result<bool, SessionError> {
        let (doc, node) = self.pending.ok_or(SessionError::NoPendingQuestion)?;
        let goal = self.goal.as_ref().ok_or(SessionError::NoGoal)?;
        let mut answers = self.goal_answers.borrow_mut();
        let set = answers[doc].get_or_insert_with(|| eval::select(goal, &self.docs[doc]));
        Ok(set.contains(&node))
    }

    fn hypothesis(&self) -> Option<String> {
        self.session.candidate().map(|q| q.to_xpath())
    }

    fn answer_set_size(&self) -> usize {
        self.session.candidate_answer_count()
    }

    fn questions(&self) -> usize {
        self.session.annotations().len()
    }

    fn inferred(&self) -> usize {
        self.session.total_nodes() - self.questions()
    }

    fn consistent(&self) -> bool {
        self.session.consistent()
    }

    fn done(&self) -> bool {
        self.finished
    }
}

// ---------------------------------------------------------------------------------------------
// Path adapter
// ---------------------------------------------------------------------------------------------

/// [`InteractiveLearner`] over path-labelling sessions between two endpoints of a shared graph
/// ([`qbe_graph::PathSession`]).
pub struct PathInteractive {
    session: PathSession<Arc<PropertyGraph>>,
    goal: Option<PathConstraint>,
    pending: Option<usize>,
    finished: bool,
}

impl PathInteractive {
    /// Start a session for paths between `from` and `to` over a shared graph.
    pub fn new(
        graph: Arc<PropertyGraph>,
        from: GNodeId,
        to: GNodeId,
        max_edges: usize,
        strategy: PathStrategy,
        seed: u64,
    ) -> PathInteractive {
        PathInteractive::with_config(
            graph,
            from,
            to,
            max_edges,
            SessionConfig::new()
                .seed(seed)
                .strategy(strategy.strategy(seed)),
        )
    }

    /// Start a session from a [`SessionConfig`] (pluggable strategy, question budget, seed) —
    /// the primary constructor; [`new`](Self::new) is a preset over it.
    pub fn with_config(
        graph: Arc<PropertyGraph>,
        from: GNodeId,
        to: GNodeId,
        max_edges: usize,
        config: SessionConfig,
    ) -> PathInteractive {
        PathInteractive {
            session: PathSession::with_config(graph, from, to, max_edges, config),
            goal: None,
            pending: None,
            finished: false,
        }
    }

    /// Embed a simulated user answering according to a hidden goal constraint.
    pub fn with_goal(mut self, goal: PathConstraint) -> PathInteractive {
        self.goal = Some(goal);
        self
    }

    /// Provide constraints learned for previous users (the workload prior).
    pub fn with_workload(mut self, workload: Vec<PathConstraint>) -> PathInteractive {
        self.session = self.session.with_workload(workload);
        self
    }

    /// The underlying session.
    pub fn session(&self) -> &PathSession<Arc<PropertyGraph>> {
        &self.session
    }

    /// Advance the pending-question state machine without rendering anything.
    fn ensure_pending(&mut self) -> Option<usize> {
        if self.finished {
            return None;
        }
        match self.pending {
            Some(ix) => Some(ix),
            None => match self.session.propose() {
                Some(ix) => {
                    self.pending = Some(ix);
                    Some(ix)
                }
                None => {
                    self.finished = true;
                    None
                }
            },
        }
    }
}

impl InteractiveLearner for PathInteractive {
    fn kind(&self) -> &'static str {
        "path"
    }

    fn strategy(&self) -> &str {
        self.session.strategy_name()
    }

    fn propose(&mut self) -> Option<Question> {
        let ix = self.ensure_pending()?;
        let graph = self.session.graph();
        let features = self.session.features(ix);
        let word = self.session.path(ix).word(graph).join(",");
        let cities: Vec<String> = features
            .visited
            .iter()
            .map(|n| graph.display_name(n).replace(' ', "_"))
            .collect();
        let types: Vec<&str> = features.uniform_types.iter().map(String::as_str).collect();
        Some(Question {
            fields: vec![
                ("path", ix.to_string()),
                ("edges", word),
                ("distance", format!("{:.0}", features.distance)),
                ("types", types.join(",")),
                ("via", cities.join(",")),
            ],
            prompt: format!(
                "Is the itinerary via {} (distance {:.0}) one of the paths you want?",
                cities.join(", "),
                features.distance
            ),
        })
    }

    fn propose_pending(&mut self) -> bool {
        self.ensure_pending().is_some()
    }

    fn answer(&mut self, positive: bool) -> Result<(), SessionError> {
        let ix = self.pending.take().ok_or(SessionError::NoPendingQuestion)?;
        self.session.record(ix, positive);
        Ok(())
    }

    fn oracle_answer(&self) -> Result<bool, SessionError> {
        let ix = self.pending.ok_or(SessionError::NoPendingQuestion)?;
        let goal = self.goal.as_ref().ok_or(SessionError::NoGoal)?;
        Ok(goal.accepts_features(self.session.features(ix)))
    }

    fn hypothesis(&self) -> Option<String> {
        Some(self.session.most_specific().describe(self.session.graph()))
    }

    fn answer_set_size(&self) -> usize {
        self.session.accepted_count()
    }

    fn questions(&self) -> usize {
        self.session.labelled_count()
    }

    fn inferred(&self) -> usize {
        self.session.candidate_count() - self.questions()
    }

    fn consistent(&self) -> bool {
        // The explicit version space never admits an inconsistent labelling: a constraint
        // either survives every label or leaves the space.
        true
    }

    fn done(&self) -> bool {
        self.finished
    }
}

// ---------------------------------------------------------------------------------------------
// Graph-query adapter
// ---------------------------------------------------------------------------------------------

/// [`InteractiveLearner`] over pair-membership query-learning sessions
/// ([`qbe_graph::QuerySession`]): the algebra-backed RPQ / 2RPQ / CRPQ classes over a typed
/// graph (see [`qbe_graph::typed_road_view`]).
pub struct GraphQueryInteractive {
    session: QuerySession<Arc<PropertyGraph>>,
    /// The hidden goal query's answer set, when a simulated user is embedded.
    goal: Option<BTreeSet<(GNodeId, GNodeId)>>,
    pending: Option<usize>,
    finished: bool,
}

impl GraphQueryInteractive {
    /// Start a session of a query class over a shared typed graph with the default halving
    /// strategy.
    pub fn new(graph: Arc<PropertyGraph>, class: QueryClass, seed: u64) -> GraphQueryInteractive {
        GraphQueryInteractive::with_config(graph, class, SessionConfig::new().seed(seed))
    }

    /// Start a session from a [`SessionConfig`] (pluggable strategy, question budget, seed) —
    /// the primary constructor; [`new`](Self::new) is a preset over it.
    pub fn with_config(
        graph: Arc<PropertyGraph>,
        class: QueryClass,
        config: SessionConfig,
    ) -> GraphQueryInteractive {
        GraphQueryInteractive {
            session: QuerySession::with_config(graph, class, config),
            goal: None,
            pending: None,
            finished: false,
        }
    }

    /// Embed a simulated user answering membership in a hidden goal answer set.
    pub fn with_goal(mut self, goal: BTreeSet<(GNodeId, GNodeId)>) -> GraphQueryInteractive {
        self.goal = Some(goal);
        self
    }

    /// The underlying session.
    pub fn session(&self) -> &QuerySession<Arc<PropertyGraph>> {
        &self.session
    }

    /// Advance the pending-question state machine without rendering anything.
    fn ensure_pending(&mut self) -> Option<usize> {
        if self.finished {
            return None;
        }
        match self.pending {
            Some(q) => Some(q),
            None => match self.session.propose() {
                Some(q) => {
                    self.pending = Some(q);
                    Some(q)
                }
                None => {
                    self.finished = true;
                    None
                }
            },
        }
    }
}

impl InteractiveLearner for GraphQueryInteractive {
    fn kind(&self) -> &'static str {
        "graph"
    }

    fn strategy(&self) -> &str {
        self.session.strategy_name()
    }

    fn propose(&mut self) -> Option<Question> {
        let q = self.ensure_pending()?;
        let (s, t) = self.session.question_pair(q);
        let graph = self.session.graph();
        let source = graph.display_name(s).replace(' ', "_");
        let target = graph.display_name(t).replace(' ', "_");
        Some(Question {
            fields: vec![
                ("pair", q.to_string()),
                ("source", source.clone()),
                ("target", target.clone()),
                ("source_id", s.0.to_string()),
                ("target_id", t.0.to_string()),
            ],
            prompt: format!("Should your query select the pair ({source}, {target})?"),
        })
    }

    fn propose_pending(&mut self) -> bool {
        self.ensure_pending().is_some()
    }

    fn answer(&mut self, positive: bool) -> Result<(), SessionError> {
        let q = self.pending.take().ok_or(SessionError::NoPendingQuestion)?;
        self.session.record(q, positive);
        Ok(())
    }

    fn oracle_answer(&self) -> Result<bool, SessionError> {
        let q = self.pending.ok_or(SessionError::NoPendingQuestion)?;
        let goal = self.goal.as_ref().ok_or(SessionError::NoGoal)?;
        Ok(goal.contains(&self.session.question_pair(q)))
    }

    fn hypothesis(&self) -> Option<String> {
        Some(self.session.learned().0)
    }

    fn answer_set_size(&self) -> usize {
        self.session.learned().1.len()
    }

    fn questions(&self) -> usize {
        self.session.labelled_count()
    }

    fn inferred(&self) -> usize {
        self.session.question_count() - self.questions()
    }

    fn consistent(&self) -> bool {
        self.session.version_space_size() >= 1
    }

    fn done(&self) -> bool {
        self.finished
    }
}

// ---------------------------------------------------------------------------------------------
// Join adapter
// ---------------------------------------------------------------------------------------------

/// [`InteractiveLearner`] over tuple-pair-labelling join sessions
/// ([`qbe_relational::InteractiveSession`]).
pub struct JoinInteractive {
    session: qbe_relational::InteractiveSession<Arc<Relation>>,
    goal: Option<JoinPredicate>,
    pending: Option<(usize, usize)>,
    finished: bool,
}

impl JoinInteractive {
    /// Start a session over two shared relations.
    pub fn new(
        left: Arc<Relation>,
        right: Arc<Relation>,
        strategy: Strategy,
        seed: u64,
    ) -> JoinInteractive {
        JoinInteractive::with_config(
            left,
            right,
            SessionConfig::new()
                .seed(seed)
                .strategy(strategy.strategy(seed)),
        )
    }

    /// Start a session from a [`SessionConfig`] (pluggable strategy, question budget, seed) —
    /// the primary constructor; [`new`](Self::new) is a preset over it.
    pub fn with_config(
        left: Arc<Relation>,
        right: Arc<Relation>,
        config: SessionConfig,
    ) -> JoinInteractive {
        JoinInteractive {
            session: qbe_relational::InteractiveSession::with_config(left, right, config),
            goal: None,
            pending: None,
            finished: false,
        }
    }

    /// Embed a simulated user answering according to a hidden goal predicate.
    pub fn with_goal(mut self, goal: JoinPredicate) -> JoinInteractive {
        self.goal = Some(goal);
        self
    }

    /// The underlying session.
    pub fn session(&self) -> &qbe_relational::InteractiveSession<Arc<Relation>> {
        &self.session
    }

    /// Advance the pending-question state machine without rendering anything.
    fn ensure_pending(&mut self) -> Option<(usize, usize)> {
        if self.finished {
            return None;
        }
        match self.pending {
            Some(p) => Some(p),
            None => match self.session.propose() {
                Some(p) => {
                    self.pending = Some(p);
                    Some(p)
                }
                None => {
                    self.finished = true;
                    None
                }
            },
        }
    }
}

impl InteractiveLearner for JoinInteractive {
    fn kind(&self) -> &'static str {
        "join"
    }

    fn strategy(&self) -> &str {
        self.session.strategy_name()
    }

    fn propose(&mut self) -> Option<Question> {
        let (l, r) = self.ensure_pending()?;
        let left_tuple = self.session.left().tuples()[l].to_string();
        let right_tuple = self.session.right().tuples()[r].to_string();
        Some(Question {
            fields: vec![
                ("left", l.to_string()),
                ("right", r.to_string()),
                ("left_tuple", left_tuple.replace(' ', "")),
                ("right_tuple", right_tuple.replace(' ', "")),
            ],
            prompt: format!(
                "Should tuples {} and {} be joined?",
                self.session.left().tuples()[l],
                self.session.right().tuples()[r]
            ),
        })
    }

    fn propose_pending(&mut self) -> bool {
        self.ensure_pending().is_some()
    }

    fn answer(&mut self, positive: bool) -> Result<(), SessionError> {
        let (l, r) = self.pending.take().ok_or(SessionError::NoPendingQuestion)?;
        self.session.record(l, r, positive);
        Ok(())
    }

    fn oracle_answer(&self) -> Result<bool, SessionError> {
        let (l, r) = self.pending.ok_or(SessionError::NoPendingQuestion)?;
        let goal = self.goal.as_ref().ok_or(SessionError::NoGoal)?;
        Ok(goal.satisfied_by(
            &self.session.left().tuples()[l],
            &self.session.right().tuples()[r],
        ))
    }

    fn hypothesis(&self) -> Option<String> {
        Some(
            self.session
                .current_hypothesis()
                .describe(self.session.left().schema(), self.session.right().schema()),
        )
    }

    fn answer_set_size(&self) -> usize {
        selected_pairs(
            self.session.left(),
            self.session.right(),
            self.session.current_hypothesis(),
        )
        .len()
    }

    fn questions(&self) -> usize {
        self.session.labelled_count()
    }

    fn inferred(&self) -> usize {
        self.session.left().len() * self.session.right().len() - self.questions()
    }

    fn consistent(&self) -> bool {
        self.session.is_consistent()
    }

    fn done(&self) -> bool {
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbe_graph::{generate_geo_graph, GeoConfig};
    use qbe_relational::{generate_join_instance, JoinInstanceConfig};
    use qbe_twig::parse_xpath;
    use qbe_xml::parse_xml;

    fn twig_learner() -> TwigInteractive {
        let docs = Arc::new(vec![parse_xml(
            "<site><people><person><name>a</name></person><person><name>b</name></person>\
             </people><items><item><name>i</name></item></items></site>",
        )
        .unwrap()]);
        let indexes = Arc::new(docs.iter().map(NodeIndex::build).collect::<Vec<_>>());
        TwigInteractive::with_shared(docs, indexes, NodeStrategy::LabelAffinity, 3)
            .with_goal(parse_xpath("//person/name").unwrap())
    }

    #[test]
    fn twig_adapter_drives_to_the_goal() {
        let mut learner = twig_learner();
        let report = drive("t", &mut learner);
        assert!(report.success);
        assert!(learner.done());
        assert_eq!(report.questions, learner.questions());
        let hypothesis = learner.hypothesis().expect("learned a query");
        assert!(hypothesis.contains("person"), "{hypothesis}");
        assert_eq!(learner.answer_set_size(), 2);
        // site, people, 2×person, 2×name, items, item, name = 9 nodes.
        assert_eq!(report.inferred + report.questions, 9);
    }

    #[test]
    fn propose_is_stable_until_answered() {
        let mut learner = twig_learner();
        let q1 = learner.propose().expect("a first question");
        let q2 = learner.propose().expect("same question again");
        assert_eq!(q1, q2);
        assert!(learner.answer(true).is_ok() || learner.answer(false).is_ok());
        assert!(matches!(
            learner.answer(true),
            Err(SessionError::NoPendingQuestion)
        ));
    }

    #[test]
    fn question_fields_identify_the_item() {
        let mut learner = twig_learner();
        let q = learner.propose().unwrap();
        let doc: usize = q.field("doc").unwrap().parse().unwrap();
        let node: usize = q.field("node").unwrap().parse().unwrap();
        assert_eq!(doc, 0);
        assert!(node < 8);
        assert!(q.field("label").is_some());
        assert!(q.to_string().contains("doc=0"));
    }

    #[test]
    fn path_adapter_drives_to_the_goal() {
        let graph = Arc::new(generate_geo_graph(&GeoConfig {
            cities: 12,
            connectivity: 3,
            ..Default::default()
        }));
        let from = graph.find_node_by_property("name", "city0").unwrap();
        let to = graph.find_node_by_property("name", "city5").unwrap();
        let goal = PathConstraint {
            road_type: Some("highway".to_string()),
            max_distance: None,
            via: None,
        };
        let mut learner = PathInteractive::new(graph, from, to, 6, PathStrategy::Halving, 5)
            .with_goal(goal.clone());
        let report = drive("p", &mut learner);
        assert!(report.success);
        let hypothesis = learner.hypothesis().expect("path sessions always have one");
        assert!(hypothesis.contains("highway"), "{hypothesis}");
        // The learned constraint accepts exactly the goal-accepted candidates.
        let accepted = learner.answer_set_size();
        let expected = (0..learner.session().candidate_count())
            .filter(|&ix| goal.accepts_features(learner.session().features(ix)))
            .count();
        assert_eq!(accepted, expected);
    }

    #[test]
    fn graph_query_adapter_drives_to_the_goal() {
        use qbe_algebra::{EvalCache, QueryStore};
        use qbe_graph::{eval_expr_pairs, typed_road_view, GraphIndex};
        let geo = generate_geo_graph(&GeoConfig {
            cities: 12,
            connectivity: 3,
            ..Default::default()
        });
        let typed = Arc::new(typed_road_view(&geo));
        // Hidden goal: one-or-more highway hops — a member of the RPQ candidate pool.
        let index = GraphIndex::build(&typed);
        let mut store = QueryStore::new();
        let h = store.label("highway");
        let goal_expr = store.plus(h);
        let goal = eval_expr_pairs(&index, &store, &mut EvalCache::new(), goal_expr);
        let mut learner =
            GraphQueryInteractive::new(typed, QueryClass::Rpq, 7).with_goal(goal.clone());
        let q = learner.propose().expect("an informative pair");
        assert!(q.field("source").is_some() && q.field("target_id").is_some());
        let report = drive("g", &mut learner);
        assert!(report.success);
        assert_eq!(learner.kind(), "graph");
        assert_eq!(learner.session().learned().1, goal);
        assert_eq!(learner.answer_set_size(), goal.len());
        let hypothesis = learner
            .hypothesis()
            .expect("graph sessions always have one");
        assert!(hypothesis.contains("highway"), "{hypothesis}");
    }

    #[test]
    fn join_adapter_drives_to_the_goal() {
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
            left_rows: 12,
            right_rows: 12,
            extra_attributes: 2,
            domain_size: 5,
            seed: 9,
        });
        let (left, right) = (Arc::new(left), Arc::new(right));
        let mut learner =
            JoinInteractive::new(left.clone(), right.clone(), Strategy::HalveLattice, 9)
                .with_goal(goal.clone());
        let report = drive("j", &mut learner);
        assert!(report.success);
        assert_eq!(
            selected_pairs(&left, &right, learner.session().current_hypothesis()),
            selected_pairs(&left, &right, &goal),
            "learned a semantically different join"
        );
        assert_eq!(
            learner.answer_set_size(),
            selected_pairs(&left, &right, &goal).len()
        );
    }

    #[test]
    fn oracle_answer_requires_goal_and_pending_question() {
        let docs = Arc::new(vec![parse_xml("<a><b/></a>").unwrap()]);
        let indexes = Arc::new(docs.iter().map(NodeIndex::build).collect::<Vec<_>>());
        let mut learner =
            TwigInteractive::with_shared(docs, indexes, NodeStrategy::DocumentOrder, 0);
        assert_eq!(
            learner.oracle_answer(),
            Err(SessionError::NoPendingQuestion)
        );
        learner.propose().unwrap();
        assert_eq!(learner.oracle_answer(), Err(SessionError::NoGoal));
    }
}
