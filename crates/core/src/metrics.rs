//! Model-agnostic quality metrics for learned queries.
//!
//! Every learner in the workspace (twig, join, semijoin, path) classifies *items* (XML nodes,
//! tuple pairs, tuples, paths) as selected or not; comparing the learned query against the goal
//! query on a set of items therefore always reduces to a confusion matrix.

use std::fmt;

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Items selected by both the learned and the goal query.
    pub true_positives: usize,
    /// Items selected by the learned query but not by the goal.
    pub false_positives: usize,
    /// Items selected by the goal but missed by the learned query.
    pub false_negatives: usize,
    /// Items selected by neither.
    pub true_negatives: usize,
}

impl ConfusionMatrix {
    /// Record one item.
    pub fn record(&mut self, goal_selects: bool, learned_selects: bool) {
        match (goal_selects, learned_selects) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Build a matrix by comparing two predicates over a set of items.
    pub fn compare<I>(
        items: impl IntoIterator<Item = I>,
        goal: impl Fn(&I) -> bool,
        learned: impl Fn(&I) -> bool,
    ) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::default();
        for item in items {
            m.record(goal(&item), learned(&item));
        }
        m
    }

    /// Total number of recorded items.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }

    /// Precision (1.0 when nothing was selected).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall (1.0 when the goal selects nothing).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Error rate.
    pub fn error(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.false_positives + self.false_negatives) as f64 / self.total() as f64
        }
    }

    /// Whether the learned query is semantically identical to the goal on the compared items.
    pub fn is_exact(&self) -> bool {
        self.false_positives == 0 && self.false_negatives == 0
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "precision {:.3}, recall {:.3}, F1 {:.3} ({} items)",
            self.precision(),
            self.recall(),
            self.f1(),
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_is_exact() {
        let m = ConfusionMatrix::compare(0..100, |i| i % 3 == 0, |i| i % 3 == 0);
        assert!(m.is_exact());
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.error(), 0.0);
    }

    #[test]
    fn disjoint_selections_have_zero_f1() {
        let m = ConfusionMatrix::compare(0..10, |i| *i < 5, |i| *i >= 5);
        assert_eq!(m.true_positives, 0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.error(), 1.0);
    }

    #[test]
    fn partial_overlap_metrics() {
        // goal: 0..6 (6 items), learned: 3..9 (6 items), overlap 3..6 (3 items) of 0..10.
        let m = ConfusionMatrix::compare(0..10, |i| *i < 6, |i| *i >= 3 && *i < 9);
        assert_eq!(m.true_positives, 3);
        assert_eq!(m.false_positives, 3);
        assert_eq!(m.false_negatives, 3);
        assert_eq!(m.true_negatives, 1);
        assert!((m.precision() - 0.5).abs() < 1e-9);
        assert!((m.recall() - 0.5).abs() < 1e-9);
        assert!(!m.is_exact());
    }

    #[test]
    fn empty_comparison_is_vacuously_perfect() {
        let m = ConfusionMatrix::compare(std::iter::empty::<u32>(), |_| true, |_| false);
        assert_eq!(m.total(), 0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.error(), 0.0);
    }
}
