//! Arena-based XML tree model.
//!
//! The paper's learning algorithms operate on *unordered* labelled trees: an XML document is a
//! rooted tree whose nodes carry an element label, optional attributes, and optional text
//! content. Sibling order is retained for parsing/serialisation fidelity but the schema and
//! query formalisms (disjunctive multiplicity schemas, twig queries) deliberately ignore it.
//!
//! Trees are stored in a flat arena (`XmlTree::nodes`) and addressed by [`NodeId`], which makes
//! node annotations (the "examples" of the learning framework) cheap to represent as plain ids.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a node inside an [`XmlTree`] arena.
///
/// Ids are only meaningful relative to the tree that produced them. The root of every tree is
/// [`NodeId::ROOT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root node of any tree.
    pub const ROOT: NodeId = NodeId(0);

    /// Raw index of this node in the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a node id from a raw arena index.
    ///
    /// Only useful for tests and for tools that serialise node annotations; the id is not
    /// validated against any particular tree.
    pub fn from_index(ix: usize) -> NodeId {
        NodeId(ix as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Node ids index dense bitsets ([`qbe_bitset::DenseSet<NodeId>`]) directly: the arena index is
/// the dense interning. This is what the indexed evaluators' match sets are keyed by.
impl qbe_bitset::DenseId for NodeId {
    fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Payload of a single node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct NodeData {
    pub(crate) label: String,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    pub(crate) attributes: BTreeMap<String, String>,
    pub(crate) text: Option<String>,
}

/// A rooted, labelled XML tree.
///
/// # Examples
///
/// ```
/// use qbe_xml::XmlTree;
///
/// let mut doc = XmlTree::new("site");
/// let people = doc.add_child(XmlTree::ROOT, "people");
/// let person = doc.add_child(people, "person");
/// doc.set_attribute(person, "id", "person0");
/// let name = doc.add_child(person, "name");
/// doc.set_text(name, "Alice");
///
/// assert_eq!(doc.label(XmlTree::ROOT), "site");
/// assert_eq!(doc.children(people).len(), 1);
/// assert_eq!(doc.text(name), Some("Alice"));
/// assert_eq!(doc.size(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlTree {
    nodes: Vec<NodeData>,
}

impl XmlTree {
    /// Alias for [`NodeId::ROOT`], for readability at call sites.
    pub const ROOT: NodeId = NodeId::ROOT;

    /// Create a new tree consisting of a single root node with the given label.
    pub fn new(root_label: impl Into<String>) -> XmlTree {
        XmlTree {
            nodes: vec![NodeData {
                label: root_label.into(),
                parent: None,
                children: Vec::new(),
                attributes: BTreeMap::new(),
                text: None,
            }],
        }
    }

    /// Append a new child with the given label under `parent` and return its id.
    ///
    /// # Panics
    /// Panics if `parent` is not a node of this tree.
    pub fn add_child(&mut self, parent: NodeId, label: impl Into<String>) -> NodeId {
        assert!(
            parent.index() < self.nodes.len(),
            "parent {parent} out of bounds"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            label: label.into(),
            parent: Some(parent),
            children: Vec::new(),
            attributes: BTreeMap::new(),
            text: None,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Label of a node.
    pub fn label(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].label
    }

    /// Change the label of a node.
    pub fn set_label(&mut self, id: NodeId, label: impl Into<String>) {
        self.nodes[id.index()].label = label.into();
    }

    /// Text content of a node, if any.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        self.nodes[id.index()].text.as_deref()
    }

    /// Set the text content of a node.
    pub fn set_text(&mut self, id: NodeId, text: impl Into<String>) {
        self.nodes[id.index()].text = Some(text.into());
    }

    /// Attribute value of a node, if present.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.nodes[id.index()]
            .attributes
            .get(name)
            .map(String::as_str)
    }

    /// All attributes of a node, in name order.
    pub fn attributes(&self, id: NodeId) -> impl Iterator<Item = (&str, &str)> {
        self.nodes[id.index()]
            .attributes
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Set (or overwrite) an attribute of a node.
    pub fn set_attribute(&mut self, id: NodeId, name: impl Into<String>, value: impl Into<String>) {
        self.nodes[id.index()]
            .attributes
            .insert(name.into(), value.into());
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// Children of a node, in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Whether the node has no element children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id.index()].children.is_empty()
    }

    /// Iterator over all node ids in creation (pre-order-compatible) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Depth of a node (root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the tree (a single-node tree has height 0).
    pub fn height(&self) -> usize {
        self.node_ids().map(|n| self.depth(n)).max().unwrap_or(0)
    }

    /// Ancestors of a node from its parent up to the root.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Path of labels from the root down to (and including) the node.
    pub fn label_path(&self, id: NodeId) -> Vec<String> {
        let mut path: Vec<String> = self
            .ancestors(id)
            .into_iter()
            .map(|a| self.label(a).to_string())
            .collect();
        path.reverse();
        path.push(self.label(id).to_string());
        path
    }

    /// Descendants of a node in pre-order, excluding the node itself.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.children(id).iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            for c in self.children(n).iter().rev() {
                stack.push(*c);
            }
        }
        out
    }

    /// Pre-order traversal starting from (and including) `id`.
    pub fn preorder(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = vec![id];
        out.extend(self.descendants(id));
        out
    }

    /// All nodes carrying the given label.
    pub fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
        self.node_ids()
            .filter(|n| self.label(*n) == label)
            .collect()
    }

    /// The set of distinct labels occurring in the tree, sorted.
    pub fn alphabet(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.nodes.iter().map(|n| n.label.clone()).collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Counts of child labels under a node (the "unordered content" the schema formalisms see).
    pub fn child_label_counts(&self, id: NodeId) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for c in self.children(id) {
            *counts.entry(self.label(*c).to_string()).or_insert(0) += 1;
        }
        counts
    }

    /// Extract the subtree rooted at `id` as a fresh tree (ids are renumbered).
    pub fn subtree(&self, id: NodeId) -> XmlTree {
        let mut out = XmlTree::new(self.label(id));
        out.nodes[0].attributes = self.nodes[id.index()].attributes.clone();
        out.nodes[0].text = self.nodes[id.index()].text.clone();
        self.copy_children_into(id, &mut out, NodeId::ROOT);
        out
    }

    fn copy_children_into(&self, src: NodeId, dst_tree: &mut XmlTree, dst: NodeId) {
        for &c in self.children(src) {
            let new = dst_tree.add_child(dst, self.label(c));
            dst_tree.nodes[new.index()].attributes = self.nodes[c.index()].attributes.clone();
            dst_tree.nodes[new.index()].text = self.nodes[c.index()].text.clone();
            self.copy_children_into(c, dst_tree, new);
        }
    }

    /// Graft a copy of `other` as a new child of `parent`; returns the id of the grafted root.
    pub fn graft(&mut self, parent: NodeId, other: &XmlTree) -> NodeId {
        let new_root = self.add_child(parent, other.label(NodeId::ROOT));
        self.nodes[new_root.index()].attributes = other.nodes[0].attributes.clone();
        self.nodes[new_root.index()].text = other.nodes[0].text.clone();
        other.copy_children_into(NodeId::ROOT, self, new_root);
        new_root
    }

    /// Canonical string encoding that ignores sibling order, attributes and text.
    ///
    /// Two trees have the same canonical structure iff they are isomorphic as unordered
    /// labelled trees — the notion of equality relevant to twig queries and multiplicity
    /// schemas.
    pub fn canonical_structure(&self, id: NodeId) -> String {
        let mut child_encodings: Vec<String> = self
            .children(id)
            .iter()
            .map(|c| self.canonical_structure(*c))
            .collect();
        child_encodings.sort();
        format!("{}({})", self.label(id), child_encodings.join(","))
    }

    /// Unordered isomorphism between two whole trees (labels only).
    pub fn unordered_eq(&self, other: &XmlTree) -> bool {
        self.canonical_structure(NodeId::ROOT) == other.canonical_structure(NodeId::ROOT)
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.node_ids().filter(|n| self.is_leaf(*n)).count()
    }
}

/// Fluent builder for small trees, used pervasively in tests and examples.
///
/// ```
/// use qbe_xml::tree::TreeBuilder;
///
/// let doc = TreeBuilder::new("library")
///     .open("book")
///     .leaf_text("title", "Dune")
///     .leaf_text("author", "Herbert")
///     .close()
///     .open("book")
///     .leaf_text("title", "Foundation")
///     .close()
///     .build();
/// assert_eq!(doc.nodes_with_label("book").len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TreeBuilder {
    tree: XmlTree,
    stack: Vec<NodeId>,
}

impl TreeBuilder {
    /// Start a tree with the given root label; the root becomes the current open element.
    pub fn new(root: impl Into<String>) -> TreeBuilder {
        TreeBuilder {
            tree: XmlTree::new(root),
            stack: vec![NodeId::ROOT],
        }
    }

    fn current(&self) -> NodeId {
        *self.stack.last().expect("builder stack never empty")
    }

    /// Open a new child element; subsequent calls add under it until [`close`](Self::close).
    pub fn open(mut self, label: impl Into<String>) -> TreeBuilder {
        let id = self.tree.add_child(self.current(), label);
        self.stack.push(id);
        self
    }

    /// Close the most recently opened element.
    pub fn close(mut self) -> TreeBuilder {
        assert!(self.stack.len() > 1, "cannot close the root element");
        self.stack.pop();
        self
    }

    /// Add an empty leaf child.
    pub fn leaf(mut self, label: impl Into<String>) -> TreeBuilder {
        self.tree.add_child(self.current(), label);
        self
    }

    /// Add a leaf child with text content.
    pub fn leaf_text(mut self, label: impl Into<String>, text: impl Into<String>) -> TreeBuilder {
        let id = self.tree.add_child(self.current(), label);
        self.tree.set_text(id, text);
        self
    }

    /// Set an attribute on the currently open element.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> TreeBuilder {
        let cur = self.current();
        self.tree.set_attribute(cur, name, value);
        self
    }

    /// Set text content on the currently open element.
    pub fn text(mut self, text: impl Into<String>) -> TreeBuilder {
        let cur = self.current();
        self.tree.set_text(cur, text);
        self
    }

    /// Finish the tree (all open elements are implicitly closed).
    pub fn build(self) -> XmlTree {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> XmlTree {
        // site -> (regions -> (europe, asia), people -> person(name))
        let mut t = XmlTree::new("site");
        let regions = t.add_child(XmlTree::ROOT, "regions");
        t.add_child(regions, "europe");
        t.add_child(regions, "asia");
        let people = t.add_child(XmlTree::ROOT, "people");
        let person = t.add_child(people, "person");
        let name = t.add_child(person, "name");
        t.set_text(name, "Alice");
        t
    }

    #[test]
    fn root_has_no_parent_and_depth_zero() {
        let t = sample();
        assert_eq!(t.parent(XmlTree::ROOT), None);
        assert_eq!(t.depth(XmlTree::ROOT), 0);
    }

    #[test]
    fn add_child_links_parent_and_children() {
        let mut t = XmlTree::new("a");
        let b = t.add_child(XmlTree::ROOT, "b");
        assert_eq!(t.parent(b), Some(XmlTree::ROOT));
        assert_eq!(t.children(XmlTree::ROOT), &[b]);
        assert_eq!(t.label(b), "b");
    }

    #[test]
    fn size_counts_all_nodes() {
        assert_eq!(sample().size(), 7);
    }

    #[test]
    fn depth_and_height() {
        let t = sample();
        let name = t.nodes_with_label("name")[0];
        assert_eq!(t.depth(name), 3);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn ancestors_walk_up_to_root() {
        let t = sample();
        let name = t.nodes_with_label("name")[0];
        let anc: Vec<String> = t
            .ancestors(name)
            .iter()
            .map(|a| t.label(*a).to_string())
            .collect();
        assert_eq!(anc, vec!["person", "people", "site"]);
    }

    #[test]
    fn label_path_is_root_to_node() {
        let t = sample();
        let name = t.nodes_with_label("name")[0];
        assert_eq!(t.label_path(name), vec!["site", "people", "person", "name"]);
    }

    #[test]
    fn descendants_are_preorder() {
        let t = sample();
        let labels: Vec<&str> = t
            .descendants(XmlTree::ROOT)
            .iter()
            .map(|n| t.label(*n))
            .collect();
        assert_eq!(
            labels,
            vec!["regions", "europe", "asia", "people", "person", "name"]
        );
    }

    #[test]
    fn preorder_includes_start_node() {
        let t = sample();
        assert_eq!(t.preorder(XmlTree::ROOT).len(), t.size());
    }

    #[test]
    fn alphabet_is_sorted_and_deduped() {
        let t = sample();
        assert_eq!(
            t.alphabet(),
            vec!["asia", "europe", "name", "people", "person", "regions", "site"]
        );
    }

    #[test]
    fn child_label_counts_groups_labels() {
        let mut t = XmlTree::new("r");
        t.add_child(XmlTree::ROOT, "a");
        t.add_child(XmlTree::ROOT, "a");
        t.add_child(XmlTree::ROOT, "b");
        let counts = t.child_label_counts(XmlTree::ROOT);
        assert_eq!(counts.get("a"), Some(&2));
        assert_eq!(counts.get("b"), Some(&1));
    }

    #[test]
    fn subtree_extracts_copy() {
        let t = sample();
        let people = t.nodes_with_label("people")[0];
        let sub = t.subtree(people);
        assert_eq!(sub.label(XmlTree::ROOT), "people");
        assert_eq!(sub.size(), 3);
        assert_eq!(sub.text(sub.nodes_with_label("name")[0]), Some("Alice"));
    }

    #[test]
    fn graft_appends_copy() {
        let mut t = XmlTree::new("root");
        let other = sample();
        let grafted = t.graft(XmlTree::ROOT, &other);
        assert_eq!(t.label(grafted), "site");
        assert_eq!(t.size(), 1 + other.size());
    }

    #[test]
    fn unordered_eq_ignores_sibling_order() {
        let a = TreeBuilder::new("r").leaf("x").leaf("y").build();
        let b = TreeBuilder::new("r").leaf("y").leaf("x").build();
        assert!(a.unordered_eq(&b));
        assert_ne!(a, b); // ordered equality still distinguishes them
    }

    #[test]
    fn unordered_eq_respects_structure() {
        let a = TreeBuilder::new("r").open("x").leaf("y").close().build();
        let b = TreeBuilder::new("r").leaf("x").leaf("y").build();
        assert!(!a.unordered_eq(&b));
    }

    #[test]
    fn attributes_are_sorted_by_name() {
        let mut t = XmlTree::new("e");
        t.set_attribute(XmlTree::ROOT, "z", "1");
        t.set_attribute(XmlTree::ROOT, "a", "2");
        let attrs: Vec<(&str, &str)> = t.attributes(XmlTree::ROOT).collect();
        assert_eq!(attrs, vec![("a", "2"), ("z", "1")]);
    }

    #[test]
    fn builder_nesting_matches_manual_construction() {
        let built = TreeBuilder::new("site")
            .open("people")
            .open("person")
            .leaf_text("name", "Alice")
            .close()
            .close()
            .open("regions")
            .leaf("europe")
            .leaf("asia")
            .close()
            .build();
        assert!(built.unordered_eq(&sample()));
    }

    #[test]
    fn leaf_count_counts_leaves() {
        assert_eq!(sample().leaf_count(), 3);
    }

    #[test]
    #[should_panic]
    fn builder_cannot_close_root() {
        let _ = TreeBuilder::new("r").close();
    }
}
