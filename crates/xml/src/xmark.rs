//! An XMark-like document generator.
//!
//! XMark [Schmidt et al., VLDB 2002] is the XML benchmark the paper uses for its twig-learning
//! experiments (via XPathMark, the XPath query suite defined on XMark data). The original
//! generator (`xmlgen`) is an external C program; this module re-implements its *document shape*
//! — an internet-auction site with regions, items, categories, people, open and closed auctions —
//! scaled by a factor, so that the learning experiments exercise the same label structure and
//! multiplicities the paper's experiments saw. Text content is synthetic but deterministic for a
//! given seed.

use crate::dtd::{Dtd, Particle};
use crate::tree::{NodeId, XmlTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Continent regions used by XMark.
pub const REGIONS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

const FIRST_NAMES: [&str; 16] = [
    "Alice", "Bob", "Carla", "Dmitri", "Elena", "Farid", "Grace", "Hugo", "Ines", "Jun", "Kira",
    "Luis", "Mara", "Nils", "Olga", "Pavel",
];

const LAST_NAMES: [&str; 16] = [
    "Anderson", "Brown", "Chen", "Dubois", "Eriksen", "Fischer", "Garcia", "Haas", "Ito", "Jansen",
    "Kovacs", "Larsen", "Moreau", "Novak", "Okafor", "Petrov",
];

const CITIES: [&str; 12] = [
    "Lille", "Paris", "New York", "Tokyo", "Nairobi", "Sydney", "Lima", "Berlin", "Warsaw",
    "Madrid", "Toronto", "Seoul",
];

const COUNTRIES: [&str; 12] = [
    "France",
    "United States",
    "Japan",
    "Kenya",
    "Australia",
    "Peru",
    "Germany",
    "Poland",
    "Spain",
    "Canada",
    "South Korea",
    "Brazil",
];

const WORDS: [&str; 24] = [
    "vintage", "rare", "gold", "silver", "antique", "modern", "classic", "signed", "limited",
    "edition", "mint", "boxed", "original", "restored", "handmade", "imported", "painted",
    "carved", "woven", "ceramic", "bronze", "ivory", "silk", "oak",
];

const CATEGORY_THEMES: [&str; 10] = [
    "coins",
    "stamps",
    "books",
    "paintings",
    "furniture",
    "jewelry",
    "maps",
    "instruments",
    "pottery",
    "textiles",
];

/// Configuration for the XMark-like generator.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Scale factor. XMark's factor 1.0 produces a ~100 MB document; ours is calibrated so that
    /// factor 1.0 yields on the order of tens of thousands of nodes (laptop-scale), with the
    /// same relative proportions between entity kinds as the original generator.
    pub scale: f64,
    /// RNG seed; the generator is fully deterministic given `scale` and `seed`.
    pub seed: u64,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig {
            scale: 0.1,
            seed: 42,
        }
    }
}

impl XmarkConfig {
    /// Convenience constructor.
    pub fn new(scale: f64, seed: u64) -> XmarkConfig {
        XmarkConfig { scale, seed }
    }

    fn count(&self, base: usize) -> usize {
        ((base as f64) * self.scale).round().max(1.0) as usize
    }

    /// Number of items per region.
    pub fn items_per_region(&self) -> usize {
        self.count(200)
    }

    /// Number of registered people.
    pub fn people(&self) -> usize {
        self.count(250)
    }

    /// Number of open auctions.
    pub fn open_auctions(&self) -> usize {
        self.count(120)
    }

    /// Number of closed auctions.
    pub fn closed_auctions(&self) -> usize {
        self.count(100)
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.count(100)
    }
}

/// Generate an XMark-like auction document.
///
/// ```
/// use qbe_xml::xmark::{generate, XmarkConfig};
/// let doc = generate(&XmarkConfig::new(0.02, 1));
/// assert_eq!(doc.label(qbe_xml::XmlTree::ROOT), "site");
/// assert!(!doc.nodes_with_label("open_auction").is_empty());
/// ```
pub fn generate(config: &XmarkConfig) -> XmlTree {
    Generator::new(config).generate()
}

/// The XMark corpus names [`corpus_by_name`] understands, smallest first.
pub const CORPUS_NAMES: &[&str] = &["xmark-tiny", "xmark-small", "xmark-default"];

/// A named, deterministic XMark corpus — the handle a *service* hands out so that every client
/// (and every test) referring to `"xmark-tiny"` sees byte-identical documents without shipping
/// them over the wire. `None` for unknown names; see [`CORPUS_NAMES`].
///
/// ```
/// use qbe_xml::xmark::corpus_by_name;
/// let a = corpus_by_name("xmark-tiny").unwrap();
/// let b = corpus_by_name("xmark-tiny").unwrap();
/// assert_eq!(a, b);
/// assert!(corpus_by_name("xmark-galactic").is_none());
/// ```
pub fn corpus_by_name(name: &str) -> Option<Vec<XmlTree>> {
    let config = match name {
        "xmark-tiny" => XmarkConfig::new(0.008, 7),
        "xmark-small" => XmarkConfig::new(0.05, 7),
        "xmark-default" => XmarkConfig::default(),
        _ => return None,
    };
    Some(vec![generate(&config)])
}

struct Generator<'a> {
    config: &'a XmarkConfig,
    rng: StdRng,
}

impl<'a> Generator<'a> {
    fn new(config: &'a XmarkConfig) -> Generator<'a> {
        Generator {
            config,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    fn pick<'s>(&mut self, pool: &[&'s str]) -> &'s str {
        pool[self.rng.gen_range(0..pool.len())]
    }

    fn phrase(&mut self, words: usize) -> String {
        (0..words)
            .map(|_| self.pick(&WORDS))
            .collect::<Vec<_>>()
            .join(" ")
    }

    fn person_name(&mut self) -> String {
        format!("{} {}", self.pick(&FIRST_NAMES), self.pick(&LAST_NAMES))
    }

    fn generate(mut self) -> XmlTree {
        let mut doc = XmlTree::new("site");
        let n_items = self.config.items_per_region();
        let n_people = self.config.people();
        let n_open = self.config.open_auctions();
        let n_closed = self.config.closed_auctions();
        let n_categories = self.config.categories();
        let total_items = n_items * REGIONS.len();

        self.regions(&mut doc, n_items, n_categories);
        self.categories(&mut doc, n_categories);
        self.catgraph(&mut doc, n_categories);
        self.people(&mut doc, n_people, n_open, n_categories);
        self.open_auctions(&mut doc, n_open, total_items, n_people, n_categories);
        self.closed_auctions(&mut doc, n_closed, total_items, n_people);
        doc
    }

    fn regions(&mut self, doc: &mut XmlTree, items_per_region: usize, n_categories: usize) {
        let regions = doc.add_child(XmlTree::ROOT, "regions");
        let mut item_counter = 0usize;
        for region in REGIONS {
            let region_node = doc.add_child(regions, region);
            for _ in 0..items_per_region {
                self.item(doc, region_node, item_counter, n_categories);
                item_counter += 1;
            }
        }
    }

    fn item(&mut self, doc: &mut XmlTree, parent: NodeId, id: usize, n_categories: usize) {
        let item = doc.add_child(parent, "item");
        doc.set_attribute(item, "id", format!("item{id}"));
        let location = doc.add_child(item, "location");
        doc.set_text(location, self.pick(&COUNTRIES).to_string());
        let quantity = doc.add_child(item, "quantity");
        doc.set_text(quantity, self.rng.gen_range(1..5).to_string());
        let name = doc.add_child(item, "name");
        doc.set_text(name, self.phrase(2));
        let payment = doc.add_child(item, "payment");
        doc.set_text(payment, "Creditcard");
        let description = doc.add_child(item, "description");
        let text = doc.add_child(description, "text");
        doc.set_text(text, self.phrase(6));
        let shipping = doc.add_child(item, "shipping");
        doc.set_text(shipping, "Will ship internationally");
        // incategory+ : one to three category references.
        let n_cats = self.rng.gen_range(1..=3);
        for _ in 0..n_cats {
            let incat = doc.add_child(item, "incategory");
            doc.set_attribute(
                incat,
                "category",
                format!("category{}", self.rng.gen_range(0..n_categories)),
            );
        }
        // mailbox with zero or more mails.
        let mailbox = doc.add_child(item, "mailbox");
        for _ in 0..self.rng.gen_range(0..3) {
            let mail = doc.add_child(mailbox, "mail");
            let from = doc.add_child(mail, "from");
            doc.set_text(from, self.person_name());
            let to = doc.add_child(mail, "to");
            doc.set_text(to, self.person_name());
            let date = doc.add_child(mail, "date");
            doc.set_text(date, self.date());
            let text = doc.add_child(mail, "text");
            doc.set_text(text, self.phrase(5));
        }
    }

    fn date(&mut self) -> String {
        format!(
            "{:02}/{:02}/{}",
            self.rng.gen_range(1..=12),
            self.rng.gen_range(1..=28),
            self.rng.gen_range(1998..=2002)
        )
    }

    fn categories(&mut self, doc: &mut XmlTree, n: usize) {
        let categories = doc.add_child(XmlTree::ROOT, "categories");
        for i in 0..n {
            let category = doc.add_child(categories, "category");
            doc.set_attribute(category, "id", format!("category{i}"));
            let name = doc.add_child(category, "name");
            doc.set_text(
                name,
                format!("{} {}", self.pick(&WORDS), self.pick(&CATEGORY_THEMES)),
            );
            let description = doc.add_child(category, "description");
            let text = doc.add_child(description, "text");
            doc.set_text(text, self.phrase(4));
        }
    }

    fn catgraph(&mut self, doc: &mut XmlTree, n_categories: usize) {
        let catgraph = doc.add_child(XmlTree::ROOT, "catgraph");
        let n_edges = n_categories.saturating_sub(1);
        for _ in 0..n_edges {
            let edge = doc.add_child(catgraph, "edge");
            doc.set_attribute(
                edge,
                "from",
                format!("category{}", self.rng.gen_range(0..n_categories)),
            );
            doc.set_attribute(
                edge,
                "to",
                format!("category{}", self.rng.gen_range(0..n_categories)),
            );
        }
    }

    fn people(&mut self, doc: &mut XmlTree, n: usize, n_open: usize, n_categories: usize) {
        let people = doc.add_child(XmlTree::ROOT, "people");
        for i in 0..n {
            let person = doc.add_child(people, "person");
            doc.set_attribute(person, "id", format!("person{i}"));
            let name = doc.add_child(person, "name");
            doc.set_text(name, self.person_name());
            let email = doc.add_child(person, "emailaddress");
            doc.set_text(email, format!("mailto:user{i}@example.org"));
            if self.rng.gen_bool(0.4) {
                let phone = doc.add_child(person, "phone");
                doc.set_text(
                    phone,
                    format!(
                        "+{} {}",
                        self.rng.gen_range(1..99),
                        self.rng.gen_range(1000000..9999999)
                    ),
                );
            }
            if self.rng.gen_bool(0.6) {
                let address = doc.add_child(person, "address");
                let street = doc.add_child(address, "street");
                doc.set_text(
                    street,
                    format!("{} {} St", self.rng.gen_range(1..99), self.pick(&WORDS)),
                );
                let city = doc.add_child(address, "city");
                doc.set_text(city, self.pick(&CITIES).to_string());
                let country = doc.add_child(address, "country");
                doc.set_text(country, self.pick(&COUNTRIES).to_string());
                let zipcode = doc.add_child(address, "zipcode");
                doc.set_text(zipcode, self.rng.gen_range(10000..99999).to_string());
            }
            if self.rng.gen_bool(0.3) {
                let homepage = doc.add_child(person, "homepage");
                doc.set_text(homepage, format!("http://www.example.org/~user{i}"));
            }
            if self.rng.gen_bool(0.5) {
                let creditcard = doc.add_child(person, "creditcard");
                doc.set_text(
                    creditcard,
                    format!(
                        "{} {} {} {}",
                        self.rng.gen_range(1000..9999),
                        self.rng.gen_range(1000..9999),
                        self.rng.gen_range(1000..9999),
                        self.rng.gen_range(1000..9999)
                    ),
                );
            }
            if self.rng.gen_bool(0.6) {
                let profile = doc.add_child(person, "profile");
                doc.set_attribute(
                    profile,
                    "income",
                    format!("{:.2}", self.rng.gen_range(20000.0..120000.0)),
                );
                for _ in 0..self.rng.gen_range(0..3) {
                    let interest = doc.add_child(profile, "interest");
                    doc.set_attribute(
                        interest,
                        "category",
                        format!("category{}", self.rng.gen_range(0..n_categories)),
                    );
                }
                if self.rng.gen_bool(0.5) {
                    let education = doc.add_child(profile, "education");
                    doc.set_text(
                        education,
                        ["High School", "College", "Graduate School"][self.rng.gen_range(0..3)]
                            .to_string(),
                    );
                }
                if self.rng.gen_bool(0.5) {
                    let gender = doc.add_child(profile, "gender");
                    doc.set_text(
                        gender,
                        if self.rng.gen_bool(0.5) {
                            "male"
                        } else {
                            "female"
                        }
                        .to_string(),
                    );
                }
                let business = doc.add_child(profile, "business");
                doc.set_text(
                    business,
                    if self.rng.gen_bool(0.5) { "Yes" } else { "No" }.to_string(),
                );
                if self.rng.gen_bool(0.6) {
                    let age = doc.add_child(profile, "age");
                    doc.set_text(age, self.rng.gen_range(18..80).to_string());
                }
            }
            if self.rng.gen_bool(0.4) && n_open > 0 {
                let watches = doc.add_child(person, "watches");
                for _ in 0..self.rng.gen_range(1..=3) {
                    let watch = doc.add_child(watches, "watch");
                    doc.set_attribute(
                        watch,
                        "open_auction",
                        format!("open_auction{}", self.rng.gen_range(0..n_open)),
                    );
                }
            }
        }
    }

    fn open_auctions(
        &mut self,
        doc: &mut XmlTree,
        n: usize,
        n_items: usize,
        n_people: usize,
        n_categories: usize,
    ) {
        let open_auctions = doc.add_child(XmlTree::ROOT, "open_auctions");
        for i in 0..n {
            let auction = doc.add_child(open_auctions, "open_auction");
            doc.set_attribute(auction, "id", format!("open_auction{i}"));
            let initial = doc.add_child(auction, "initial");
            let initial_price = self.rng.gen_range(1.0..200.0);
            doc.set_text(initial, format!("{initial_price:.2}"));
            if self.rng.gen_bool(0.5) {
                let reserve = doc.add_child(auction, "reserve");
                doc.set_text(reserve, format!("{:.2}", initial_price * 1.5));
            }
            let n_bidders = self.rng.gen_range(0..6);
            let mut current_price = initial_price;
            for _ in 0..n_bidders {
                let bidder = doc.add_child(auction, "bidder");
                let date = doc.add_child(bidder, "date");
                doc.set_text(date, self.date());
                let time = doc.add_child(bidder, "time");
                doc.set_text(
                    time,
                    format!(
                        "{:02}:{:02}:{:02}",
                        self.rng.gen_range(0..24),
                        self.rng.gen_range(0..60),
                        self.rng.gen_range(0..60)
                    ),
                );
                let personref = doc.add_child(bidder, "personref");
                doc.set_attribute(
                    personref,
                    "person",
                    format!("person{}", self.rng.gen_range(0..n_people)),
                );
                let increase = doc.add_child(bidder, "increase");
                let inc = self.rng.gen_range(1.5..30.0);
                current_price += inc;
                doc.set_text(increase, format!("{inc:.2}"));
            }
            let current = doc.add_child(auction, "current");
            doc.set_text(current, format!("{current_price:.2}"));
            if self.rng.gen_bool(0.3) {
                let privacy = doc.add_child(auction, "privacy");
                doc.set_text(privacy, "Yes");
            }
            let itemref = doc.add_child(auction, "itemref");
            doc.set_attribute(
                itemref,
                "item",
                format!("item{}", self.rng.gen_range(0..n_items)),
            );
            let seller = doc.add_child(auction, "seller");
            doc.set_attribute(
                seller,
                "person",
                format!("person{}", self.rng.gen_range(0..n_people)),
            );
            let annotation = doc.add_child(auction, "annotation");
            let author = doc.add_child(annotation, "author");
            doc.set_attribute(
                author,
                "person",
                format!("person{}", self.rng.gen_range(0..n_people)),
            );
            let description = doc.add_child(annotation, "description");
            let text = doc.add_child(description, "text");
            doc.set_text(text, self.phrase(5));
            let quantity = doc.add_child(auction, "quantity");
            doc.set_text(quantity, self.rng.gen_range(1..5).to_string());
            let auction_type = doc.add_child(auction, "type");
            doc.set_text(
                auction_type,
                if self.rng.gen_bool(0.5) {
                    "Regular"
                } else {
                    "Featured"
                }
                .to_string(),
            );
            let interval = doc.add_child(auction, "interval");
            let start = doc.add_child(interval, "start");
            doc.set_text(start, self.date());
            let end = doc.add_child(interval, "end");
            doc.set_text(end, self.date());
            // A small fraction of auctions reference a category directly, mirroring the
            // `itemref`/`incategory` cross-references XPathMark queries navigate.
            if self.rng.gen_bool(0.2) && n_categories > 0 {
                let incat = doc.add_child(auction, "incategory");
                doc.set_attribute(
                    incat,
                    "category",
                    format!("category{}", self.rng.gen_range(0..n_categories)),
                );
            }
        }
    }

    fn closed_auctions(&mut self, doc: &mut XmlTree, n: usize, n_items: usize, n_people: usize) {
        let closed_auctions = doc.add_child(XmlTree::ROOT, "closed_auctions");
        for _ in 0..n {
            let auction = doc.add_child(closed_auctions, "closed_auction");
            let seller = doc.add_child(auction, "seller");
            doc.set_attribute(
                seller,
                "person",
                format!("person{}", self.rng.gen_range(0..n_people)),
            );
            let buyer = doc.add_child(auction, "buyer");
            doc.set_attribute(
                buyer,
                "person",
                format!("person{}", self.rng.gen_range(0..n_people)),
            );
            let itemref = doc.add_child(auction, "itemref");
            doc.set_attribute(
                itemref,
                "item",
                format!("item{}", self.rng.gen_range(0..n_items)),
            );
            let price = doc.add_child(auction, "price");
            doc.set_text(price, format!("{:.2}", self.rng.gen_range(5.0..500.0)));
            let date = doc.add_child(auction, "date");
            doc.set_text(date, self.date());
            let quantity = doc.add_child(auction, "quantity");
            doc.set_text(quantity, self.rng.gen_range(1..5).to_string());
            let auction_type = doc.add_child(auction, "type");
            doc.set_text(
                auction_type,
                if self.rng.gen_bool(0.5) {
                    "Regular"
                } else {
                    "Featured"
                }
                .to_string(),
            );
            let annotation = doc.add_child(auction, "annotation");
            let author = doc.add_child(annotation, "author");
            doc.set_attribute(
                author,
                "person",
                format!("person{}", self.rng.gen_range(0..n_people)),
            );
            let description = doc.add_child(annotation, "description");
            let text = doc.add_child(description, "text");
            doc.set_text(text, self.phrase(5));
        }
    }
}

/// The DTD-lite for the generated documents (a faithful subset of the real XMark DTD restricted
/// to the elements the generator emits). Used by `qbe-schema` to demonstrate that disjunctive
/// multiplicity schemas can capture the XMark structure, and by the overspecialisation
/// experiment.
pub fn xmark_dtd() -> Dtd {
    use Particle as P;
    Dtd::new("site")
        .rule(
            "site",
            P::Seq(vec![
                P::elem("regions"),
                P::elem("categories"),
                P::elem("catgraph"),
                P::elem("people"),
                P::elem("open_auctions"),
                P::elem("closed_auctions"),
            ]),
        )
        .rule(
            "regions",
            P::Seq(REGIONS.iter().map(|r| P::elem(r)).collect()),
        )
        .rule("africa", P::star(P::elem("item")))
        .rule("asia", P::star(P::elem("item")))
        .rule("australia", P::star(P::elem("item")))
        .rule("europe", P::star(P::elem("item")))
        .rule("namerica", P::star(P::elem("item")))
        .rule("samerica", P::star(P::elem("item")))
        .rule(
            "item",
            P::Seq(vec![
                P::elem("location"),
                P::elem("quantity"),
                P::elem("name"),
                P::elem("payment"),
                P::elem("description"),
                P::elem("shipping"),
                P::plus(P::elem("incategory")),
                P::elem("mailbox"),
            ]),
        )
        .rule("mailbox", P::star(P::elem("mail")))
        .rule(
            "mail",
            P::Seq(vec![
                P::elem("from"),
                P::elem("to"),
                P::elem("date"),
                P::elem("text"),
            ]),
        )
        .rule("categories", P::star(P::elem("category")))
        .rule(
            "category",
            P::Seq(vec![P::elem("name"), P::elem("description")]),
        )
        .rule("description", P::elem("text"))
        .rule("catgraph", P::star(P::elem("edge")))
        .rule("edge", P::Empty)
        .rule("people", P::star(P::elem("person")))
        .rule(
            "person",
            P::Seq(vec![
                P::elem("name"),
                P::elem("emailaddress"),
                P::opt(P::elem("phone")),
                P::opt(P::elem("address")),
                P::opt(P::elem("homepage")),
                P::opt(P::elem("creditcard")),
                P::opt(P::elem("profile")),
                P::opt(P::elem("watches")),
            ]),
        )
        .rule(
            "address",
            P::Seq(vec![
                P::elem("street"),
                P::elem("city"),
                P::elem("country"),
                P::elem("zipcode"),
            ]),
        )
        .rule(
            "profile",
            P::Seq(vec![
                P::star(P::elem("interest")),
                P::opt(P::elem("education")),
                P::opt(P::elem("gender")),
                P::elem("business"),
                P::opt(P::elem("age")),
            ]),
        )
        .rule("watches", P::star(P::elem("watch")))
        .rule("watch", P::Empty)
        .rule("open_auctions", P::star(P::elem("open_auction")))
        .rule(
            "open_auction",
            P::Seq(vec![
                P::elem("initial"),
                P::opt(P::elem("reserve")),
                P::star(P::elem("bidder")),
                P::elem("current"),
                P::opt(P::elem("privacy")),
                P::elem("itemref"),
                P::elem("seller"),
                P::elem("annotation"),
                P::elem("quantity"),
                P::elem("type"),
                P::elem("interval"),
                P::opt(P::elem("incategory")),
            ]),
        )
        .rule(
            "bidder",
            P::Seq(vec![
                P::elem("date"),
                P::elem("time"),
                P::elem("personref"),
                P::elem("increase"),
            ]),
        )
        .rule("interval", P::Seq(vec![P::elem("start"), P::elem("end")]))
        .rule(
            "annotation",
            P::Seq(vec![P::elem("author"), P::elem("description")]),
        )
        .rule("closed_auctions", P::star(P::elem("closed_auction")))
        .rule(
            "closed_auction",
            P::Seq(vec![
                P::elem("seller"),
                P::elem("buyer"),
                P::elem("itemref"),
                P::elem("price"),
                P::elem("date"),
                P::elem("quantity"),
                P::elem("type"),
                P::elem("annotation"),
            ]),
        )
        .rule("itemref", P::Empty)
        .rule("personref", P::Empty)
        .rule("seller", P::Empty)
        .rule("buyer", P::Empty)
        .rule("author", P::Empty)
        .rule("incategory", P::Empty)
        .rule("location", P::Text)
        .rule("quantity", P::Text)
        .rule("name", P::Text)
        .rule("payment", P::Text)
        .rule("shipping", P::Text)
        .rule("text", P::Text)
        .rule("from", P::Text)
        .rule("to", P::Text)
        .rule("date", P::Text)
        .rule("time", P::Text)
        .rule("emailaddress", P::Text)
        .rule("phone", P::Text)
        .rule("street", P::Text)
        .rule("city", P::Text)
        .rule("country", P::Text)
        .rule("zipcode", P::Text)
        .rule("homepage", P::Text)
        .rule("creditcard", P::Text)
        .rule("interest", P::Empty)
        .rule("education", P::Text)
        .rule("gender", P::Text)
        .rule("business", P::Text)
        .rule("age", P::Text)
        .rule("initial", P::Text)
        .rule("reserve", P::Text)
        .rule("current", P::Text)
        .rule("privacy", P::Text)
        .rule("increase", P::Text)
        .rule("type", P::Text)
        .rule("price", P::Text)
        .rule("start", P::Text)
        .rule("end", P::Text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_doc() -> XmlTree {
        generate(&XmarkConfig::new(0.02, 7))
    }

    #[test]
    fn root_is_site_with_six_sections() {
        let doc = small_doc();
        assert_eq!(doc.label(XmlTree::ROOT), "site");
        let sections: Vec<&str> = doc
            .children(XmlTree::ROOT)
            .iter()
            .map(|c| doc.label(*c))
            .collect();
        assert_eq!(
            sections,
            vec![
                "regions",
                "categories",
                "catgraph",
                "people",
                "open_auctions",
                "closed_auctions"
            ]
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&XmarkConfig::new(0.02, 3));
        let b = generate(&XmarkConfig::new(0.02, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn scale_controls_document_size() {
        let small = generate(&XmarkConfig::new(0.01, 1));
        let larger = generate(&XmarkConfig::new(0.05, 1));
        assert!(larger.size() > small.size());
    }

    #[test]
    fn all_six_regions_present() {
        let doc = small_doc();
        for region in REGIONS {
            assert_eq!(
                doc.nodes_with_label(region).len(),
                1,
                "missing region {region}"
            );
        }
    }

    #[test]
    fn every_item_has_required_children() {
        let doc = small_doc();
        for item in doc.nodes_with_label("item") {
            let labels: Vec<&str> = doc.children(item).iter().map(|c| doc.label(*c)).collect();
            for required in [
                "location",
                "quantity",
                "name",
                "payment",
                "description",
                "shipping",
                "incategory",
                "mailbox",
            ] {
                assert!(labels.contains(&required), "item missing {required}");
            }
        }
    }

    #[test]
    fn people_have_ids_and_names() {
        let doc = small_doc();
        let people = doc.nodes_with_label("person");
        assert!(!people.is_empty());
        for p in people {
            assert!(doc.attribute(p, "id").unwrap().starts_with("person"));
            assert!(doc.children(p).iter().any(|c| doc.label(*c) == "name"));
        }
    }

    #[test]
    fn generated_document_is_valid_against_xmark_dtd() {
        let doc = small_doc();
        let dtd = xmark_dtd();
        let violations = dtd.validate(&doc);
        assert!(
            violations.is_empty(),
            "violations: {:?}",
            &violations[..violations.len().min(3)]
        );
    }

    #[test]
    fn open_auction_references_resolve_to_existing_people() {
        let doc = small_doc();
        let n_people = doc.nodes_with_label("person").len();
        for seller in doc.nodes_with_label("seller") {
            let reference = doc.attribute(seller, "person").unwrap();
            let ix: usize = reference.trim_start_matches("person").parse().unwrap();
            assert!(ix < n_people);
        }
    }

    #[test]
    fn dtd_covers_every_generated_label() {
        let doc = small_doc();
        let dtd = xmark_dtd();
        for label in doc.alphabet() {
            assert!(
                dtd.content_model(&label).is_some(),
                "label {label} generated but not declared in the DTD"
            );
        }
    }
}
