//! # qbe-xml — XML substrate for the `qbe` query-learning workspace
//!
//! This crate provides the semi-structured data model used by the twig-query learning and
//! schema-analysis crates:
//!
//! * [`XmlTree`] / [`NodeId`] — an arena-based labelled tree with attributes and text
//!   ([`tree`]), plus a fluent [`tree::TreeBuilder`];
//! * [`parse_xml`] / [`to_xml_string`] — a small XML parser and serialiser ([`parse`],
//!   [`serialize`]);
//! * [`dtd`] — DTD-lite content models (regular expressions over child labels), the classical
//!   schema formalism the paper's disjunctive multiplicity schemas are compared against;
//! * [`NodeIndex`] — a read-only structural index (label postings, preorder intervals, depth
//!   and parent arrays) built once per tree and shared by the indexed query evaluators
//!   ([`index`]);
//! * [`xmark`] — an XMark-like auction-site document generator and its DTD, the substrate of the
//!   paper's twig-learning experiments;
//! * [`random`] — seeded random tree generation for property tests and benchmarks;
//! * [`corpus`] — a synthetic stand-in for the real-world XML web collection used in the paper's
//!   schema-expressiveness discussion.
//!
//! The crate has no XML-ecosystem dependencies by design: the learning algorithms need the query
//! AST, the document model and the schema formalisms to share one representation.

#![warn(missing_docs)]

pub mod corpus;
pub mod dtd;
pub mod index;
pub mod parse;
pub mod random;
pub mod serialize;
pub mod tree;
pub mod xmark;

pub use index::NodeIndex;
pub use parse::{parse_xml, ParseError};
pub use serialize::{to_pretty_xml_string, to_xml_string};
pub use tree::{NodeId, TreeBuilder, XmlTree};

#[cfg(test)]
mod proptests {
    use crate::random::{RandomTreeConfig, RandomTreeGenerator};
    use crate::{parse_xml, to_xml_string, XmlTree};
    use proptest::prelude::*;

    fn arbitrary_tree(seed: u64) -> XmlTree {
        let cfg = RandomTreeConfig {
            max_depth: 4,
            max_children: 3,
            ..Default::default()
        };
        RandomTreeGenerator::new(cfg, seed).generate()
    }

    proptest! {
        /// Serialise → parse round-trips preserve unordered structure for arbitrary trees.
        #[test]
        fn serialize_parse_roundtrip(seed in 0u64..500) {
            let tree = arbitrary_tree(seed);
            let text = to_xml_string(&tree);
            let reparsed = parse_xml(&text).unwrap();
            prop_assert!(tree.unordered_eq(&reparsed));
            prop_assert_eq!(tree.size(), reparsed.size());
        }

        /// Every node except the root has a parent, and child links are consistent.
        #[test]
        fn parent_child_links_are_consistent(seed in 0u64..500) {
            let tree = arbitrary_tree(seed);
            for node in tree.node_ids() {
                match tree.parent(node) {
                    None => prop_assert_eq!(node, XmlTree::ROOT),
                    Some(parent) => prop_assert!(tree.children(parent).contains(&node)),
                }
            }
        }

        /// Depth of a child is exactly one more than the depth of its parent.
        #[test]
        fn depth_increases_by_one(seed in 0u64..200) {
            let tree = arbitrary_tree(seed);
            for node in tree.node_ids() {
                for &child in tree.children(node) {
                    prop_assert_eq!(tree.depth(child), tree.depth(node) + 1);
                }
            }
        }

        /// Subtree extraction preserves the canonical structure of the extracted node.
        #[test]
        fn subtree_preserves_structure(seed in 0u64..200) {
            let tree = arbitrary_tree(seed);
            for node in tree.node_ids().take(10) {
                let sub = tree.subtree(node);
                prop_assert_eq!(
                    sub.canonical_structure(XmlTree::ROOT),
                    tree.canonical_structure(node)
                );
            }
        }

        /// The number of descendants plus one equals the subtree size.
        #[test]
        fn descendant_count_matches_subtree_size(seed in 0u64..200) {
            let tree = arbitrary_tree(seed);
            for node in tree.node_ids().take(10) {
                prop_assert_eq!(tree.descendants(node).len() + 1, tree.subtree(node).size());
            }
        }
    }
}
