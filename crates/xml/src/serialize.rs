//! Serialisation of [`XmlTree`] values back to XML text, both compact and pretty-printed.

use crate::parse::escape;
use crate::tree::{NodeId, XmlTree};

/// Serialise a tree to a compact, single-line XML string.
///
/// ```
/// let doc = qbe_xml::parse_xml("<a><b x='1'>hi</b></a>").unwrap();
/// assert_eq!(qbe_xml::to_xml_string(&doc), "<a><b x=\"1\">hi</b></a>");
/// ```
pub fn to_xml_string(tree: &XmlTree) -> String {
    let mut out = String::new();
    write_node(tree, XmlTree::ROOT, &mut out, None, 0);
    out
}

/// Serialise a tree with two-space indentation, one element per line.
pub fn to_pretty_xml_string(tree: &XmlTree) -> String {
    let mut out = String::new();
    write_node(tree, XmlTree::ROOT, &mut out, Some(2), 0);
    out
}

fn write_node(tree: &XmlTree, id: NodeId, out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        if depth > 0 {
            out.push('\n');
        }
        out.push_str(&" ".repeat(step * depth));
    }
    out.push('<');
    out.push_str(tree.label(id));
    for (name, value) in tree.attributes(id) {
        out.push(' ');
        out.push_str(name);
        out.push_str("=\"");
        out.push_str(&escape(value));
        out.push('"');
    }
    let text = tree.text(id).filter(|t| !t.is_empty());
    let children = tree.children(id);
    if text.is_none() && children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    if let Some(t) = text {
        out.push_str(&escape(t));
    }
    for &child in children {
        write_node(tree, child, out, indent, depth + 1);
    }
    if indent.is_some() && !children.is_empty() {
        out.push('\n');
        out.push_str(&" ".repeat(indent.unwrap_or(0) * depth));
    }
    out.push_str("</");
    out.push_str(tree.label(id));
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_xml;
    use crate::tree::TreeBuilder;

    #[test]
    fn empty_element_uses_self_closing_form() {
        let t = XmlTree::new("empty");
        assert_eq!(to_xml_string(&t), "<empty/>");
    }

    #[test]
    fn attributes_are_escaped() {
        let mut t = XmlTree::new("e");
        t.set_attribute(XmlTree::ROOT, "q", "a\"b<c");
        assert_eq!(to_xml_string(&t), "<e q=\"a&quot;b&lt;c\"/>");
    }

    #[test]
    fn text_is_escaped() {
        let mut t = XmlTree::new("e");
        t.set_text(XmlTree::ROOT, "1 < 2 & 3");
        assert_eq!(to_xml_string(&t), "<e>1 &lt; 2 &amp; 3</e>");
    }

    #[test]
    fn nested_elements_serialise_in_document_order() {
        let t = TreeBuilder::new("r")
            .leaf("a")
            .open("b")
            .leaf("c")
            .close()
            .build();
        assert_eq!(to_xml_string(&t), "<r><a/><b><c/></b></r>");
    }

    #[test]
    fn pretty_printing_indents_children() {
        let t = TreeBuilder::new("r").open("a").leaf("b").close().build();
        let pretty = to_pretty_xml_string(&t);
        assert!(pretty.contains("\n  <a>"));
        assert!(pretty.contains("\n    <b/>"));
    }

    #[test]
    fn pretty_output_reparses_to_same_structure() {
        let t = TreeBuilder::new("site")
            .open("people")
            .open("person")
            .attr("id", "p0")
            .leaf_text("name", "Alice")
            .close()
            .close()
            .build();
        let doc = parse_xml(&to_pretty_xml_string(&t)).unwrap();
        assert!(doc.unordered_eq(&t));
    }
}
