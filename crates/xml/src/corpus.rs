//! Synthetic heterogeneous document corpus.
//!
//! The paper argues that disjunctive multiplicity schemas "capture many of the DTDs from the
//! real-world XML web collection" [Grijzenhout & Marx, CIKM 2011]. That collection is not
//! redistributable, so this module generates a corpus with the same relevant characteristics:
//! many small documents drawn from a diverse set of randomly generated DTD-lite schemas, where a
//! configurable fraction of the schemas use only multiplicity-style content models (expressible
//! as DMS) and the rest use ordered sequences or general regular expressions (not expressible).

use crate::dtd::{Dtd, Particle};
use crate::tree::{NodeId, XmlTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Categories of content models a generated schema may use, from most to least DMS-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaStyle {
    /// Every rule is an unordered bag of labels with multiplicities (`a? b* c+ d`), i.e.
    /// directly expressible as a disjunction-free multiplicity schema.
    MultiplicityOnly,
    /// Multiplicity rules plus label disjunctions (`(a | b)+ c?`), expressible as a DMS.
    Disjunctive,
    /// Ordered sequences with nested groups — general DTDs not expressible as DMS.
    OrderedSequences,
}

/// One document collection entry: the schema it conforms to and the documents themselves.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Identifier of the collection (stable across runs for a given seed).
    pub name: String,
    /// The style of content models used by the schema.
    pub style: SchemaStyle,
    /// The DTD-lite the documents conform to.
    pub dtd: Dtd,
    /// Generated documents conforming to the DTD.
    pub documents: Vec<XmlTree>,
}

/// Configuration for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of distinct schemas (collections).
    pub collections: usize,
    /// Documents generated per collection.
    pub documents_per_collection: usize,
    /// Fraction (0..=1) of collections using `MultiplicityOnly` content models.
    pub multiplicity_fraction: f64,
    /// Fraction (0..=1) of collections using `Disjunctive` content models.
    pub disjunctive_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        // Proportions follow the paper's framing: most real-world DTDs are simple enough for
        // DMS (the CIKM'11 study reports the large majority of content models are of the
        // multiplicity kind), a minority genuinely needs ordered content.
        CorpusConfig {
            collections: 20,
            documents_per_collection: 5,
            multiplicity_fraction: 0.6,
            disjunctive_fraction: 0.25,
            seed: 42,
        }
    }
}

/// Generate a heterogeneous corpus.
pub fn generate_corpus(config: &CorpusConfig) -> Vec<CorpusEntry> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.collections);
    for i in 0..config.collections {
        let frac = (i as f64 + 0.5) / config.collections as f64;
        let style = if frac < config.multiplicity_fraction {
            SchemaStyle::MultiplicityOnly
        } else if frac < config.multiplicity_fraction + config.disjunctive_fraction {
            SchemaStyle::Disjunctive
        } else {
            SchemaStyle::OrderedSequences
        };
        let dtd = random_dtd(&mut rng, style, i);
        let documents = (0..config.documents_per_collection)
            .map(|_| generate_conforming_document(&mut rng, &dtd))
            .collect();
        out.push(CorpusEntry {
            name: format!("collection{i}"),
            style,
            dtd,
            documents,
        });
    }
    out
}

fn labels_for(collection: usize, n: usize) -> Vec<String> {
    (0..n).map(|i| format!("c{collection}_e{i}")).collect()
}

fn random_multiplicity_rule(rng: &mut StdRng, children: &[String]) -> Particle {
    let parts: Vec<Particle> = children
        .iter()
        .map(|c| {
            let e = Particle::elem(c);
            match rng.gen_range(0..4) {
                0 => e,
                1 => Particle::opt(e),
                2 => Particle::star(e),
                _ => Particle::plus(e),
            }
        })
        .collect();
    Particle::Seq(parts)
}

fn random_disjunctive_rule(rng: &mut StdRng, children: &[String]) -> Particle {
    if children.len() < 2 {
        return random_multiplicity_rule(rng, children);
    }
    // Group the first two children into a disjunction, keep the rest as multiplicities.
    let disjunction = Particle::Choice(vec![
        Particle::elem(&children[0]),
        Particle::elem(&children[1]),
    ]);
    let wrapped = match rng.gen_range(0..3) {
        0 => Particle::star(disjunction),
        1 => Particle::plus(disjunction),
        _ => Particle::opt(disjunction),
    };
    let mut parts = vec![wrapped];
    parts.extend(children[2..].iter().map(|c| {
        let e = Particle::elem(c);
        if rng.gen_bool(0.5) {
            Particle::opt(e)
        } else {
            Particle::star(e)
        }
    }));
    Particle::Seq(parts)
}

fn random_ordered_rule(rng: &mut StdRng, children: &[String]) -> Particle {
    // A strict ordered sequence, optionally with a nested group repeated — the kind of content
    // model DMS cannot express because it constrains sibling order.
    let mut parts: Vec<Particle> = children.iter().map(|c| Particle::elem(c)).collect();
    if children.len() >= 2 && rng.gen_bool(0.5) {
        let tail = Particle::Seq(vec![
            Particle::elem(&children[children.len() - 2]),
            Particle::elem(&children[children.len() - 1]),
        ]);
        parts.push(Particle::star(tail));
    }
    Particle::Seq(parts)
}

fn random_dtd(rng: &mut StdRng, style: SchemaStyle, collection: usize) -> Dtd {
    let depth_labels = [
        labels_for(collection, 1),              // root
        labels_for(collection, 3).split_off(1), // two mid labels (e1, e2)
        labels_for(collection, 6).split_off(3), // three leaf labels (e3, e4, e5)
    ];
    let root = depth_labels[0][0].clone();
    let mut dtd = Dtd::new(&root);
    let rule_for = |rng: &mut StdRng, children: &[String]| match style {
        SchemaStyle::MultiplicityOnly => random_multiplicity_rule(rng, children),
        SchemaStyle::Disjunctive => random_disjunctive_rule(rng, children),
        SchemaStyle::OrderedSequences => random_ordered_rule(rng, children),
    };
    dtd = dtd.rule(&root, rule_for(rng, &depth_labels[1]));
    for mid in &depth_labels[1] {
        dtd = dtd.rule(mid, rule_for(rng, &depth_labels[2]));
    }
    for leaf in &depth_labels[2] {
        dtd = dtd.rule(leaf, Particle::Text);
    }
    dtd
}

/// Generate one document conforming to the DTD by sampling each content model.
pub fn generate_conforming_document(rng: &mut StdRng, dtd: &Dtd) -> XmlTree {
    let mut doc = XmlTree::new(dtd.root());
    expand(rng, dtd, &mut doc, XmlTree::ROOT, 0);
    doc
}

fn expand(rng: &mut StdRng, dtd: &Dtd, doc: &mut XmlTree, node: NodeId, depth: usize) {
    if depth > 8 {
        return; // guard against pathological recursive schemas
    }
    let label = doc.label(node).to_string();
    let Some(model) = dtd.content_model(&label) else {
        return;
    };
    let children = sample_particle(rng, model);
    for child_label in children {
        let child = doc.add_child(node, &child_label);
        expand(rng, dtd, doc, child, depth + 1);
    }
}

/// Sample a child-label sequence from a content model.
fn sample_particle(rng: &mut StdRng, particle: &Particle) -> Vec<String> {
    match particle {
        Particle::Empty | Particle::Text => vec![],
        Particle::Element(name) => vec![name.clone()],
        Particle::Seq(ps) => ps.iter().flat_map(|p| sample_particle(rng, p)).collect(),
        Particle::Choice(ps) => {
            let ix = rng.gen_range(0..ps.len());
            sample_particle(rng, &ps[ix])
        }
        Particle::Optional(p) => {
            if rng.gen_bool(0.5) {
                sample_particle(rng, p)
            } else {
                vec![]
            }
        }
        Particle::Star(p) => {
            let n = rng.gen_range(0..4);
            (0..n).flat_map(|_| sample_particle(rng, p)).collect()
        }
        Particle::Plus(p) => {
            let n = rng.gen_range(1..4);
            (0..n).flat_map(|_| sample_particle(rng, p)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_shape() {
        let cfg = CorpusConfig {
            collections: 10,
            documents_per_collection: 3,
            ..Default::default()
        };
        let corpus = generate_corpus(&cfg);
        assert_eq!(corpus.len(), 10);
        assert!(corpus.iter().all(|c| c.documents.len() == 3));
    }

    #[test]
    fn corpus_is_deterministic() {
        let cfg = CorpusConfig::default();
        let a = generate_corpus(&cfg);
        let b = generate_corpus(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.documents, y.documents);
        }
    }

    #[test]
    fn documents_conform_to_their_dtd() {
        let corpus = generate_corpus(&CorpusConfig::default());
        for entry in &corpus {
            for doc in &entry.documents {
                assert!(
                    entry.dtd.is_valid(doc),
                    "document in {} violates its schema",
                    entry.name
                );
            }
        }
    }

    #[test]
    fn style_fractions_are_respected() {
        let cfg = CorpusConfig {
            collections: 20,
            multiplicity_fraction: 0.5,
            disjunctive_fraction: 0.25,
            ..Default::default()
        };
        let corpus = generate_corpus(&cfg);
        let mult = corpus
            .iter()
            .filter(|c| c.style == SchemaStyle::MultiplicityOnly)
            .count();
        let disj = corpus
            .iter()
            .filter(|c| c.style == SchemaStyle::Disjunctive)
            .count();
        let ord = corpus
            .iter()
            .filter(|c| c.style == SchemaStyle::OrderedSequences)
            .count();
        assert_eq!(mult, 10);
        assert_eq!(disj, 5);
        assert_eq!(ord, 5);
    }

    #[test]
    fn collections_use_disjoint_alphabets() {
        let corpus = generate_corpus(&CorpusConfig::default());
        let a0 = corpus[0].documents[0].alphabet();
        let a1 = corpus[1].documents[0].alphabet();
        assert!(a0.iter().all(|l| !a1.contains(l)));
    }
}
