//! A small, dependency-free XML parser covering the fragment used throughout the workspace:
//! elements, attributes, text content, comments, CDATA, processing instructions and XML
//! declarations.
//!
//! It intentionally does **not** implement namespaces, DTD internal subsets, or entity
//! definitions other than the five predefined entities — the documents manipulated by the
//! learning algorithms (XMark-style data, synthetic corpora) never need them, and keeping the
//! parser small keeps the round-trip guarantees easy to test.

use crate::tree::{NodeId, XmlTree};
use std::fmt;

/// Error raised while parsing an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input at which the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse an XML document into an [`XmlTree`].
///
/// ```
/// let doc = qbe_xml::parse_xml("<site><people><person id='p0'><name>Alice</name></person></people></site>").unwrap();
/// assert_eq!(doc.label(qbe_xml::XmlTree::ROOT), "site");
/// assert_eq!(doc.nodes_with_label("person").len(), 1);
/// ```
pub fn parse_xml(input: &str) -> Result<XmlTree, ParseError> {
    let raw = Parser::new(input).parse_document()?;
    Ok(raw.into_tree())
}

/// Intermediate recursive representation produced by the parser before arena conversion.
struct RawElement {
    name: String,
    attributes: Vec<(String, String)>,
    text: Option<String>,
    children: Vec<RawElement>,
}

impl RawElement {
    fn into_tree(self) -> XmlTree {
        let mut tree = XmlTree::new(&self.name);
        Self::fill(&mut tree, NodeId::ROOT, self);
        tree
    }

    fn fill(tree: &mut XmlTree, id: NodeId, raw: RawElement) {
        for (k, v) in raw.attributes {
            tree.set_attribute(id, k, v);
        }
        if let Some(t) = raw.text {
            if !t.trim().is_empty() {
                tree.set_text(id, t.trim().to_string());
            }
        }
        for child in raw.children {
            let cid = tree.add_child(id, &child.name);
            Self::fill(tree, cid, child);
        }
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            position: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        while matches!(
            self.peek(),
            Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.consume_until("?>")?;
            } else if self.starts_with("<!--") {
                self.consume_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.consume_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    fn consume_until(&mut self, end: &str) -> Result<(), ParseError> {
        match find_subsequence(&self.input[self.pos..], end.as_bytes()) {
            Some(ix) => {
                self.pos += ix + end.len();
                Ok(())
            }
            None => self.err(format!("unterminated construct, expected `{end}`")),
        }
    }

    fn consume_doctype(&mut self) -> Result<(), ParseError> {
        // Consume "<!DOCTYPE" ... ">" honouring one level of "[ ... ]".
        self.bump("<!DOCTYPE".len());
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            match c {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.bump(1);
                    return Ok(());
                }
                _ => {}
            }
            self.bump(1);
        }
        self.err("unterminated DOCTYPE")
    }

    fn parse_document(mut self) -> Result<RawElement, ParseError> {
        self.skip_misc()?;
        if self.peek() != Some(b'<') {
            return self.err("expected root element");
        }
        let root = self.parse_element()?;
        self.skip_misc()?;
        if self.pos != self.input.len() {
            return self.err("trailing content after root element");
        }
        Ok(root)
    }

    fn parse_element(&mut self) -> Result<RawElement, ParseError> {
        if self.peek() != Some(b'<') {
            return self.err("expected `<`");
        }
        self.bump(1);
        let name = self.parse_name()?;
        let mut element = RawElement {
            name: name.clone(),
            attributes: Vec::new(),
            text: None,
            children: Vec::new(),
        };
        // Attributes and tag close.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.bump(1);
                    if self.peek() != Some(b'>') {
                        return self.err("expected `>` after `/`");
                    }
                    self.bump(1);
                    return Ok(element);
                }
                Some(b'>') => {
                    self.bump(1);
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return self.err("expected `=` in attribute");
                    }
                    self.bump(1);
                    self.skip_whitespace();
                    let value = self.parse_quoted()?;
                    element.attributes.push((attr_name, unescape(&value)));
                }
                None => return self.err("unexpected end of input in tag"),
            }
        }
        // Content.
        let mut text_acc = String::new();
        loop {
            match self.peek() {
                None => return self.err(format!("unexpected end of input inside <{name}>")),
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.bump(2);
                        let close = self.parse_name()?;
                        if close != name {
                            return self.err(format!(
                                "mismatched closing tag </{close}>, expected </{name}>"
                            ));
                        }
                        self.skip_whitespace();
                        if self.peek() != Some(b'>') {
                            return self.err("expected `>` in closing tag");
                        }
                        self.bump(1);
                        if !text_acc.trim().is_empty() {
                            element.text = Some(text_acc);
                        }
                        return Ok(element);
                    } else if self.starts_with("<!--") {
                        self.consume_until("-->")?;
                    } else if self.starts_with("<![CDATA[") {
                        let start = self.pos + "<![CDATA[".len();
                        match find_subsequence(&self.input[start..], b"]]>") {
                            Some(ix) => {
                                let chunk = std::str::from_utf8(&self.input[start..start + ix])
                                    .map_err(|_| ParseError {
                                        position: start,
                                        message: "invalid UTF-8 in CDATA".into(),
                                    })?;
                                text_acc.push_str(chunk);
                                self.pos = start + ix + 3;
                            }
                            None => return self.err("unterminated CDATA section"),
                        }
                    } else if self.starts_with("<?") {
                        self.consume_until("?>")?;
                    } else {
                        let child = self.parse_element()?;
                        element.children.push(child);
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.bump(1);
                    }
                    let raw = std::str::from_utf8(&self.input[start..self.pos]).map_err(|_| {
                        ParseError {
                            position: start,
                            message: "invalid UTF-8 in text".into(),
                        }
                    })?;
                    text_acc.push_str(&unescape(raw));
                }
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' || c == b':' {
                self.bump(1);
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .unwrap()
            .to_string())
    }

    fn parse_quoted(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("expected quoted attribute value"),
        };
        self.bump(1);
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let s = std::str::from_utf8(&self.input[start..self.pos])
                    .unwrap()
                    .to_string();
                self.bump(1);
                return Ok(s);
            }
            self.bump(1);
        }
        self.err("unterminated attribute value")
    }
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Replace the five predefined XML entities by their characters.
pub fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Escape a string for inclusion in XML text or attribute content.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::to_xml_string;

    #[test]
    fn parses_simple_nested_document() {
        let doc = parse_xml("<a><b><c/></b><b/></a>").unwrap();
        assert_eq!(doc.label(XmlTree::ROOT), "a");
        assert_eq!(doc.nodes_with_label("b").len(), 2);
        assert_eq!(doc.nodes_with_label("c").len(), 1);
    }

    #[test]
    fn parses_attributes_with_both_quote_styles() {
        let doc = parse_xml(r#"<item id="i1" class='featured'/>"#).unwrap();
        assert_eq!(doc.attribute(XmlTree::ROOT, "id"), Some("i1"));
        assert_eq!(doc.attribute(XmlTree::ROOT, "class"), Some("featured"));
    }

    #[test]
    fn parses_text_content() {
        let doc = parse_xml("<name>Alice</name>").unwrap();
        assert_eq!(doc.text(XmlTree::ROOT), Some("Alice"));
    }

    #[test]
    fn parses_mixed_formatting_whitespace() {
        let doc = parse_xml("<a>\n  <b>hi</b>\n  <c/>\n</a>").unwrap();
        assert_eq!(doc.size(), 3);
        let b = doc.nodes_with_label("b")[0];
        assert_eq!(doc.text(b), Some("hi"));
    }

    #[test]
    fn unescapes_entities() {
        let doc = parse_xml("<t a=\"x &amp; y\">1 &lt; 2</t>").unwrap();
        assert_eq!(doc.attribute(XmlTree::ROOT, "a"), Some("x & y"));
        assert_eq!(doc.text(XmlTree::ROOT), Some("1 < 2"));
    }

    #[test]
    fn skips_declaration_comments_and_doctype() {
        let doc = parse_xml(
            "<?xml version=\"1.0\"?><!-- hello --><!DOCTYPE site [<!ELEMENT site ANY>]><site/>",
        )
        .unwrap();
        assert_eq!(doc.label(XmlTree::ROOT), "site");
    }

    #[test]
    fn parses_cdata_as_text() {
        let doc = parse_xml("<d><![CDATA[a < b & c]]></d>").unwrap();
        assert_eq!(doc.text(XmlTree::ROOT), Some("a < b & c"));
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse_xml("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_xml("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_unterminated_document() {
        assert!(parse_xml("<a><b>").is_err());
    }

    #[test]
    fn preserves_document_order_of_children() {
        let doc = parse_xml("<r><x/><y/><z/></r>").unwrap();
        let labels: Vec<&str> = doc
            .children(XmlTree::ROOT)
            .iter()
            .map(|c| doc.label(*c))
            .collect();
        assert_eq!(labels, vec!["x", "y", "z"]);
    }

    #[test]
    fn roundtrips_through_serializer() {
        let src =
            "<site><people><person id=\"p0\"><name>Alice &amp; Bob</name></person></people></site>";
        let doc = parse_xml(src).unwrap();
        let out = to_xml_string(&doc);
        let doc2 = parse_xml(&out).unwrap();
        assert!(doc.unordered_eq(&doc2));
        assert_eq!(
            doc2.attribute(doc2.nodes_with_label("person")[0], "id"),
            Some("p0")
        );
        assert_eq!(
            doc2.text(doc2.nodes_with_label("name")[0]),
            Some("Alice & Bob")
        );
    }

    #[test]
    fn escape_then_unescape_is_identity() {
        let s = "a<b>&\"'c";
        assert_eq!(unescape(&escape(s)), s);
    }
}
