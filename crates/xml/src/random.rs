//! Random labelled-tree generation, used by property tests, benchmarks and the learning
//! experiments that need "arbitrary documents" rather than XMark-shaped ones.

use crate::tree::{NodeId, XmlTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the random tree generator.
#[derive(Debug, Clone)]
pub struct RandomTreeConfig {
    /// Labels to draw from. Must not be empty.
    pub alphabet: Vec<String>,
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Maximum number of children per internal node.
    pub max_children: usize,
    /// Probability that a node at depth `< max_depth` is internal (has children).
    pub branch_probability: f64,
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        RandomTreeConfig {
            alphabet: ('a'..='f').map(|c| c.to_string()).collect(),
            max_depth: 5,
            max_children: 4,
            branch_probability: 0.7,
        }
    }
}

impl RandomTreeConfig {
    /// Build a config with a numeric alphabet `l0 .. l{n-1}`.
    pub fn with_alphabet_size(n: usize) -> RandomTreeConfig {
        RandomTreeConfig {
            alphabet: (0..n).map(|i| format!("l{i}")).collect(),
            ..RandomTreeConfig::default()
        }
    }
}

/// Deterministic random tree generator (seeded).
#[derive(Debug)]
pub struct RandomTreeGenerator {
    config: RandomTreeConfig,
    rng: StdRng,
}

impl RandomTreeGenerator {
    /// Create a generator from a configuration and a seed.
    pub fn new(config: RandomTreeConfig, seed: u64) -> RandomTreeGenerator {
        assert!(!config.alphabet.is_empty(), "alphabet must not be empty");
        RandomTreeGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn random_label(&mut self) -> String {
        let ix = self.rng.gen_range(0..self.config.alphabet.len());
        self.config.alphabet[ix].clone()
    }

    /// Generate one random tree.
    pub fn generate(&mut self) -> XmlTree {
        let root_label = self.random_label();
        let mut tree = XmlTree::new(root_label);
        self.populate(&mut tree, XmlTree::ROOT, 0);
        tree
    }

    /// Generate a batch of `n` random trees.
    pub fn generate_many(&mut self, n: usize) -> Vec<XmlTree> {
        (0..n).map(|_| self.generate()).collect()
    }

    fn populate(&mut self, tree: &mut XmlTree, node: NodeId, depth: usize) {
        if depth >= self.config.max_depth {
            return;
        }
        if self.rng.gen::<f64>() > self.config.branch_probability {
            return;
        }
        let n_children = self.rng.gen_range(1..=self.config.max_children);
        for _ in 0..n_children {
            let label = self.random_label();
            let child = tree.add_child(node, label);
            self.populate(tree, child, depth + 1);
        }
    }

    /// Generate a tree guaranteed to contain at least one node with the given label
    /// (the label is planted at a random leaf if the random draw missed it).
    pub fn generate_containing(&mut self, label: &str) -> XmlTree {
        let mut tree = self.generate();
        if tree.nodes_with_label(label).is_empty() {
            let leaves: Vec<NodeId> = tree.node_ids().filter(|n| tree.is_leaf(*n)).collect();
            let ix = self.rng.gen_range(0..leaves.len());
            tree.add_child(leaves[ix], label);
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cfg = RandomTreeConfig::default();
        let a = RandomTreeGenerator::new(cfg.clone(), 7).generate_many(5);
        let b = RandomTreeGenerator::new(cfg, 7).generate_many(5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandomTreeConfig::default();
        let a = RandomTreeGenerator::new(cfg.clone(), 1).generate_many(10);
        let b = RandomTreeGenerator::new(cfg, 2).generate_many(10);
        assert_ne!(a, b);
    }

    #[test]
    fn respects_max_depth() {
        let cfg = RandomTreeConfig {
            max_depth: 3,
            ..RandomTreeConfig::default()
        };
        let mut gen = RandomTreeGenerator::new(cfg, 42);
        for _ in 0..20 {
            let t = gen.generate();
            assert!(t.height() <= 3, "height {} exceeds max depth", t.height());
        }
    }

    #[test]
    fn respects_max_children() {
        let cfg = RandomTreeConfig {
            max_children: 2,
            ..RandomTreeConfig::default()
        };
        let mut gen = RandomTreeGenerator::new(cfg, 9);
        for _ in 0..20 {
            let t = gen.generate();
            for n in t.node_ids() {
                assert!(t.children(n).len() <= 2);
            }
        }
    }

    #[test]
    fn labels_come_from_alphabet() {
        let cfg = RandomTreeConfig::with_alphabet_size(3);
        let mut gen = RandomTreeGenerator::new(cfg.clone(), 5);
        let t = gen.generate();
        for n in t.node_ids() {
            assert!(cfg.alphabet.contains(&t.label(n).to_string()));
        }
    }

    #[test]
    fn generate_containing_plants_label() {
        let cfg = RandomTreeConfig::with_alphabet_size(2);
        let mut gen = RandomTreeGenerator::new(cfg, 11);
        for _ in 0..10 {
            let t = gen.generate_containing("needle");
            assert!(!t.nodes_with_label("needle").is_empty());
        }
    }

    #[test]
    #[should_panic]
    fn empty_alphabet_is_rejected() {
        let cfg = RandomTreeConfig {
            alphabet: vec![],
            ..RandomTreeConfig::default()
        };
        let _ = RandomTreeGenerator::new(cfg, 0);
    }
}
