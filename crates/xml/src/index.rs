//! A read-only structural index over an [`XmlTree`], built once and shared by many queries.
//!
//! Every learner in the workspace evaluates a long stream of candidate queries against the same
//! handful of documents; walking the whole tree for each evaluation is the hot path of the
//! interactive experiments. [`NodeIndex`] precomputes, in one O(n) pass:
//!
//! * **label postings** — for every label, the sorted list of nodes carrying it, so a query
//!   node test starts from its candidate nodes instead of the whole document;
//! * **preorder intervals** — each node's preorder rank and the (half-open) rank interval of
//!   its subtree, giving O(1) ancestor/descendant tests;
//! * **depth and parent arrays** — flat copies of the tree's structural accessors, laid out for
//!   cache-friendly upward walks.
//!
//! The index is immutable and contains no references into the tree, so it can be built once,
//! wrapped in an `Arc`, and shared across concurrent sessions (see `qbe_core::workload`). It is
//! only meaningful for the exact tree it was built from; callers are responsible for not mixing
//! indexes and trees up (the node count is checked in debug builds by the consumers).

use crate::tree::{NodeId, XmlTree};
use qbe_bitset::DenseSet;
use std::collections::HashMap;

/// Immutable structural index of one [`XmlTree`].
#[derive(Debug, Clone)]
pub struct NodeIndex {
    /// `postings[label]` = nodes with that label, sorted by [`NodeId`].
    postings: HashMap<String, Vec<NodeId>>,
    /// The same postings as dense bitsets over the node universe — what the bitwise match-set
    /// kernels of the indexed evaluators start from.
    postings_bits: HashMap<String, DenseSet<NodeId>>,
    /// The full node universe as a bitset (the unconstrained-wildcard start set).
    all_bits: DenseSet<NodeId>,
    /// Preorder rank of each node (root has rank 0).
    pre: Vec<u32>,
    /// Half-open end of each node's preorder interval: the subtree of `n` is exactly the nodes
    /// with rank in `pre[n]..subtree_end[n]`.
    subtree_end: Vec<u32>,
    /// Depth of each node (root is 0).
    depth: Vec<u32>,
    /// Parent of each node (`None` for the root).
    parent: Vec<Option<NodeId>>,
}

impl NodeIndex {
    /// Build the index for a tree in a single preorder pass.
    pub fn build(tree: &XmlTree) -> NodeIndex {
        let n = tree.size();
        let mut postings: HashMap<String, Vec<NodeId>> = HashMap::new();
        let mut depth = vec![0u32; n];
        let mut parent = vec![None; n];
        for node in tree.node_ids() {
            postings
                .entry(tree.label(node).to_string())
                .or_default()
                .push(node);
            parent[node.index()] = tree.parent(node);
            if let Some(p) = parent[node.index()] {
                // Parents precede children in the arena, so their depth is already final.
                depth[node.index()] = depth[p.index()] + 1;
            }
        }
        // `node_ids` iterates in arena order, which is ascending NodeId: postings are sorted.
        let mut pre = vec![0u32; n];
        let mut subtree_end = vec![0u32; n];
        let mut rank = 0u32;
        // Iterative preorder with an explicit exit action to close intervals.
        let mut stack: Vec<(NodeId, bool)> = vec![(XmlTree::ROOT, false)];
        while let Some((node, exiting)) = stack.pop() {
            if exiting {
                subtree_end[node.index()] = rank;
                continue;
            }
            pre[node.index()] = rank;
            rank += 1;
            stack.push((node, true));
            for &child in tree.children(node).iter().rev() {
                stack.push((child, false));
            }
        }
        let postings_bits = postings
            .iter()
            .map(|(label, nodes)| (label.clone(), DenseSet::from_ids(n, nodes.iter().copied())))
            .collect();
        NodeIndex {
            postings,
            postings_bits,
            all_bits: DenseSet::full(n),
            pre,
            subtree_end,
            depth,
            parent,
        }
    }

    /// Reassemble an index from its serialised parts: the per-label posting bitsets plus the
    /// flat preorder/depth/parent arrays (what the snapshot store persists). The sorted posting
    /// lists and the all-nodes bitset are derived, so the parts are exactly the flat,
    /// mmap-friendly payload — no redundant encoding.
    ///
    /// # Panics
    /// Panics when the array lengths or bitset universes disagree — mixing parts from
    /// different documents is a logic error, the same contract as [`build`](Self::build).
    pub fn from_parts(
        postings_bits: HashMap<String, DenseSet<NodeId>>,
        pre: Vec<u32>,
        subtree_end: Vec<u32>,
        depth: Vec<u32>,
        parent: Vec<Option<NodeId>>,
    ) -> NodeIndex {
        let n = pre.len();
        assert!(
            subtree_end.len() == n && depth.len() == n && parent.len() == n,
            "index arrays must agree on the node count"
        );
        for bits in postings_bits.values() {
            assert_eq!(bits.universe(), n, "posting bitset universe mismatch");
        }
        let postings = postings_bits
            .iter()
            .map(|(label, bits)| (label.clone(), bits.iter().collect()))
            .collect();
        NodeIndex {
            postings,
            postings_bits,
            all_bits: DenseSet::full(n),
            pre,
            subtree_end,
            depth,
            parent,
        }
    }

    /// Every `(label, posting bitset)` pair, in arbitrary order — the iteration the snapshot
    /// writer serialises (sorting by label for determinism is the writer's business).
    pub fn posting_entries(&self) -> impl Iterator<Item = (&str, &DenseSet<NodeId>)> {
        self.postings_bits
            .iter()
            .map(|(label, bits)| (label.as_str(), bits))
    }

    /// The flat preorder-rank array (`pre[node index]`).
    pub fn pre_ranks(&self) -> &[u32] {
        &self.pre
    }

    /// The flat subtree-interval-end array, paired with [`pre_ranks`](Self::pre_ranks).
    pub fn subtree_ends(&self) -> &[u32] {
        &self.subtree_end
    }

    /// The flat depth array (root is 0).
    pub fn depths(&self) -> &[u32] {
        &self.depth
    }

    /// The flat parent array (`None` for the root).
    pub fn parents(&self) -> &[Option<NodeId>] {
        &self.parent
    }

    /// Number of indexed nodes.
    pub fn node_count(&self) -> usize {
        self.pre.len()
    }

    /// Nodes carrying `label`, sorted by id (empty for unknown labels).
    pub fn postings(&self, label: &str) -> &[NodeId] {
        self.postings.get(label).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Nodes carrying `label` as a dense bitset over the node universe (`None` for unknown
    /// labels — callers treat it as the empty set). One word-level AND against another match
    /// set replaces a sorted-list intersection.
    pub fn postings_bits(&self, label: &str) -> Option<&DenseSet<NodeId>> {
        self.postings_bits.get(label)
    }

    /// Every node of the document as a dense bitset (the start set of an unconstrained `*`).
    pub fn all_bits(&self) -> &DenseSet<NodeId> {
        &self.all_bits
    }

    /// Number of distinct labels in the document.
    pub fn label_count(&self) -> usize {
        self.postings.len()
    }

    /// Preorder rank of a node.
    pub fn preorder_rank(&self, node: NodeId) -> u32 {
        self.pre[node.index()]
    }

    /// Half-open preorder interval covered by the subtree of `node`.
    pub fn subtree_interval(&self, node: NodeId) -> (u32, u32) {
        (self.pre[node.index()], self.subtree_end[node.index()])
    }

    /// Whether `ancestor` is a **proper** ancestor of `descendant` — O(1).
    pub fn is_ancestor(&self, ancestor: NodeId, descendant: NodeId) -> bool {
        let d = self.pre[descendant.index()];
        self.pre[ancestor.index()] < d && d < self.subtree_end[ancestor.index()]
    }

    /// Depth of a node (root is 0) — O(1), unlike [`XmlTree::depth`]'s upward walk.
    pub fn depth(&self, node: NodeId) -> usize {
        self.depth[node.index()] as usize
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    fn sample() -> XmlTree {
        TreeBuilder::new("site")
            .open("regions")
            .leaf("europe")
            .leaf("asia")
            .close()
            .open("people")
            .open("person")
            .leaf("name")
            .close()
            .close()
            .build()
    }

    #[test]
    fn postings_match_nodes_with_label() {
        let t = sample();
        let ix = NodeIndex::build(&t);
        for label in t.alphabet() {
            assert_eq!(ix.postings(&label), t.nodes_with_label(&label).as_slice());
        }
        assert!(ix.postings("nonexistent").is_empty());
        assert_eq!(ix.label_count(), t.alphabet().len());
    }

    #[test]
    fn posting_bitsets_agree_with_posting_lists() {
        let t = sample();
        let ix = NodeIndex::build(&t);
        for label in t.alphabet() {
            let bits = ix.postings_bits(&label).expect("label is present");
            assert_eq!(bits.universe(), t.size());
            assert_eq!(bits.iter().collect::<Vec<_>>(), ix.postings(&label));
        }
        assert!(ix.postings_bits("nonexistent").is_none());
        assert_eq!(ix.all_bits().len(), t.size());
    }

    #[test]
    fn postings_are_sorted() {
        let t = sample();
        let ix = NodeIndex::build(&t);
        for label in t.alphabet() {
            let p = ix.postings(&label);
            assert!(p.windows(2).all(|w| w[0] < w[1]), "{label}");
        }
    }

    #[test]
    fn depth_and_parent_agree_with_tree() {
        let t = sample();
        let ix = NodeIndex::build(&t);
        for node in t.node_ids() {
            assert_eq!(ix.depth(node), t.depth(node));
            assert_eq!(ix.parent(node), t.parent(node));
        }
    }

    #[test]
    fn ancestor_test_agrees_with_ancestor_walk() {
        let t = sample();
        let ix = NodeIndex::build(&t);
        for a in t.node_ids() {
            for b in t.node_ids() {
                assert_eq!(
                    ix.is_ancestor(a, b),
                    t.ancestors(b).contains(&a),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn subtree_interval_counts_descendants() {
        let t = sample();
        let ix = NodeIndex::build(&t);
        for node in t.node_ids() {
            let (lo, hi) = ix.subtree_interval(node);
            assert_eq!((hi - lo) as usize, t.descendants(node).len() + 1);
        }
        assert_eq!(ix.subtree_interval(XmlTree::ROOT), (0, t.size() as u32));
    }

    #[test]
    fn from_parts_round_trips_a_built_index() {
        let t = sample();
        let built = NodeIndex::build(&t);
        let rebuilt = NodeIndex::from_parts(
            built
                .posting_entries()
                .map(|(l, b)| (l.to_string(), b.clone()))
                .collect(),
            built.pre_ranks().to_vec(),
            built.subtree_ends().to_vec(),
            built.depths().to_vec(),
            built.parents().to_vec(),
        );
        assert_eq!(rebuilt.node_count(), built.node_count());
        assert_eq!(rebuilt.label_count(), built.label_count());
        for label in t.alphabet() {
            assert_eq!(rebuilt.postings(&label), built.postings(&label));
            assert_eq!(
                rebuilt.postings_bits(&label),
                built.postings_bits(&label),
                "{label}"
            );
        }
        assert_eq!(rebuilt.all_bits(), built.all_bits());
        for node in t.node_ids() {
            assert_eq!(rebuilt.subtree_interval(node), built.subtree_interval(node));
            assert_eq!(rebuilt.depth(node), built.depth(node));
            assert_eq!(rebuilt.parent(node), built.parent(node));
        }
    }

    #[test]
    fn single_node_tree() {
        let t = XmlTree::new("only");
        let ix = NodeIndex::build(&t);
        assert_eq!(ix.node_count(), 1);
        assert_eq!(ix.postings("only"), &[XmlTree::ROOT]);
        assert!(!ix.is_ancestor(XmlTree::ROOT, XmlTree::ROOT));
    }
}
