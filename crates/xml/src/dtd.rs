//! DTD-lite content models.
//!
//! The paper contrasts its new unordered schema formalisms (disjunctive multiplicity schemas,
//! implemented in `qbe-schema`) against classical DTDs, whose content models are regular
//! expressions over child labels. This module provides exactly that baseline: a small content
//! particle language (sequence, choice, `?`, `*`, `+`, element names, `#PCDATA`), document
//! validation against it, and helpers used by the generators.

use crate::tree::{NodeId, XmlTree};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A DTD content particle — a regular expression over element labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Particle {
    /// `EMPTY` — no element children allowed.
    Empty,
    /// `(#PCDATA)` — text-only content, no element children.
    Text,
    /// A single element name.
    Element(String),
    /// Ordered sequence `(p1, p2, ...)`.
    Seq(Vec<Particle>),
    /// Choice `(p1 | p2 | ...)`.
    Choice(Vec<Particle>),
    /// Optional `p?`.
    Optional(Box<Particle>),
    /// Zero-or-more `p*`.
    Star(Box<Particle>),
    /// One-or-more `p+`.
    Plus(Box<Particle>),
}

impl Particle {
    /// Convenience constructor for an element reference.
    pub fn elem(name: &str) -> Particle {
        Particle::Element(name.to_string())
    }

    /// Convenience constructor for `p?`.
    pub fn opt(p: Particle) -> Particle {
        Particle::Optional(Box::new(p))
    }

    /// Convenience constructor for `p*`.
    pub fn star(p: Particle) -> Particle {
        Particle::Star(Box::new(p))
    }

    /// Convenience constructor for `p+`.
    pub fn plus(p: Particle) -> Particle {
        Particle::Plus(Box::new(p))
    }

    /// Element names mentioned anywhere in the particle.
    pub fn referenced_elements(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_elements(&mut out);
        out
    }

    fn collect_elements(&self, out: &mut BTreeSet<String>) {
        match self {
            Particle::Empty | Particle::Text => {}
            Particle::Element(name) => {
                out.insert(name.clone());
            }
            Particle::Seq(ps) | Particle::Choice(ps) => {
                for p in ps {
                    p.collect_elements(out);
                }
            }
            Particle::Optional(p) | Particle::Star(p) | Particle::Plus(p) => {
                p.collect_elements(out)
            }
        }
    }

    /// Whether the particle accepts the empty child sequence.
    pub fn nullable(&self) -> bool {
        match self {
            Particle::Empty | Particle::Text => true,
            Particle::Element(_) => false,
            Particle::Seq(ps) => ps.iter().all(Particle::nullable),
            Particle::Choice(ps) => ps.iter().any(Particle::nullable),
            Particle::Optional(_) | Particle::Star(_) => true,
            Particle::Plus(p) => p.nullable(),
        }
    }

    /// All end positions reachable when matching this particle against `labels[start..]`.
    ///
    /// This is the classic "set of positions" simulation of the regular expression; it runs in
    /// polynomial time in the length of the child list and the size of the particle.
    fn match_from(&self, labels: &[&str], start: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        match self {
            Particle::Empty | Particle::Text => {
                out.insert(start);
            }
            Particle::Element(name) => {
                if start < labels.len() && labels[start] == name {
                    out.insert(start + 1);
                }
            }
            Particle::Seq(ps) => {
                let mut fronts: BTreeSet<usize> = BTreeSet::from([start]);
                for p in ps {
                    let mut next = BTreeSet::new();
                    for f in &fronts {
                        next.extend(p.match_from(labels, *f));
                    }
                    fronts = next;
                    if fronts.is_empty() {
                        break;
                    }
                }
                out = fronts;
            }
            Particle::Choice(ps) => {
                for p in ps {
                    out.extend(p.match_from(labels, start));
                }
            }
            Particle::Optional(p) => {
                out.insert(start);
                out.extend(p.match_from(labels, start));
            }
            Particle::Star(inner) | Particle::Plus(inner) => {
                let require_one = matches!(self, Particle::Plus(_));
                // Fixed-point over positions reachable by repeating the inner particle.
                let mut reached_after_one: BTreeSet<usize> = BTreeSet::new();
                let mut visited: BTreeSet<usize> = BTreeSet::from([start]);
                let mut frontier: BTreeSet<usize> = BTreeSet::from([start]);
                loop {
                    let mut next = BTreeSet::new();
                    for f in &frontier {
                        for e in inner.match_from(labels, *f) {
                            reached_after_one.insert(e);
                            if visited.insert(e) {
                                next.insert(e);
                            }
                        }
                    }
                    if next.is_empty() {
                        break;
                    }
                    frontier = next;
                }
                out.extend(reached_after_one);
                if !require_one {
                    out.insert(start);
                }
            }
        }
        out
    }

    /// Whether the particle accepts exactly the given sequence of child labels.
    pub fn accepts(&self, labels: &[&str]) -> bool {
        self.match_from(labels, 0).contains(&labels.len())
    }
}

impl fmt::Display for Particle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Particle::Empty => write!(f, "EMPTY"),
            Particle::Text => write!(f, "(#PCDATA)"),
            Particle::Element(name) => write!(f, "{name}"),
            Particle::Seq(ps) => {
                let inner: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", inner.join(", "))
            }
            Particle::Choice(ps) => {
                let inner: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", inner.join(" | "))
            }
            Particle::Optional(p) => write!(f, "{p}?"),
            Particle::Star(p) => write!(f, "{p}*"),
            Particle::Plus(p) => write!(f, "{p}+"),
        }
    }
}

/// A DTD-lite: a root element name plus one content model per element name.
///
/// Elements that occur in a document but have no rule are treated as unconstrained (`ANY`),
/// mirroring how lax real-world DTD validation is used in the paper's corpus study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dtd {
    root: String,
    rules: BTreeMap<String, Particle>,
}

/// A single validation violation found by [`Dtd::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtdViolation {
    /// Node whose content does not match its rule.
    pub node: NodeId,
    /// Label of that node.
    pub label: String,
    /// The observed child label sequence.
    pub observed: Vec<String>,
    /// The expected content model.
    pub expected: String,
}

impl fmt::Display for DtdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "element <{}> at {} has children ({}) not matching {}",
            self.label,
            self.node,
            self.observed.join(", "),
            self.expected
        )
    }
}

impl Dtd {
    /// Create a DTD with the given root element and no rules.
    pub fn new(root: impl Into<String>) -> Dtd {
        Dtd {
            root: root.into(),
            rules: BTreeMap::new(),
        }
    }

    /// Name of the root element.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Add (or replace) the content model for an element.
    pub fn rule(mut self, element: impl Into<String>, particle: Particle) -> Dtd {
        self.rules.insert(element.into(), particle);
        self
    }

    /// Content model of an element, if declared.
    pub fn content_model(&self, element: &str) -> Option<&Particle> {
        self.rules.get(element)
    }

    /// All element names with a declared rule.
    pub fn declared_elements(&self) -> impl Iterator<Item = &str> {
        self.rules.keys().map(String::as_str)
    }

    /// Number of declared rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the DTD declares no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Validate a document, returning every violation (empty means valid).
    pub fn validate(&self, doc: &XmlTree) -> Vec<DtdViolation> {
        let mut violations = Vec::new();
        if doc.label(XmlTree::ROOT) != self.root {
            violations.push(DtdViolation {
                node: XmlTree::ROOT,
                label: doc.label(XmlTree::ROOT).to_string(),
                observed: vec![],
                expected: format!("root element {}", self.root),
            });
        }
        for node in doc.node_ids() {
            let label = doc.label(node);
            if let Some(particle) = self.rules.get(label) {
                let child_labels: Vec<&str> =
                    doc.children(node).iter().map(|c| doc.label(*c)).collect();
                if !particle.accepts(&child_labels) {
                    violations.push(DtdViolation {
                        node,
                        label: label.to_string(),
                        observed: child_labels.iter().map(|s| s.to_string()).collect(),
                        expected: particle.to_string(),
                    });
                }
            }
        }
        violations
    }

    /// Whether the document is valid against this DTD.
    pub fn is_valid(&self, doc: &XmlTree) -> bool {
        self.validate(doc).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    fn library_dtd() -> Dtd {
        Dtd::new("library")
            .rule("library", Particle::star(Particle::elem("book")))
            .rule(
                "book",
                Particle::Seq(vec![
                    Particle::elem("title"),
                    Particle::plus(Particle::elem("author")),
                    Particle::opt(Particle::elem("year")),
                ]),
            )
            .rule("title", Particle::Text)
            .rule("author", Particle::Text)
            .rule("year", Particle::Text)
    }

    #[test]
    fn accepts_matching_sequence() {
        let p = Particle::Seq(vec![
            Particle::elem("a"),
            Particle::star(Particle::elem("b")),
            Particle::opt(Particle::elem("c")),
        ]);
        assert!(p.accepts(&["a"]));
        assert!(p.accepts(&["a", "b", "b", "c"]));
        assert!(!p.accepts(&["b"]));
        assert!(!p.accepts(&["a", "c", "b"]));
    }

    #[test]
    fn choice_accepts_either_branch() {
        let p = Particle::Choice(vec![Particle::elem("x"), Particle::elem("y")]);
        assert!(p.accepts(&["x"]));
        assert!(p.accepts(&["y"]));
        assert!(!p.accepts(&["x", "y"]));
        assert!(!p.accepts(&[]));
    }

    #[test]
    fn plus_requires_at_least_one() {
        let p = Particle::plus(Particle::elem("a"));
        assert!(!p.accepts(&[]));
        assert!(p.accepts(&["a"]));
        assert!(p.accepts(&["a", "a", "a"]));
    }

    #[test]
    fn star_accepts_empty() {
        let p = Particle::star(Particle::elem("a"));
        assert!(p.accepts(&[]));
        assert!(p.accepts(&["a", "a"]));
        assert!(!p.accepts(&["b"]));
    }

    #[test]
    fn nested_repetition_of_choice() {
        // (a | b)* accepts any mix of a and b.
        let p = Particle::star(Particle::Choice(vec![
            Particle::elem("a"),
            Particle::elem("b"),
        ]));
        assert!(p.accepts(&["a", "b", "a", "a", "b"]));
        assert!(!p.accepts(&["a", "c"]));
    }

    #[test]
    fn nullable_is_consistent_with_accepts_empty() {
        let cases = vec![
            Particle::Empty,
            Particle::Text,
            Particle::elem("a"),
            Particle::opt(Particle::elem("a")),
            Particle::star(Particle::elem("a")),
            Particle::plus(Particle::elem("a")),
            Particle::Seq(vec![
                Particle::opt(Particle::elem("a")),
                Particle::star(Particle::elem("b")),
            ]),
            Particle::Choice(vec![Particle::elem("a"), Particle::Empty]),
        ];
        for p in cases {
            assert_eq!(p.nullable(), p.accepts(&[]), "particle {p}");
        }
    }

    #[test]
    fn referenced_elements_are_collected() {
        let p = Particle::Seq(vec![
            Particle::elem("a"),
            Particle::Choice(vec![
                Particle::elem("b"),
                Particle::star(Particle::elem("c")),
            ]),
        ]);
        let refs = p.referenced_elements();
        assert_eq!(refs.into_iter().collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    #[test]
    fn dtd_validates_conforming_document() {
        let doc = TreeBuilder::new("library")
            .open("book")
            .leaf_text("title", "Dune")
            .leaf_text("author", "Herbert")
            .leaf_text("year", "1965")
            .close()
            .open("book")
            .leaf_text("title", "Foundation")
            .leaf_text("author", "Asimov")
            .close()
            .build();
        assert!(library_dtd().is_valid(&doc));
    }

    #[test]
    fn dtd_reports_violations_with_context() {
        let doc = TreeBuilder::new("library")
            .open("book")
            .leaf_text("author", "Herbert") // missing title
            .close()
            .build();
        let violations = library_dtd().validate(&doc);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].label, "book");
        assert!(violations[0].to_string().contains("book"));
    }

    #[test]
    fn dtd_rejects_wrong_root() {
        let doc = TreeBuilder::new("shelf").build();
        assert!(!library_dtd().is_valid(&doc));
    }

    #[test]
    fn undeclared_elements_are_unconstrained() {
        let dtd = Dtd::new("r").rule("r", Particle::star(Particle::elem("mystery")));
        let doc = TreeBuilder::new("r")
            .open("mystery")
            .leaf("anything")
            .close()
            .build();
        assert!(dtd.is_valid(&doc));
    }

    #[test]
    fn particle_display_is_readable() {
        let p = Particle::Seq(vec![
            Particle::elem("title"),
            Particle::plus(Particle::elem("author")),
            Particle::opt(Particle::elem("year")),
        ]);
        assert_eq!(p.to_string(), "(title, author+, year?)");
    }
}
