//! Deterministic, seeded fault injection for the qbe stack.
//!
//! Every unreliable-world behaviour in the workspace — failed or torn store
//! writes, fsync errors, dropped connections, injected latency, flipped oracle
//! answers — is decided by a [`FaultRegistry`]: a set of named *sites*
//! (`"wal.fsync"`, `"server.drop"`, …) with per-site probability/schedule
//! configuration. All randomness is derived from a single profile seed, with
//! one independent stream per site, so a fault schedule is a pure function of
//! `(profile, sequence of checks at each site)`: two runs that check the same
//! sites in the same per-site order inject *exactly* the same faults. That is
//! what lets differential pins (byte-identical transcripts, replay equality)
//! keep holding under injected failure.
//!
//! Profiles are built in code ([`FaultProfile::site`]) or parsed from a spec
//! string ([`FaultProfile::parse`], also read from an environment variable by
//! [`FaultProfile::from_env`] so CI can select a profile without recompiling):
//!
//! ```text
//! seed=42;server.drop=0.2:max=4;server.latency=1:ms=2;wal.fsync=0.5
//! ```
//!
//! Code under test asks the registry at each site: [`FaultRegistry::fire`]
//! for a yes/no decision, [`FaultRegistry::delay`] for injected latency,
//! [`FaultRegistry::io_error`] for an `io::Error` seam. Sites not named by the
//! profile never fire and cost one map lookup, so the seams stay in production
//! code paths permanently.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Marker substring present in every injected [`io::Error`] message, so tests
/// (and log readers) can tell injected failures from real ones.
pub const INJECTED_MARKER: &str = "injected fault";

/// Builds the `io::Error` returned by fired I/O fault sites.
pub fn injected_io_error(site: &str) -> io::Error {
    io::Error::other(format!("{INJECTED_MARKER} at {site}"))
}

/// 64-bit FNV-1a — used to derive an independent RNG stream per site name.
/// (Duplicated from `qbe-store` because this crate sits below it.)
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Per-site fault configuration: when and how often the site fires.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteConfig {
    /// Probability that each check fires, in `[0, 1]` (drawn from the site's
    /// seeded stream).
    pub probability: f64,
    /// Deterministic schedule: additionally fire on every `n`-th check of the
    /// site (1-based, so `every=3` fires checks 3, 6, 9, …).
    pub every: Option<u64>,
    /// Stop firing after this many fires (the site keeps counting checks).
    pub max_fires: Option<u64>,
    /// For latency sites: the delay to inject when the site fires.
    pub delay_ms: Option<u64>,
}

impl SiteConfig {
    /// A site that fires each check with probability `p` (clamped to `[0, 1]`).
    pub fn with_probability(p: f64) -> Self {
        SiteConfig {
            probability: p.clamp(0.0, 1.0),
            every: None,
            max_fires: None,
            delay_ms: None,
        }
    }

    /// A site that fires deterministically on every `n`-th check.
    pub fn with_every(n: u64) -> Self {
        SiteConfig {
            probability: 0.0,
            every: Some(n),
            max_fires: None,
            delay_ms: None,
        }
    }

    /// Caps the site at `n` total fires.
    pub fn max_fires(mut self, n: u64) -> Self {
        self.max_fires = Some(n);
        self
    }

    /// Sets the injected delay for latency sites.
    pub fn delay_ms(mut self, ms: u64) -> Self {
        self.delay_ms = Some(ms);
        self
    }

    /// Parses `"<prob>[:every=N][:max=N][:ms=N]"`, e.g. `"0.2:max=3"`.
    pub fn parse(spec: &str) -> Result<SiteConfig, String> {
        let mut parts = spec.split(':');
        let prob_part = parts.next().unwrap_or_default();
        let probability: f64 = prob_part
            .parse()
            .ok()
            .filter(|p: &f64| (0.0..=1.0).contains(p))
            .ok_or_else(|| {
                format!("site probability must be a number in [0, 1], got {prob_part:?}")
            })?;
        let mut config = SiteConfig::with_probability(probability);
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("site option must be key=value, got {part:?}"))?;
            let n: u64 = value
                .parse()
                .map_err(|_| format!("site option {key} needs an integer, got {value:?}"))?;
            match key {
                "every" if n > 0 => config.every = Some(n),
                "every" => return Err("every=N needs N > 0".to_string()),
                "max" => config.max_fires = Some(n),
                "ms" => config.delay_ms = Some(n),
                other => return Err(format!("unknown site option {other:?}")),
            }
        }
        Ok(config)
    }
}

/// A named collection of fault sites plus the seed their streams derive from.
///
/// The default profile has seed 0 and no sites: a registry over it never
/// fires, so "faults compiled in but disabled" is just the empty profile.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultProfile {
    /// Master seed; each site's stream is seeded by `seed ^ fnv1a64(name)`.
    pub seed: u64,
    /// Site name → configuration.
    pub sites: BTreeMap<String, SiteConfig>,
}

impl FaultProfile {
    /// An empty profile with the given master seed.
    pub fn new(seed: u64) -> Self {
        FaultProfile {
            seed,
            sites: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a site. Builder-style: `FaultProfile::new(7).site(..)`.
    pub fn site(mut self, name: &str, config: SiteConfig) -> Self {
        self.sites.insert(name.to_string(), config);
        self
    }

    /// Parses a `;`-separated spec: `seed=N` clauses set the master seed, any
    /// other clause is `<site>=<SiteConfig>` (see [`SiteConfig::parse`]).
    ///
    /// ```
    /// use qbe_faults::FaultProfile;
    /// let p = FaultProfile::parse("seed=42;server.drop=0.2:max=4;wal.fsync=1:every=2").unwrap();
    /// assert_eq!(p.seed, 42);
    /// assert_eq!(p.sites.len(), 2);
    /// ```
    pub fn parse(spec: &str) -> Result<FaultProfile, String> {
        let mut profile = FaultProfile::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause must be name=value, got {clause:?}"))?;
            let (name, value) = (name.trim(), value.trim());
            if name == "seed" {
                profile.seed = value
                    .parse()
                    .map_err(|_| format!("seed needs an integer, got {value:?}"))?;
            } else if name.is_empty() {
                return Err(format!("empty site name in clause {clause:?}"));
            } else {
                let config = SiteConfig::parse(value).map_err(|e| format!("site {name}: {e}"))?;
                profile.sites.insert(name.to_string(), config);
            }
        }
        Ok(profile)
    }

    /// Reads a profile spec from environment variable `var`. `Ok(None)` when
    /// unset or empty; `Err` when set but unparseable (callers should fail
    /// loudly rather than silently run fault-free).
    pub fn from_env(var: &str) -> Result<Option<FaultProfile>, String> {
        match std::env::var(var) {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }
}

#[derive(Debug)]
struct SiteState {
    rng: StdRng,
    checks: u64,
    fires: u64,
}

/// Thread-safe runtime over a [`FaultProfile`]: per-site seeded RNG streams
/// plus fire/check counters. Cheap to share (`Arc<FaultRegistry>`); one
/// registry per tier (server, client, store writer) keeps their streams
/// independent.
#[derive(Debug)]
pub struct FaultRegistry {
    profile: FaultProfile,
    states: Mutex<BTreeMap<String, SiteState>>,
    injected: AtomicU64,
}

impl FaultRegistry {
    /// Builds a registry over `profile`.
    pub fn new(profile: FaultProfile) -> Self {
        FaultRegistry {
            profile,
            states: Mutex::new(BTreeMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Convenience: `Arc::new(FaultRegistry::new(profile))`.
    pub fn shared(profile: FaultProfile) -> Arc<Self> {
        Arc::new(Self::new(profile))
    }

    /// The profile this registry runs.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Checks the site once and reports whether it fires. Sites absent from
    /// the profile never fire; configured sites consult their deterministic
    /// schedule (`every`) and their seeded probability stream, capped by
    /// `max_fires`.
    pub fn fire(&self, site: &str) -> bool {
        let Some(config) = self.profile.sites.get(site) else {
            return false;
        };
        let mut states = self.states.lock().unwrap_or_else(|e| e.into_inner());
        let state = states.entry(site.to_string()).or_insert_with(|| SiteState {
            rng: StdRng::seed_from_u64(self.profile.seed ^ fnv1a64(site.as_bytes())),
            checks: 0,
            fires: 0,
        });
        state.checks += 1;
        // Draw even when capped so the stream position stays a function of the
        // check count alone (max_fires then only masks fires, not randomness).
        let scheduled = config.every.is_some_and(|n| state.checks.is_multiple_of(n));
        let drawn = config.probability > 0.0 && state.rng.gen_bool(config.probability);
        let capped = config.max_fires.is_some_and(|max| state.fires >= max);
        let fired = (scheduled || drawn) && !capped;
        if fired {
            state.fires += 1;
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Latency seam: `Some(delay)` when the site fires and configures
    /// `delay_ms`, `None` otherwise.
    pub fn delay(&self, site: &str) -> Option<Duration> {
        let ms = self.profile.sites.get(site)?.delay_ms?;
        if self.fire(site) {
            Some(Duration::from_millis(ms))
        } else {
            None
        }
    }

    /// I/O seam: `Err(injected error)` when the site fires, `Ok(())` otherwise.
    pub fn io_error(&self, site: &str) -> io::Result<()> {
        if self.fire(site) {
            Err(injected_io_error(site))
        } else {
            Ok(())
        }
    }

    /// Total faults injected across all sites (the `faults_injected=` METRICS
    /// counter).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Fires at one site so far.
    pub fn fires(&self, site: &str) -> u64 {
        let states = self.states.lock().unwrap_or_else(|e| e.into_inner());
        states.get(site).map_or(0, |s| s.fires)
    }

    /// Checks at one site so far.
    pub fn checks(&self, site: &str) -> u64 {
        let states = self.states.lock().unwrap_or_else(|e| e.into_inner());
        states.get(site).map_or(0, |s| s.checks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drop_profile(seed: u64) -> FaultProfile {
        FaultProfile::new(seed).site("server.drop", SiteConfig::with_probability(0.3))
    }

    #[test]
    fn unconfigured_sites_never_fire_and_cost_no_state() {
        let reg = FaultRegistry::new(drop_profile(7));
        for _ in 0..100 {
            assert!(!reg.fire("wal.fsync"));
        }
        assert_eq!(reg.checks("wal.fsync"), 0);
        assert_eq!(reg.injected(), 0);
    }

    #[test]
    fn fire_sequences_are_deterministic_under_the_seed() {
        let a = FaultRegistry::new(drop_profile(42));
        let b = FaultRegistry::new(drop_profile(42));
        let seq_a: Vec<bool> = (0..200).map(|_| a.fire("server.drop")).collect();
        let seq_b: Vec<bool> = (0..200).map(|_| b.fire("server.drop")).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&f| f), "p=0.3 over 200 checks must fire");
        assert!(!seq_a.iter().all(|&f| f), "p=0.3 must not always fire");

        let c = FaultRegistry::new(drop_profile(43));
        let seq_c: Vec<bool> = (0..200).map(|_| c.fire("server.drop")).collect();
        assert_ne!(seq_a, seq_c, "different seeds give different schedules");
    }

    #[test]
    fn per_site_streams_are_independent_of_interleaving() {
        let profile = FaultProfile::new(9)
            .site("a", SiteConfig::with_probability(0.5))
            .site("b", SiteConfig::with_probability(0.5));
        let solo = FaultRegistry::new(profile.clone());
        let solo_a: Vec<bool> = (0..50).map(|_| solo.fire("a")).collect();

        let mixed = FaultRegistry::new(profile);
        let mut mixed_a = Vec::new();
        for _ in 0..50 {
            mixed.fire("b"); // extra traffic at another site
            mixed_a.push(mixed.fire("a"));
            mixed.fire("b");
        }
        assert_eq!(solo_a, mixed_a);
    }

    #[test]
    fn every_schedule_is_exact_and_max_fires_caps() {
        let reg = FaultRegistry::new(
            FaultProfile::new(0).site("s", SiteConfig::with_every(3).max_fires(2)),
        );
        let seq: Vec<bool> = (0..12).map(|_| reg.fire("s")).collect();
        let fired: Vec<usize> = seq
            .iter()
            .enumerate()
            .filter_map(|(ix, &f)| f.then_some(ix + 1))
            .collect();
        assert_eq!(
            fired,
            vec![3, 6],
            "fires checks 3 and 6, then the cap holds"
        );
        assert_eq!(reg.fires("s"), 2);
        assert_eq!(reg.checks("s"), 12);
        assert_eq!(reg.injected(), 2);
    }

    #[test]
    fn probability_extremes_behave() {
        let never =
            FaultRegistry::new(FaultProfile::new(1).site("s", SiteConfig::with_probability(0.0)));
        assert!((0..100).all(|_| !never.fire("s")));
        let always =
            FaultRegistry::new(FaultProfile::new(1).site("s", SiteConfig::with_probability(1.0)));
        assert!((0..100).all(|_| always.fire("s")));
    }

    #[test]
    fn delay_fires_with_the_configured_duration() {
        let reg = FaultRegistry::new(
            FaultProfile::new(3).site("lat", SiteConfig::with_probability(1.0).delay_ms(2)),
        );
        assert_eq!(reg.delay("lat"), Some(Duration::from_millis(2)));
        // No delay configured → None even when the site would fire.
        let bare =
            FaultRegistry::new(FaultProfile::new(3).site("lat", SiteConfig::with_probability(1.0)));
        assert_eq!(bare.delay("lat"), None);
        assert_eq!(
            bare.checks("lat"),
            0,
            "delay() without delay_ms never draws"
        );
    }

    #[test]
    fn io_error_carries_the_marker_and_site() {
        let reg = FaultRegistry::new(
            FaultProfile::new(5).site("wal.fsync", SiteConfig::with_probability(1.0)),
        );
        let err = reg.io_error("wal.fsync").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(INJECTED_MARKER) && msg.contains("wal.fsync"),
            "{msg}"
        );
        assert!(reg.io_error("unknown.site").is_ok());
    }

    #[test]
    fn profile_spec_grammar_parses_and_rejects_loudly() {
        let p = FaultProfile::parse(
            "seed=42; server.drop=0.2:max=4 ;server.latency=1:ms=2;wal.fsync=1:every=2",
        )
        .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(
            p.sites["server.drop"],
            SiteConfig::with_probability(0.2).max_fires(4)
        );
        assert_eq!(
            p.sites["server.latency"],
            SiteConfig::with_probability(1.0).delay_ms(2)
        );
        assert_eq!(p.sites["wal.fsync"], {
            let mut c = SiteConfig::with_probability(1.0);
            c.every = Some(2);
            c
        });

        assert_eq!(FaultProfile::parse("").unwrap(), FaultProfile::default());
        assert!(FaultProfile::parse("seed=x").is_err());
        assert!(FaultProfile::parse("s=1.5").is_err(), "probability > 1");
        assert!(FaultProfile::parse("s=0.2:bogus=1").is_err());
        assert!(FaultProfile::parse("s=0.2:every=0").is_err());
        assert!(FaultProfile::parse("no-equals").is_err());
        assert!(FaultProfile::parse("=0.2").is_err());
    }

    #[test]
    fn from_env_reads_set_unset_and_invalid() {
        // Distinct var names per case: set_var is process-global and tests run
        // in parallel, so never reuse a name with different values.
        std::env::set_var("QBE_FAULTS_TEST_SET", "seed=7;x=0.1");
        let p = FaultProfile::from_env("QBE_FAULTS_TEST_SET")
            .unwrap()
            .unwrap();
        assert_eq!(p.seed, 7);
        assert!(FaultProfile::from_env("QBE_FAULTS_TEST_UNSET")
            .unwrap()
            .is_none());
        std::env::set_var("QBE_FAULTS_TEST_BAD", "!!");
        assert!(FaultProfile::from_env("QBE_FAULTS_TEST_BAD").is_err());
    }
}
