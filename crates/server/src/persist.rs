//! Boot-time WAL replay: reconstruct every live session from its logged lifecycle.
//!
//! The learners are deterministic functions of (corpus, model, parameters, answer stream):
//! the corpus is a named recipe (or its snapshot), the parameters include the seed, and only
//! *accepted* answers are logged. Replay therefore re-runs the exact factory the original
//! `START` used ([`crate::server::build_learner`]) and feeds it the same answers in order —
//! `propose` each pending question (idempotent while unanswered), then `answer` — landing on
//! byte-identical learner state. The crash-recovery proptest below pins that: transcripts
//! continued after a simulated crash match uninterrupted ones byte for byte.
//!
//! Replay is strict: a record referencing an unknown session, corpus or model, or an answer
//! the rebuilt learner refuses, is a corrupt-log *startup error*, never a silently dropped
//! session.

use std::collections::BTreeMap;

use qbe_core::store::WalRecord;

use crate::corpus::{CorpusError, CorpusStore};
use crate::protocol::Model;
use crate::registry::SessionRegistry;
use crate::server::build_learner;

/// Accumulated lifecycle of one session while folding the log.
struct Draft {
    corpus: String,
    model: String,
    params: Vec<(String, String)>,
    answers: Vec<bool>,
    closed: bool,
}

/// Fold a recovered WAL into the registry: rebuild every session that was started and never
/// closed, under its original id. Returns how many sessions were reconstructed.
pub(crate) fn replay(
    records: &[WalRecord],
    store: &CorpusStore,
    registry: &SessionRegistry,
) -> Result<u64, String> {
    let mut drafts: BTreeMap<u64, Draft> = BTreeMap::new();
    for (i, record) in records.iter().enumerate() {
        match record {
            WalRecord::Start {
                session,
                corpus,
                model,
                params,
            } => {
                // A reused id (possible only through log corruption undetected by the
                // checksums) would shadow the earlier session; reject it loudly instead.
                if drafts.contains_key(session) {
                    return Err(format!("record {i}: duplicate START for session {session}"));
                }
                drafts.insert(
                    *session,
                    Draft {
                        corpus: corpus.clone(),
                        model: model.clone(),
                        params: params.clone(),
                        answers: Vec::new(),
                        closed: false,
                    },
                );
            }
            WalRecord::Answer { session, positive } => match drafts.get_mut(session) {
                Some(draft) if !draft.closed => draft.answers.push(*positive),
                Some(_) => {
                    return Err(format!("record {i}: ANSWER for closed session {session}"));
                }
                None => {
                    return Err(format!("record {i}: ANSWER for unknown session {session}"));
                }
            },
            WalRecord::Close { session } => match drafts.get_mut(session) {
                Some(draft) if !draft.closed => draft.closed = true,
                Some(_) => {
                    return Err(format!("record {i}: duplicate CLOSE for session {session}"));
                }
                None => {
                    return Err(format!("record {i}: CLOSE for unknown session {session}"));
                }
            },
        }
    }

    let mut recovered = 0u64;
    for (id, draft) in &drafts {
        if draft.closed {
            continue;
        }
        let corpus = store.get_or_load(&draft.corpus).map_err(|e| match e {
            CorpusError::Unknown => {
                format!("session {id} references unknown corpus {:?}", draft.corpus)
            }
            CorpusError::Load(why) => format!("session {id}: {why}"),
        })?;
        let model = Model::parse(&draft.model)
            .ok_or_else(|| format!("session {id} references unknown model {:?}", draft.model))?;
        let mut learner = build_learner(&corpus, model, &draft.params)
            .map_err(|why| format!("session {id} cannot be rebuilt: {why}"))?;
        for (n, positive) in draft.answers.iter().enumerate() {
            // Materialise the pending question the original session answered; only accepted
            // answers were logged, so a refusal here means the log and the factory disagree.
            if learner.propose().is_none() {
                return Err(format!(
                    "session {id}: log holds {} answers but the learner finished after {n}",
                    draft.answers.len()
                ));
            }
            learner
                .answer(*positive)
                .map_err(|e| format!("session {id}: replaying answer {n} failed: {e}"))?;
        }
        registry.open_with_id(*id, learner);
        recovered += 1;
    }
    Ok(recovered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(session: u64, model: &str, seed: u64) -> WalRecord {
        WalRecord::Start {
            session,
            corpus: "tiny".to_string(),
            model: model.to_string(),
            params: vec![("seed".to_string(), seed.to_string())],
        }
    }

    #[test]
    fn closed_sessions_are_not_recovered() {
        let store = CorpusStore::new();
        let registry = SessionRegistry::new();
        let records = vec![
            start(1, "twig", 3),
            WalRecord::Answer {
                session: 1,
                positive: true,
            },
            start(2, "join", 0),
            WalRecord::Close { session: 1 },
        ];
        let n = replay(&records, &store, &registry).unwrap();
        assert_eq!(n, 1, "only the still-open session comes back");
        assert_eq!(registry.active(), 1);
        assert_eq!(registry.with_session(2, |l| l.kind()), Some("join"));
        assert_eq!(registry.with_session(1, |l| l.kind()), None);
    }

    #[test]
    fn recovered_answers_are_applied() {
        let store = CorpusStore::new();
        let registry = SessionRegistry::new();
        let records = vec![
            start(5, "twig", 9),
            WalRecord::Answer {
                session: 5,
                positive: true,
            },
            WalRecord::Answer {
                session: 5,
                positive: false,
            },
        ];
        replay(&records, &store, &registry).unwrap();
        assert_eq!(registry.with_session(5, |l| l.questions()), Some(2));
    }

    #[test]
    fn malformed_logs_are_startup_errors() {
        let store = CorpusStore::new();
        let registry = SessionRegistry::new();
        let orphan_answer = vec![WalRecord::Answer {
            session: 9,
            positive: true,
        }];
        assert!(replay(&orphan_answer, &store, &registry)
            .unwrap_err()
            .contains("unknown session 9"));
        let orphan_close = vec![WalRecord::Close { session: 4 }];
        assert!(replay(&orphan_close, &store, &registry)
            .unwrap_err()
            .contains("unknown session 4"));
        let dup_start = vec![start(1, "twig", 0), start(1, "twig", 0)];
        assert!(replay(&dup_start, &store, &registry)
            .unwrap_err()
            .contains("duplicate START"));
        let bad_model = vec![WalRecord::Start {
            session: 1,
            corpus: "tiny".to_string(),
            model: "sparql".to_string(),
            params: vec![],
        }];
        assert!(replay(&bad_model, &store, &registry)
            .unwrap_err()
            .contains("unknown model"));
        let bad_corpus = vec![WalRecord::Start {
            session: 1,
            corpus: "gigantic".to_string(),
            model: "twig".to_string(),
            params: vec![],
        }];
        assert!(replay(&bad_corpus, &store, &registry)
            .unwrap_err()
            .contains("unknown corpus"));
    }
}

/// The crash-recovery differential: random sessions interrupted partway (the `Service` —
/// registry, WAL writer and all — is dropped with no `Close` logged, exactly what `kill -9`
/// leaves behind), recovered from snapshot + WAL by a second service, and continued. Every
/// reply after the resume must be byte-identical to an uninterrupted reference run.
#[cfg(test)]
mod crash_recovery {
    use proptest::prelude::*;
    use std::path::PathBuf;

    use crate::server::{respond, ProtoState, ServerConfig, Service};

    fn temp_dir() -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("qbe-server-crash-{}-{n}", std::process::id()))
    }

    fn reply(service: &Service, state: &mut ProtoState, line: &str) -> String {
        respond(service, state, line).0
    }

    /// Drive up to `rounds` ASK/ANSWER rounds, answering from `answers` (consuming one entry
    /// per question via `next`) and stopping at `+DONE`. Returns every reply verbatim.
    fn run_rounds(
        service: &Service,
        state: &mut ProtoState,
        rounds: usize,
        answers: &[bool],
        next: &mut usize,
    ) -> Vec<String> {
        let mut replies = Vec::new();
        for _ in 0..rounds {
            let ask = reply(service, state, "ASK");
            let is_question = ask.starts_with("+ASK");
            replies.push(ask);
            if !is_question {
                break;
            }
            let positive = answers[*next % answers.len()];
            *next += 1;
            replies.push(reply(
                service,
                state,
                if positive { "ANSWER yes" } else { "ANSWER no" },
            ));
        }
        replies
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn interrupted_sessions_continue_byte_identically(
            model_ix in 0usize..4,
            seed in 0u64..64,
            pre in 0usize..6,
            post in 1usize..6,
            answers in proptest::collection::vec(prop_oneof![Just(true), Just(false)], 16),
        ) {
            let model = ["twig", "path", "join", "graph"][model_ix];
            let start_line = format!("START {model} seed={seed}");
            let dir = temp_dir();
            let persisted = ServerConfig {
                data_dir: Some(dir.clone()),
                persist: true,
                ..ServerConfig::default()
            };

            // Original run: crashes (drops) after `pre` rounds, no QUIT, no Close record.
            let service_a = Service::open(&persisted).expect("fresh WAL opens");
            let mut state_a = ProtoState::new();
            prop_assert!(reply(&service_a, &mut state_a, "CORPUS tiny").starts_with("+OK"));
            prop_assert_eq!(
                reply(&service_a, &mut state_a, &start_line),
                format!("+OK session id=1 model={model}")
            );
            let mut next_a = 0usize;
            let replies_a = run_rounds(&service_a, &mut state_a, pre, &answers, &mut next_a);
            drop(state_a);
            drop(service_a); // the "crash": nothing closed, WAL tail synced on drop

            // Recovery run: boot from snapshot + WAL, RESUME, continue.
            let service_b = Service::open(&persisted).expect("recovery succeeds");
            let mut state_b = ProtoState::new();
            prop_assert_eq!(
                reply(&service_b, &mut state_b, "RESUME 1"),
                format!("+OK session id=1 model={model}")
            );
            let metrics = reply(&service_b, &mut state_b, "METRICS");
            prop_assert!(metrics.contains(" recovered=1"), "{}", metrics);
            let mut next_b = next_a;
            let replies_b = run_rounds(&service_b, &mut state_b, post, &answers, &mut next_b);
            let query_b = reply(&service_b, &mut state_b, "QUERY");
            let eval_b = reply(&service_b, &mut state_b, "EVAL");

            // Reference run: same corpus data (same snapshot), never interrupted.
            let reference_config = ServerConfig {
                data_dir: Some(dir.clone()),
                persist: false,
                ..ServerConfig::default()
            };
            let service_r = Service::open(&reference_config).expect("reference opens");
            let mut state_r = ProtoState::new();
            reply(&service_r, &mut state_r, "CORPUS tiny");
            reply(&service_r, &mut state_r, &start_line);
            let mut next_r = 0usize;
            let replies_r1 = run_rounds(&service_r, &mut state_r, pre, &answers, &mut next_r);
            let replies_r2 = run_rounds(&service_r, &mut state_r, post, &answers, &mut next_r);
            let query_r = reply(&service_r, &mut state_r, "QUERY");
            let eval_r = reply(&service_r, &mut state_r, "EVAL");

            prop_assert_eq!(replies_a, replies_r1, "pre-crash transcripts diverge");
            prop_assert_eq!(replies_b, replies_r2, "post-recovery transcripts diverge");
            prop_assert_eq!(next_b, next_r, "answer consumption diverges");
            prop_assert_eq!(query_b, query_r);
            prop_assert_eq!(eval_b, eval_r);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
