//! Fault-schedule differential: noisy-oracle sessions driven through the protocol core with
//! deterministic injected connection drops must (a) still converge to the goal query —
//! majority voting absorbs the label noise, `RESUME` re-attachment absorbs the drops — and
//! (b) produce *byte-identical* transcripts when replayed under the same seed, which is
//! what makes any failing schedule a reproducible bug report.
//!
//! This lives in-crate (not `tests/`) because it drives [`respond`] directly: one simulated
//! client per case, no sockets, so 256 proptest cases across all four wire models stay
//! cheap. The end-to-end TCP variant (real connections, real drops, the resilient client)
//! is `tests/resilience.rs`.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qbe_core::faults::{FaultProfile, FaultRegistry, SiteConfig};
use qbe_core::votes_for_session;

use qbe_core::graph::QueryClass;

use crate::client::{local_corpus, Goal, GoalEvaluator};
use crate::protocol::{field_value, parse_fields_line};
use crate::server::{respond, ProtoState, ServerConfig, Service, FAULT_SITE_DROP};

/// The four wire models with a fixed goal and `START` line each (the fault/noise seed is
/// the only thing that varies across cases, so the clean reference is cacheable per model).
fn model_case(model_ix: usize) -> (Goal, &'static str) {
    match model_ix {
        0 => (Goal::Twig("//person/name".to_string()), "START twig"),
        1 => (
            Goal::PathRoadType("highway".to_string()),
            "START path to=city3",
        ),
        2 => (Goal::Join, "START join"),
        _ => (Goal::GraphPairs(QueryClass::Rpq), "START graph class=rpq"),
    }
}

/// What one simulated noisy run observed.
struct NoisyRun {
    /// Every request/reply exchanged, drops and `RESUME`s included, verbatim.
    transcript: Vec<String>,
    hypothesis: String,
    consistent: bool,
    /// `retries=` / `reasks=` / `faults_injected=` from the final `METRICS`.
    retries: u64,
    reasks: u64,
    faults_injected: u64,
}

/// One request through the "wire": the drop decision is made before [`respond`] executes
/// and applied after, exactly as the real engines do — the operation lands, the reply is
/// lost. On a drop the simulated client immediately reconnects and `RESUME`s; the lost
/// reply comes back as the `Err` so `ANSWER` callers can disambiguate.
fn exchange(
    service: &Service,
    state: &mut ProtoState,
    session: Option<u64>,
    transcript: &mut Vec<String>,
    line: &str,
) -> Result<String, String> {
    let dropped = service.injected_drop(line);
    let (reply, _quit) = respond(service, state, line);
    if !dropped {
        transcript.push(format!("C: {line} / S: {reply}"));
        return Ok(reply);
    }
    transcript.push(format!("C: {line} / S: <dropped>"));
    state.teardown(service); // fault profile attached: detaches, stays resumable
    *state = ProtoState::new();
    let resume = format!("RESUME {}", session.expect("drops fire mid-session only"));
    let (reattach, _) = respond(service, state, &resume);
    transcript.push(format!("C: {resume} / S: {reattach}"));
    assert!(
        reattach.starts_with("+OK session"),
        "re-attach after injected drop failed: {reattach}"
    );
    Err(reply)
}

/// `ASK` until a reply actually arrives (each lost one is retried post-`RESUME`; the server
/// repeats the pending question, counting a reask).
fn ask_served(
    service: &Service,
    state: &mut ProtoState,
    session: u64,
    transcript: &mut Vec<String>,
    safety: &mut usize,
) -> String {
    loop {
        *safety = safety.checked_sub(1).expect("fault schedule never settled");
        if let Ok(reply) = exchange(service, state, Some(session), transcript, "ASK") {
            return reply;
        }
    }
}

/// Drive one complete noisy session against a fresh in-process service: injected drops at
/// `drop_p` per `ASK`/`ANSWER`, labels flipped at `flip_p` per vote, majority over a vote
/// count chosen so the whole session errs with probability < 1e-6 (keeps all 256 cases
/// deterministic *and* correct).
fn run_noisy(model_ix: usize, drop_p: f64, flip_p: f64, seed: u64) -> NoisyRun {
    let (goal, start_line) = model_case(model_ix);
    let profile =
        FaultProfile::new(seed).site(FAULT_SITE_DROP, SiteConfig::with_probability(drop_p));
    let faults = FaultRegistry::shared(profile);
    let config = ServerConfig {
        faults: Some(faults),
        ..ServerConfig::default()
    };
    let service = Service::open(&config).expect("in-memory service opens");
    let local = local_corpus("tiny").expect("tiny corpus builds");
    let mut evaluator = GoalEvaluator::new(&local, &goal).expect("goal evaluates");

    let mut state = ProtoState::new();
    let mut transcript = Vec::new();
    let mut safety = 10_000usize;
    let corpus_reply = exchange(&service, &mut state, None, &mut transcript, "CORPUS tiny")
        .expect("CORPUS is not a droppable line");
    assert!(corpus_reply.starts_with("+OK corpus"));
    let start_reply = exchange(&service, &mut state, None, &mut transcript, start_line)
        .expect("START is not a droppable line");
    let session: u64 = start_reply
        .strip_prefix("+OK session id=")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|id| id.parse().ok())
        .expect("START replies with a session id");

    let votes = votes_for_session(flip_p, 1e-6, 64);
    let mut flip_rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15) ^ 0x5eed);
    let mut carried: Option<String> = None;
    let consistent = loop {
        safety = safety.checked_sub(1).expect("fault schedule never settled");
        let ask = match carried.take() {
            Some(reply) => reply,
            None => ask_served(&service, &mut state, session, &mut transcript, &mut safety),
        };
        if let Some(done) = ask.strip_prefix("+DONE ") {
            let fields = parse_fields_line(done).expect("DONE fields parse");
            break field_value(&fields, "consistent") == Some("true");
        }
        let fields = parse_fields_line(ask.strip_prefix("+ASK ").expect("question line"))
            .expect("ASK fields parse");
        let truth = evaluator.label(&fields).expect("goal labels the question");
        let yes = (0..votes)
            .filter(|_| truth != (flip_p > 0.0 && flip_rng.gen_bool(flip_p)))
            .count();
        let answer = if 2 * yes > votes {
            "ANSWER yes"
        } else {
            "ANSWER no"
        };
        loop {
            safety = safety.checked_sub(1).expect("fault schedule never settled");
            match exchange(&service, &mut state, Some(session), &mut transcript, answer) {
                Ok(_) => break,
                Err(_lost) => {
                    // Did the lost ANSWER land? Probe: an unchanged pending question means
                    // no (resend); anything else means yes (carry the probe forward).
                    let probe =
                        ask_served(&service, &mut state, session, &mut transcript, &mut safety);
                    if probe != ask {
                        carried = Some(probe);
                        break;
                    }
                }
            }
        }
    };

    let hypothesis = exchange(
        &service,
        &mut state,
        Some(session),
        &mut transcript,
        "QUERY",
    )
    .expect("QUERY is not a droppable line");
    // METRICS stays out of the transcript: its throughput_per_s field is wall-clock, the
    // one legitimately non-deterministic reply in the protocol.
    let (metrics_line, _) = respond(&service, &mut state, "METRICS");
    let metrics = parse_fields_line(metrics_line.strip_prefix("+METRICS ").unwrap()).unwrap();
    let counter = |key: &str| -> u64 {
        field_value(&metrics, key)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("METRICS carries {key}="))
    };
    NoisyRun {
        transcript,
        hypothesis,
        consistent,
        retries: counter("retries"),
        reasks: counter("reasks"),
        faults_injected: counter("faults_injected"),
    }
}

/// The hypothesis a clean (no drops, no noise) run learns, cached per model: the goal
/// query every noisy schedule must still converge to.
fn clean_hypothesis(model_ix: usize) -> String {
    static CACHE: OnceLock<Mutex<HashMap<usize, String>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("reference cache lock never poisoned");
    map.entry(model_ix)
        .or_insert_with(|| {
            let clean = run_noisy(model_ix, 0.0, 0.0, 0);
            assert!(clean.consistent, "the clean reference run is consistent");
            assert_eq!(clean.faults_injected, 0);
            clean.hypothesis
        })
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn noisy_faulty_schedules_converge_and_replay_byte_identically(
        model_ix in 0usize..4,
        seed in 0u64..1024,
        drop_ix in 0usize..4,
        flip_ix in 0usize..3,
    ) {
        let drop_p = [0.0, 0.1, 0.2, 0.3][drop_ix];
        let flip_p = [0.0, 0.1, 0.2][flip_ix];

        let run = run_noisy(model_ix, drop_p, flip_p, seed);

        // Convergence: drops and flips notwithstanding, the session completes with
        // consistent labels and learns exactly what the undisturbed session learns.
        prop_assert!(run.consistent, "labels stayed consistent under the schedule");
        prop_assert_eq!(&run.hypothesis, &clean_hypothesis(model_ix));

        // The counters reconcile with the transcript: every injected drop forced one
        // RESUME re-attach, and a drop on ASK (reply lost, question re-served) or a
        // landed-but-lost ANSWER probe shows up as a reask.
        let resumes = run.transcript.iter().filter(|l| l.starts_with("C: RESUME")).count() as u64;
        let drops = run.transcript.iter().filter(|l| l.ends_with("<dropped>")).count() as u64;
        prop_assert_eq!(run.retries, resumes);
        prop_assert_eq!(run.faults_injected, drops);
        if drop_p == 0.0 {
            prop_assert_eq!(run.faults_injected, 0);
            prop_assert_eq!(run.reasks, 0);
        }

        // Determinism: the same seed replays the same schedule — byte-identical
        // transcript, a reproducible bug report for any schedule that ever fails.
        let replay = run_noisy(model_ix, drop_p, flip_p, seed);
        prop_assert_eq!(run.transcript, replay.transcript);
    }
}
