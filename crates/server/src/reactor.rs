//! The event-driven engine: one reactor thread owns every socket, a readiness loop
//! ([`crate::poll::Poller`]) tells it which are ready, and complete request lines are handed
//! to the worker pool ([`crate::workers`]). Ten thousand idle connections are ten thousand
//! registered fds and zero threads; a slow session step occupies one worker, not an OS thread
//! per connection.
//!
//! Per-connection state is a pair of buffers (`rbuf` for incoming bytes, `wbuf` for pending
//! replies) plus a [`Phase`]:
//!
//! * `Ready(state)` — no line in flight; readable bytes are parsed and the next complete line
//!   dispatched (protocol state moves into the job — ownership is the synchronisation);
//! * `Busy` — one line is with a worker; read interest is off, which is exactly per-connection
//!   backpressure: a client cannot queue unbounded work by pipelining;
//! * `Closing(state)` — a goodbye or error reply is flushing; the connection closes when the
//!   buffer drains (or its deadline passes, for a peer that never reads).
//!
//! The same defensive behaviours as the blocking engine, by construction rather than by
//! thread-local timeouts:
//!
//! * **total per-line deadline** — each connection carries an absolute deadline, re-armed only
//!   when a full line completes; a trickling client is swept out regardless of how often its
//!   single bytes arrive;
//! * **nonblocking capacity rejection** — at-capacity accepts get one best-effort write on the
//!   (already nonblocking) socket and are dropped, never touching the readiness loop's pace;
//! * **accept backoff** — transient `accept` failures (EMFILE et al.) deregister the listener
//!   for a bounded backoff instead of busy-spinning a level-triggered readiness event;
//! * **rate limiting + load shedding** — `ASK`/`EVAL` cost a token from the connection's
//!   bucket and are shed with a retryable `-ERR` when the worker queue is saturated, while
//!   `ANSWER`/`QUIT` always pass so throttled clients can still wind down cleanly.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::poll::{waker_pair, Poller, WakeReader, Waker};
use crate::protocol::MAX_LINE_BYTES;
use crate::server::{
    classify_accept_error, AcceptBackoff, AcceptError, ProtoState, RateLimit, ServerConfig, Service,
};
use crate::workers::{Completion, CompletionQueue, Job, WorkerPool};

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// How many bytes one readable event may pull off a socket before yielding to the next event
/// — fairness between one chatty connection and everyone else.
const READ_QUANTUM: usize = 64 * 1024;

/// Handle to a running reactor; owned by [`crate::server::ServerHandle`].
pub(crate) struct ReactorHandle {
    active: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    waker: Waker,
    thread: Option<JoinHandle<()>>,
}

impl ReactorHandle {
    pub(crate) fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    pub(crate) fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    pub(crate) fn join(&mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Start the reactor thread serving `listener` under `config`, against an already-opened
/// (and, with persistence, already-recovered) `service`.
pub(crate) fn spawn_reactor(
    listener: TcpListener,
    config: ServerConfig,
    service: Arc<Service>,
) -> io::Result<ReactorHandle> {
    listener.set_nonblocking(true)?;
    let (wake_reader, waker) = waker_pair()?;
    let mut poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), LISTENER_TOKEN, true, false)?;
    poller.register(wake_reader.raw_fd(), WAKER_TOKEN, true, false)?;

    let pool = WorkerPool::spawn(config.workers, service.clone(), waker.clone());
    let completions = pool.completions();

    let active = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut reactor = Reactor {
        poller,
        listener,
        listener_registered: true,
        accept_resume: None,
        backoff: AcceptBackoff::new(),
        wake_reader,
        pool,
        completions,
        service,
        config,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        active: active.clone(),
        stop: stop.clone(),
        next_deadline: None,
    };
    let thread = std::thread::Builder::new()
        .name("qbe-server-reactor".to_string())
        .spawn(move || reactor.run())?;
    Ok(ReactorHandle {
        active,
        stop,
        waker,
        thread: Some(thread),
    })
}

/// Token-bucket state of one connection.
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

impl Bucket {
    fn full(limit: &RateLimit) -> Bucket {
        Bucket {
            tokens: limit.burst as f64,
            refilled: Instant::now(),
        }
    }

    /// Refill by elapsed time, then try to spend one token.
    fn take(&mut self, limit: &RateLimit) -> bool {
        let now = Instant::now();
        let elapsed = now.saturating_duration_since(self.refilled).as_secs_f64();
        self.tokens = (self.tokens + elapsed * limit.per_sec).min(limit.burst as f64);
        self.refilled = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

enum Phase {
    /// No line in flight; `ProtoState` lives here.
    Ready(ProtoState),
    /// One line checked out to a worker (the state travels with it).
    Busy,
    /// Final reply flushing; close when `wbuf` drains. The state is `None` only while the
    /// session state is still out with a worker.
    Closing(Option<ProtoState>),
}

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    woff: usize,
    phase: Phase,
    /// Absolute deadline: for `Ready`, the whole next line must complete by then; for
    /// `Closing`, the pending reply must flush by then. `None` while `Busy` (a session step's
    /// duration is the worker's business, not the client's fault).
    deadline: Option<Instant>,
    bucket: Option<Bucket>,
    /// Interest currently registered in the poller, to skip no-op `modify` calls.
    registered: (bool, bool),
}

impl Conn {
    fn pending_write(&self) -> bool {
        self.woff < self.wbuf.len()
    }

    fn queue_line(&mut self, line: &str) {
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
    }
}

struct Reactor {
    poller: Poller,
    listener: TcpListener,
    listener_registered: bool,
    /// When accept is paused after a transient error, the instant to resume at.
    accept_resume: Option<Instant>,
    backoff: AcceptBackoff,
    wake_reader: WakeReader,
    pool: WorkerPool,
    completions: CompletionQueue,
    service: Arc<Service>,
    config: ServerConfig,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    active: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    /// Cached minimum over all connection deadlines; sweeps run only when it passes.
    next_deadline: Option<Instant>,
}

/// Is this request line a sheddable verb (`ASK`/`EVAL`)? Sheds and rate limits apply to the
/// expensive, safely-retryable requests; `ANSWER`/`QUIT` and the setup commands always pass.
fn sheddable(line: &str) -> bool {
    let verb = line.split_ascii_whitespace().next().unwrap_or("");
    verb.eq_ignore_ascii_case("ASK") || verb.eq_ignore_ascii_case("EVAL")
}

impl Reactor {
    fn run(&mut self) {
        let mut events = Vec::with_capacity(1024);
        while !self.stop.load(Ordering::SeqCst) {
            let now = Instant::now();
            self.maybe_resume_accept(now);
            let timeout = [self.next_deadline, self.accept_resume]
                .into_iter()
                .flatten()
                .min()
                .map(|d| d.saturating_duration_since(now));
            events.clear();
            if self.poller.wait(timeout, &mut events).is_err() {
                break; // a broken poller is unrecoverable; quiesce below
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let mut accept_ready = false;
            for ev in &events {
                match ev.token {
                    LISTENER_TOKEN => accept_ready = true,
                    WAKER_TOKEN => self.wake_reader.drain(),
                    token => {
                        if ev.readable {
                            self.handle_readable(token);
                        }
                        if ev.writable {
                            self.handle_writable(token);
                        }
                    }
                }
            }
            self.drain_completions();
            if accept_ready {
                self.accept_burst();
            }
            self.sweep_deadlines();
        }
        self.quiesce();
    }

    /// Graceful shutdown: let in-flight work finish, report still-open sessions as abandoned,
    /// close every socket.
    fn quiesce(&mut self) {
        // Sessions still open here are being preserved across the restart (with persistence
        // on), not abandoned by their clients: suppress WAL Close records from teardown.
        self.service.preserve_sessions();
        if self.listener_registered {
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            self.listener_registered = false;
        }
        // Joining the pool completes all submitted jobs; their completions are queued.
        self.pool.shutdown();
        let drained: Vec<Completion> = self
            .completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for completion in drained {
            let mut state = completion.state;
            state.teardown(&self.service);
        }
        let conns: Vec<u64> = self.conns.keys().copied().collect();
        for token in conns {
            self.close_conn(token);
        }
        // Every appender (workers, teardown) is done: make the WAL tail durable so no
        // record rides the OS cache across the shutdown.
        self.service.flush_wal();
    }

    // ---- accept path -------------------------------------------------------------------

    fn maybe_resume_accept(&mut self, now: Instant) {
        if let Some(resume) = self.accept_resume {
            if now >= resume {
                self.accept_resume = None;
                if !self.listener_registered
                    && self
                        .poller
                        .register(self.listener.as_raw_fd(), LISTENER_TOKEN, true, false)
                        .is_ok()
                {
                    self.listener_registered = true;
                }
                // A connection may have arrived during the pause; the level-triggered poller
                // reports the listener readable on the next wait.
            }
        }
    }

    /// Pause accepting for `delay`: with a level-triggered poller, an un-accepted pending
    /// connection (or a persistently failing accept) would otherwise turn every `wait` into a
    /// busy spin. Deregistering the listener is the event-loop analogue of the blocking
    /// engine's backoff sleep — without stopping service to established connections.
    fn pause_accept(&mut self, delay: Duration) {
        if self.listener_registered {
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            self.listener_registered = false;
        }
        self.accept_resume = Some(Instant::now() + delay);
    }

    fn accept_burst(&mut self) {
        if self.accept_resume.is_some() {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.backoff.reset();
                    self.admit(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => match classify_accept_error(&e) {
                    AcceptError::Transient => {
                        let delay = self.backoff.next_delay();
                        self.pause_accept(delay);
                        break;
                    }
                    AcceptError::Fatal => {
                        // The listener is broken for good; keep serving established
                        // connections.
                        if self.listener_registered {
                            let _ = self.poller.deregister(self.listener.as_raw_fd());
                            self.listener_registered = false;
                        }
                        break;
                    }
                },
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        let _ = stream.set_nonblocking(true);
        let _ = stream.set_nodelay(true);
        if self.active.load(Ordering::SeqCst) >= self.config.max_connections {
            self.service.registry.note_rejected();
            // Best-effort, nonblocking by construction: one short line into a fresh socket's
            // empty send buffer. Dropping the stream closes it.
            let mut stream = stream;
            let _ = stream.write(b"-ERR server at capacity, retry later\n");
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        let mut conn = Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            woff: 0,
            phase: Phase::Ready(ProtoState::new()),
            deadline: Some(Instant::now() + self.config.read_timeout),
            bucket: self.config.rate_limit.as_ref().map(Bucket::full),
            registered: (false, false),
        };
        conn.queue_line("+OK qbe-server ready");
        let _ = flush_wbuf(&mut conn); // optimistic: the greeting usually fits at once
        let interest = (true, conn.pending_write());
        if self
            .poller
            .register(conn.stream.as_raw_fd(), token, interest.0, interest.1)
            .is_err()
        {
            return; // dropped ⇒ closed; the client sees EOF after the greeting
        }
        conn.registered = interest;
        self.bump_deadline(conn.deadline);
        self.active.fetch_add(1, Ordering::SeqCst);
        self.conns.insert(token, conn);
    }

    // ---- connection I/O ----------------------------------------------------------------

    fn handle_readable(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if matches!(conn.phase, Phase::Closing(_)) {
            // Only the goodbye flush matters now; incoming bytes are irrelevant.
            return;
        }
        let mut chunk = [0u8; 4096];
        let mut taken = 0;
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    taken += n;
                    if taken >= READ_QUANTUM {
                        break; // stay fair; level-triggered readiness re-reports the rest
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.process_rbuf(token);
        self.flush_and_update(token);
    }

    fn handle_writable(&mut self, token: u64) {
        self.flush_and_update(token);
    }

    /// Parse complete lines out of `rbuf` while the connection is `Ready`: shed or throttle
    /// sheddable verbs inline, dispatch at most one line to the pool (further pipelined lines
    /// wait for its completion — that is the per-connection backpressure).
    fn process_rbuf(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !matches!(conn.phase, Phase::Ready(_)) {
                return;
            }
            let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') else {
                // Mid-line the cap allows one extra byte for CRLF framing, as in
                // `read_line_bounded`.
                if conn.rbuf.len() > MAX_LINE_BYTES + 1 {
                    self.error_close(
                        token,
                        &format!("-ERR line exceeds {MAX_LINE_BYTES} bytes, closing"),
                    );
                }
                return;
            };
            let mut line_bytes: Vec<u8> = conn.rbuf.drain(..=pos).collect();
            line_bytes.pop(); // the \n
            if line_bytes.last() == Some(&b'\r') {
                line_bytes.pop();
            }
            if line_bytes.len() > MAX_LINE_BYTES {
                self.error_close(
                    token,
                    &format!("-ERR line exceeds {MAX_LINE_BYTES} bytes, closing"),
                );
                return;
            }
            let line = String::from_utf8_lossy(&line_bytes).into_owned();
            if sheddable(&line) {
                if self.pool.depth() >= self.config.shed_queue_depth {
                    self.service.registry.note_shed();
                    conn.queue_line("-ERR overloaded, retry later");
                    continue;
                }
                if let Some(limit) = self.config.rate_limit {
                    let bucket = conn.bucket.get_or_insert_with(|| Bucket::full(&limit));
                    if !bucket.take(&limit) {
                        self.service.registry.note_shed();
                        conn.queue_line("-ERR rate limit exceeded, retry later");
                        continue;
                    }
                }
            }
            // Check the protocol state out to the worker; Busy suspends both reads and the
            // idle deadline.
            let Phase::Ready(state) = std::mem::replace(&mut conn.phase, Phase::Busy) else {
                unreachable!("phase checked Ready above");
            };
            conn.deadline = None;
            if let Err(job) = self.pool.submit(Job {
                conn: token,
                line,
                state,
            }) {
                // Pool already shut down (we are quiescing): hand the state back and close.
                let mut state = job.state;
                state.teardown(&self.service);
                self.close_conn(token);
            }
            return;
        }
    }

    fn drain_completions(&mut self) {
        loop {
            let completion = self
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front();
            let Some(Completion {
                conn: token,
                reply,
                quit,
                state,
                dropped,
            }) = completion
            else {
                return;
            };
            if dropped {
                // Injected fault: the operation executed, but the reply is discarded and
                // the socket closed. Detach (don't close) the session — the client's next
                // connection RESUMEs it. The connection is Busy here, so close_conn won't
                // touch the session either.
                let mut state = state;
                state.detach();
                self.close_conn(token);
                continue;
            }
            let Some(conn) = self.conns.get_mut(&token) else {
                // Connection died while its line was in flight; the session still must be
                // torn down (closed — or detached under a fault profile).
                let mut state = state;
                state.teardown(&self.service);
                continue;
            };
            conn.queue_line(&reply);
            if quit || matches!(conn.phase, Phase::Closing(_)) {
                conn.phase = Phase::Closing(Some(state));
                conn.deadline = Some(Instant::now() + self.config.write_timeout);
            } else {
                conn.phase = Phase::Ready(state);
                conn.deadline = Some(Instant::now() + self.config.read_timeout);
            }
            self.bump_deadline(self.conns[&token].deadline);
            // A pipelined next line may already be buffered.
            self.process_rbuf(token);
            self.flush_and_update(token);
        }
    }

    // ---- buffers, deadlines, teardown --------------------------------------------------

    /// Flush what the socket will take, then reconcile poller interest with the connection's
    /// phase and buffers; close `Closing` connections whose goodbye has drained.
    fn flush_and_update(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if flush_wbuf(conn).is_err() {
            self.close_conn(token);
            return;
        }
        if matches!(conn.phase, Phase::Closing(_)) && !conn.pending_write() {
            self.close_conn(token);
            return;
        }
        let want = (matches!(conn.phase, Phase::Ready(_)), conn.pending_write());
        if want != conn.registered
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want.0, want.1)
                .is_ok()
        {
            conn.registered = want;
        }
    }

    /// Queue a final error line and transition to `Closing`; the connection closes when the
    /// line flushes (or `write_timeout` passes for a peer that refuses to read it).
    fn error_close(&mut self, token: u64, message: &str) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.queue_line(message);
        let state = match std::mem::replace(&mut conn.phase, Phase::Busy) {
            Phase::Ready(state) => Some(state),
            Phase::Closing(state) => state,
            Phase::Busy => None,
        };
        conn.phase = Phase::Closing(state);
        conn.deadline = Some(Instant::now() + self.config.write_timeout);
        self.bump_deadline(self.conns[&token].deadline);
        self.flush_and_update(token);
    }

    fn close_conn(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        match &mut conn.phase {
            Phase::Ready(state) | Phase::Closing(Some(state)) => {
                state.teardown(&self.service);
            }
            // Busy / Closing(None): the state is out with a worker; the completion for a
            // vanished connection closes the session in `drain_completions`/`quiesce`.
            _ => {}
        }
        self.active.fetch_sub(1, Ordering::SeqCst);
        // conn drops here ⇒ socket closes
    }

    fn bump_deadline(&mut self, deadline: Option<Instant>) {
        if let Some(d) = deadline {
            self.next_deadline = Some(match self.next_deadline {
                Some(current) => current.min(d),
                None => d,
            });
        }
    }

    /// Deadline bookkeeping is lazy: connections are only scanned when the cached minimum
    /// passes, so ten thousand idle-but-alive connections cost nothing per event-loop turn.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        match self.next_deadline {
            Some(d) if d <= now => {}
            _ => return,
        }
        let expired: Vec<(u64, bool)> = self
            .conns
            .iter()
            .filter_map(|(&token, conn)| match conn.deadline {
                Some(d) if d <= now => Some((token, matches!(conn.phase, Phase::Closing(_)))),
                _ => None,
            })
            .collect();
        for (token, closing) in expired {
            if closing {
                // The goodbye never flushed; the peer is gone or not reading. Just close.
                self.close_conn(token);
            } else {
                self.service.registry.note_timeout();
                self.error_close(token, "-ERR idle timeout, closing");
            }
        }
        self.next_deadline = self.conns.values().filter_map(|c| c.deadline).min();
    }
}

/// Write as much of `wbuf` as the socket accepts right now. `Ok` means "made progress or
/// would block"; `Err` means the connection is dead.
fn flush_wbuf(conn: &mut Conn) -> io::Result<()> {
    while conn.woff < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.woff..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "peer gone")),
            Ok(n) => conn.woff += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.woff == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.woff = 0;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheddable_verbs_are_the_expensive_retryable_ones() {
        assert!(sheddable("ASK"));
        assert!(sheddable("ask"));
        assert!(sheddable("EVAL"));
        assert!(sheddable("  eval  "));
        assert!(!sheddable("ANSWER yes"));
        assert!(!sheddable("QUIT"));
        assert!(!sheddable("START twig"));
        assert!(!sheddable(""));
    }

    #[test]
    fn token_bucket_refills_at_the_configured_rate() {
        let limit = RateLimit {
            burst: 2,
            per_sec: 1000.0,
        };
        let mut bucket = Bucket::full(&limit);
        assert!(bucket.take(&limit));
        assert!(bucket.take(&limit));
        // Drained. An immediate third take only succeeds if ≥1 ms elapsed (refill ≥ 1 token
        // at 1000/s) — force the deterministic branch by zeroing the clock credit.
        bucket.refilled = Instant::now();
        bucket.tokens = 0.0;
        assert!(!bucket.take(&limit));
        std::thread::sleep(Duration::from_millis(5));
        assert!(bucket.take(&limit), "elapsed time refills the bucket");
        // The bucket never overfills past its burst.
        std::thread::sleep(Duration::from_millis(10));
        bucket.take(&limit);
        assert!(bucket.tokens <= limit.burst as f64);
    }
}
