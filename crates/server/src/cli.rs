//! Entry point of the `qbe-server` binary (the thin `main` lives in `qbe-bench` next to the
//! other experiment binaries so the shared smoke harness can exercise it).
//!
//! Two modes:
//!
//! * `qbe-server [--addr HOST:PORT]` — serve until killed (default `127.0.0.1:7878`);
//! * `qbe-server --smoke` — self-check: bind an ephemeral port, run one simulated client
//!   session per model over loopback, print the learned queries and the `METRICS` line, shut
//!   down, exit 0. This is what CI runs on every push.

use crate::client::{drive_goal_session, Client, Goal};
use crate::server::{spawn, ServerConfig};

/// Run the CLI. Returns the process exit code.
pub fn run(args: impl Iterator<Item = String>) -> i32 {
    let args: Vec<String> = args.collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var_os("QBE_BENCH_SMOKE").is_some_and(|v| v != "0");
    if smoke {
        return run_smoke();
    }
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|ix| args.get(ix + 1))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let handle = match spawn(ServerConfig {
        addr: addr.clone(),
        ..Default::default()
    }) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("qbe-server: cannot bind {addr}: {e}");
            return 1;
        }
    };
    println!(
        "qbe-server listening on {} (models twig,path,join; corpora {})",
        handle.addr(),
        crate::corpus::CORPUS_NAMES.join(",")
    );
    handle.join();
    0
}

fn run_smoke() -> i32 {
    let handle = match spawn(ServerConfig::default()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("qbe-server --smoke: cannot bind: {e}");
            return 1;
        }
    };
    let addr = handle.addr();
    println!("qbe-server --smoke on {addr}");
    println!(
        "{:<28} {:>10} {:>12} {:>6}  learned",
        "session", "questions", "answer-set", "ok"
    );
    type SmokeSession = (&'static str, Goal, Vec<(&'static str, &'static str)>);
    let sessions: [SmokeSession; 3] = [
        (
            "twig //person/name",
            Goal::Twig("//person/name".to_string()),
            vec![("seed", "7")],
        ),
        (
            "path type=highway",
            Goal::PathRoadType("highway".to_string()),
            vec![("to", "city3")],
        ),
        ("join demo", Goal::Join, vec![]),
    ];
    let mut failures = 0;
    for (label, goal, params) in sessions {
        match drive_goal_session(addr, "tiny", &goal, &params) {
            Ok(outcome) => {
                println!(
                    "{:<28} {:>10} {:>12} {:>6}  {}",
                    label,
                    outcome.questions,
                    outcome.answer_set_size,
                    if outcome.consistent { "yes" } else { "NO" },
                    outcome.hypothesis
                );
                if !outcome.consistent {
                    failures += 1;
                }
            }
            Err(e) => {
                println!("{label:<28} FAILED: {e}");
                failures += 1;
            }
        }
    }
    match Client::connect(addr).and_then(|mut c| c.metrics()) {
        Ok(metrics) => {
            let line: Vec<String> = metrics.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!("metrics: {}", line.join(" "));
            let sessions_served = crate::protocol::field_value(&metrics, "sessions")
                .and_then(|v| v.parse::<usize>().ok());
            if sessions_served != Some(3) {
                eprintln!("expected 3 served sessions, metrics say {sessions_served:?}");
                failures += 1;
            }
        }
        Err(e) => {
            eprintln!("METRICS failed: {e}");
            failures += 1;
        }
    }
    handle.shutdown();
    if failures == 0 {
        println!("smoke ok: 3 sessions learned over loopback");
        0
    } else {
        eprintln!("smoke failed: {failures} problem(s)");
        1
    }
}
