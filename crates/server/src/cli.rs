//! Entry point of the `qbe-server` binary (the thin `main` lives in `qbe-bench` next to the
//! other experiment binaries so the shared smoke harness can exercise it).
//!
//! Two modes:
//!
//! * `qbe-server [--addr HOST:PORT] [--engine event|blocking] [--workers N]
//!   [--max-connections N] [--rate-limit BURST/PER_SEC] [--data-dir DIR] [--persist]
//!   [--faults SPEC]` —
//!   serve until killed (default `127.0.0.1:7878`, event engine). `--data-dir` caches corpus
//!   snapshots on disk; `--persist` additionally write-ahead-logs sessions there and recovers
//!   them on the next boot; `--faults` attaches a deterministic fault-injection profile
//!   (e.g. `seed=7;server.drop=0.05;wal.fsync=0.1:max=2` — see `qbe_core::faults`);
//! * `qbe-server --smoke` — self-check: bind an ephemeral port, run one simulated client
//!   session per model over loopback on the default (event) engine, cross-check one session
//!   on the blocking engine, print the learned queries and the `METRICS` line, shut down,
//!   exit 0. This is what CI runs on every push.

use crate::client::{drive_goal_session, Client, Goal};
use crate::server::{spawn, Engine, RateLimit, ServerConfig};

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|ix| args.get(ix + 1))
}

/// Parse the serving flags shared by the serve-forever mode (and, for the config shape, the
/// bench harness): returns the config or an error message naming the bad flag.
fn parse_config(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: flag_value(args, "--addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        ..Default::default()
    };
    if let Some(name) = flag_value(args, "--engine") {
        config.engine = Engine::parse(name)
            .ok_or_else(|| format!("--engine must be event|blocking, got {name:?}"))?;
    }
    if let Some(n) = flag_value(args, "--workers") {
        config.workers = n
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("--workers must be a positive integer, got {n:?}"))?;
    }
    if let Some(n) = flag_value(args, "--max-connections") {
        config.max_connections =
            n.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                format!("--max-connections must be a positive integer, got {n:?}")
            })?;
    }
    if let Some(spec) = flag_value(args, "--rate-limit") {
        let (burst, per_sec) = spec
            .split_once('/')
            .and_then(|(b, r)| Some((b.parse::<u32>().ok()?, r.parse::<f64>().ok()?)))
            .filter(|&(b, r)| b > 0 && r > 0.0)
            .ok_or_else(|| {
                format!("--rate-limit must be BURST/PER_SEC (e.g. 20/5), got {spec:?}")
            })?;
        config.rate_limit = Some(RateLimit { burst, per_sec });
    }
    if let Some(dir) = flag_value(args, "--data-dir") {
        config.data_dir = Some(std::path::PathBuf::from(dir));
    }
    if args.iter().any(|a| a == "--persist") {
        if config.data_dir.is_none() {
            return Err("--persist requires --data-dir".to_string());
        }
        config.persist = true;
    }
    if let Some(spec) = flag_value(args, "--faults") {
        let profile = qbe_core::faults::FaultProfile::parse(spec)
            .map_err(|why| format!("--faults: {why} (spec {spec:?})"))?;
        config.faults = Some(qbe_core::faults::FaultRegistry::shared(profile));
    }
    Ok(config)
}

/// Run the CLI. Returns the process exit code.
pub fn run(args: impl Iterator<Item = String>) -> i32 {
    let args: Vec<String> = args.collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var_os("QBE_BENCH_SMOKE").is_some_and(|v| v != "0");
    if smoke {
        return run_smoke();
    }
    let config = match parse_config(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("qbe-server: {msg}");
            return 1;
        }
    };
    let addr = config.addr.clone();
    let engine = config.engine;
    let persist = config.persist;
    let handle = match spawn(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("qbe-server: cannot start on {addr}: {e}");
            return 1;
        }
    };
    println!(
        "qbe-server listening on {} (engine {}; models twig,path,join,graph; corpora {}{})",
        handle.addr(),
        engine.name(),
        crate::corpus::CORPUS_NAMES.join(","),
        if persist { "; persistence on" } else { "" }
    );
    handle.join();
    0
}

fn run_smoke() -> i32 {
    let handle = match spawn(ServerConfig::default()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("qbe-server --smoke: cannot bind: {e}");
            return 1;
        }
    };
    let addr = handle.addr();
    println!("qbe-server --smoke on {addr} (event engine)");
    println!(
        "{:<28} {:>10} {:>12} {:>6}  learned",
        "session", "questions", "answer-set", "ok"
    );
    type SmokeSession = (&'static str, Goal, Vec<(&'static str, &'static str)>);
    let sessions: [SmokeSession; 3] = [
        (
            "twig //person/name",
            Goal::Twig("//person/name".to_string()),
            vec![("seed", "7")],
        ),
        (
            "path type=highway",
            Goal::PathRoadType("highway".to_string()),
            vec![("to", "city3")],
        ),
        ("join demo", Goal::Join, vec![]),
    ];
    let mut failures = 0;
    for (label, goal, params) in sessions {
        match drive_goal_session(addr, "tiny", &goal, &params) {
            Ok(outcome) => {
                println!(
                    "{:<28} {:>10} {:>12} {:>6}  {}",
                    label,
                    outcome.questions,
                    outcome.answer_set_size,
                    if outcome.consistent { "yes" } else { "NO" },
                    outcome.hypothesis
                );
                if !outcome.consistent {
                    failures += 1;
                }
            }
            Err(e) => {
                println!("{label:<28} FAILED: {e}");
                failures += 1;
            }
        }
    }
    match Client::connect(addr).and_then(|mut c| c.metrics()) {
        Ok(metrics) => {
            let line: Vec<String> = metrics.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!("metrics: {}", line.join(" "));
            let sessions_served = crate::protocol::field_value(&metrics, "sessions")
                .and_then(|v| v.parse::<usize>().ok());
            if sessions_served != Some(3) {
                eprintln!("expected 3 served sessions, metrics say {sessions_served:?}");
                failures += 1;
            }
        }
        Err(e) => {
            eprintln!("METRICS failed: {e}");
            failures += 1;
        }
    }
    handle.shutdown();

    // The blocking engine is the executable spec: one session must still converge on it.
    match spawn(ServerConfig {
        engine: Engine::Blocking,
        ..Default::default()
    }) {
        Ok(blocking) => {
            match drive_goal_session(
                blocking.addr(),
                "tiny",
                &Goal::Twig("//person/name".to_string()),
                &[("seed", "7")],
            ) {
                Ok(outcome) if outcome.consistent => {
                    println!("blocking-engine cross-check ok ({})", outcome.hypothesis);
                }
                Ok(outcome) => {
                    eprintln!(
                        "blocking-engine session inconsistent: {}",
                        outcome.hypothesis
                    );
                    failures += 1;
                }
                Err(e) => {
                    eprintln!("blocking-engine session failed: {e}");
                    failures += 1;
                }
            }
            blocking.shutdown();
        }
        Err(e) => {
            eprintln!("qbe-server --smoke: cannot bind blocking engine: {e}");
            failures += 1;
        }
    }

    if failures == 0 {
        println!("smoke ok: sessions learned over loopback on both engines");
        0
    } else {
        eprintln!("smoke failed: {failures} problem(s)");
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serving_flags_parse_and_reject_loudly() {
        let config = parse_config(&strs(&[
            "--addr",
            "127.0.0.1:9000",
            "--engine",
            "blocking",
            "--workers",
            "3",
            "--max-connections",
            "500",
            "--rate-limit",
            "20/5",
        ]))
        .unwrap();
        assert_eq!(config.addr, "127.0.0.1:9000");
        assert_eq!(config.engine, Engine::Blocking);
        assert_eq!(config.workers, 3);
        assert_eq!(config.max_connections, 500);
        let limit = config.rate_limit.unwrap();
        assert_eq!(limit.burst, 20);
        assert_eq!(limit.per_sec, 5.0);

        // Defaults: event engine, no rate limit.
        let defaults = parse_config(&strs(&[])).unwrap();
        assert_eq!(defaults.engine, Engine::Event);
        assert!(defaults.rate_limit.is_none());

        assert!(parse_config(&strs(&["--engine", "fibers"])).is_err());
        assert!(parse_config(&strs(&["--workers", "0"])).is_err());
        assert!(parse_config(&strs(&["--rate-limit", "20"])).is_err());
        assert!(parse_config(&strs(&["--rate-limit", "0/5"])).is_err());
    }

    #[test]
    fn persistence_flags_parse_and_imply_each_other() {
        let config = parse_config(&strs(&["--data-dir", "/tmp/qbe", "--persist"])).unwrap();
        assert_eq!(
            config.data_dir.as_deref(),
            Some(std::path::Path::new("/tmp/qbe"))
        );
        assert!(config.persist);

        // Snapshot caching without the WAL is allowed…
        let cache_only = parse_config(&strs(&["--data-dir", "/tmp/qbe"])).unwrap();
        assert!(cache_only.data_dir.is_some());
        assert!(!cache_only.persist);

        // …but a WAL with nowhere to live is not.
        assert!(parse_config(&strs(&["--persist"])).is_err());
    }

    #[test]
    fn fault_flags_parse_and_reject_loudly() {
        let config = parse_config(&strs(&[
            "--faults",
            "seed=7;server.drop=0.05;wal.fsync=0.1:max=2",
        ]))
        .unwrap();
        let faults = config.faults.expect("profile attached");
        assert_eq!(faults.profile().seed, 7);
        assert!(faults.profile().sites.contains_key("server.drop"));
        assert!(faults.profile().sites.contains_key("wal.fsync"));

        // Production default: no registry at all (disconnects close sessions).
        assert!(parse_config(&strs(&[])).unwrap().faults.is_none());

        assert!(parse_config(&strs(&["--faults", "server.drop=1.5"])).is_err());
        assert!(parse_config(&strs(&["--faults", "nonsense"])).is_err());
    }
}
