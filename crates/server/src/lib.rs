//! # qbe-server — a networked query-by-example learning service
//!
//! The paper's closing ambition is "a practical system able to learn … queries from interaction
//! with the user". Everything below the wire already exists in this workspace — indexed
//! corpora ([`qbe_core::xml::NodeIndex`], [`qbe_core::graph::GraphIndex`]), interactive
//! learners for all three data models, a common session trait
//! ([`qbe_core::session::InteractiveLearner`]). This crate is the missing serving layer: a
//! TCP service speaking a hand-rolled line protocol (no registry access, hence no serde),
//! multiplexing many users' learning sessions over corpora that are built once and shared
//! behind `Arc`s. Two engines serve the identical protocol: the default event-driven one (an
//! epoll/poll readiness loop in a single reactor thread plus a fixed worker pool — 10k+
//! concurrent connections on commodity fd limits) and the original thread-per-connection
//! engine, kept behind [`server::Engine::Blocking`] as the executable specification.
//!
//! A session, over the wire:
//!
//! ```text
//! C: HELLO
//! S: +OK qbe-server proto=1.3 models=twig,path,join,graph classes=rpq,2rpq,crpq corpora=tiny,small,medium strategies=paper-order,random,max-coverage,cheapest-first options=strategy,budget,seed,class
//! C: CORPUS tiny
//! S: +OK corpus name=tiny docs=1 xml_nodes=331 graph_nodes=10 tuples=12x12
//! C: START twig strategy=label-affinity budget=40 seed=7
//! S: +OK session id=1 model=twig
//! C: ASK
//! S: +ASK doc=0 node=17 label=name path=/site/people/person/name
//! C: ANSWER yes
//! S: +OK recorded
//! …
//! C: ASK
//! S: +DONE questions=9 consistent=true
//! C: QUERY
//! S: +QUERY //person/name
//! C: EVAL
//! S: +EVAL 12
//! C: QUIT
//! S: +OK bye
//! ```
//!
//! See `PROTOCOL.md` for the full grammar, [`server::spawn`] to run a server in-process,
//! [`client::Client`] for the blocking client, and [`client::drive_goal_session`] for the
//! simulated-user driver the tests, benches and `--smoke` mode share.

#![warn(missing_docs)]

pub mod cli;
pub mod client;
pub mod corpus;
#[cfg(test)]
mod fault_schedules;
mod persist;
pub mod poll;
pub mod protocol;
mod reactor;
pub mod registry;
pub mod retry;
pub mod server;
mod workers;

pub use client::{
    demo_graph_goal_pairs, drive_goal_session, local_corpus, local_corpus_builds, AskReply, Client,
    ClientError, Goal,
};
pub use corpus::{build_corpus, Corpus, CorpusError, CorpusStore, CORPUS_NAMES};
pub use protocol::{parse_command, Command, Model, ParseError, MAX_LINE_BYTES};
pub use registry::{ServiceMetrics, SessionRegistry};
pub use retry::{
    drive_goal_session_resilient, is_retryable, NoiseModel, ResilientClient, ResilientOutcome,
    RetryPolicy, FAULT_SITE_CLIENT_DROP, FAULT_SITE_CLIENT_DROP_REPLY,
};
pub use server::{
    spawn, Engine, RateLimit, ServerConfig, ServerHandle, FAULT_SITE_DROP, FAULT_SITE_LATENCY,
};
