//! A resilient protocol client: per-request timeouts, bounded exponential backoff with
//! seeded jitter, and transparent reconnect + `RESUME` — so a goal-driven session survives
//! injected (or real) connection drops with zero manual intervention.
//!
//! # Error classification
//!
//! The protocol splits failures into two classes (see `PROTOCOL.md`):
//!
//! * **retryable** — transport errors ([`ClientError::Io`]) and every `-ERR … retry later`
//!   reply (`server at capacity`, `overloaded`, `rate limit exceeded`). The client backs
//!   off and tries again, reconnecting first when the transport broke.
//! * **fatal** — every other `-ERR` (unknown corpus, bad command, protocol misuse) and
//!   malformed replies. Retrying cannot help; the error surfaces immediately.
//!
//! # The `ANSWER` ambiguity
//!
//! Losing a connection *after* a request went out leaves the client unsure whether the
//! request executed. For idempotent requests (`ASK` repeats the pending question; `QUERY`,
//! `EVAL`, `METRICS` are reads) a plain resend is safe. `ANSWER` is the one request that
//! advances the session, so [`ResilientClient::answer`] disambiguates: after a transport
//! failure it re-attaches via `RESUME` and probes with `ASK` — if the pending question is
//! unchanged the answer was lost (resend it); if the question moved on or the session
//! completed, the answer landed and the lost reply is forgotten.
//!
//! # Client-side fault injection
//!
//! With a [`FaultRegistry`] attached, the client breaks its *own* socket at two seams,
//! mirroring the server's [`FAULT_SITE_DROP`](crate::server::FAULT_SITE_DROP):
//! [`FAULT_SITE_CLIENT_DROP`] kills the link before a request goes out (the easy case —
//! nothing executed), [`FAULT_SITE_CLIENT_DROP_REPLY`] after (the hard case — executed,
//! reply lost). Both fire only for `ASK`/`ANSWER` lines so session bookkeeping requests
//! stay deterministic.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use qbe_core::faults::{injected_io_error, FaultRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::client::{
    local_corpus, parse_ask_reply, AskReply, Client, ClientError, Goal, GoalEvaluator,
    GoalSessionOutcome,
};
use crate::protocol::Model;

type Result<T> = std::result::Result<T, ClientError>;

/// Client fault site: the connection is torn down *before* a request line goes out —
/// nothing executed server-side, so a reconnect + resend is trivially safe.
pub const FAULT_SITE_CLIENT_DROP: &str = "client.drop";

/// Client fault site: the connection is torn down *after* the request line went out but
/// before its reply is read — the request executed, its reply is lost. `ANSWER` under this
/// fault is the case [`ResilientClient::answer`]'s probe logic exists for.
pub const FAULT_SITE_CLIENT_DROP_REPLY: &str = "client.drop_reply";

/// When to give up and how fast to come back: the retry/backoff tunables of a
/// [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts per logical request, the first included. `1` disables retrying.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Socket read/write deadline per request — a server that stops replying is treated as
    /// a transport failure (retryable) after this long, not waited on forever.
    pub request_timeout: Duration,
    /// Seed of the jitter stream. Same seed, same jittered delays — fault schedules stay
    /// reproducible end to end.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            request_timeout: Duration::from_secs(5),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The pause before retry number `retry` (1-based): `base · 2^(retry-1)` capped at
    /// [`max_delay`](RetryPolicy::max_delay), then jittered to 50–100% of itself so herds
    /// of retrying clients decorrelate. Deterministic given the `rng` stream.
    fn backoff(&self, retry: u32, rng: &mut StdRng) -> Duration {
        let exp = retry.saturating_sub(1).min(20);
        let full = self
            .base_delay
            .saturating_mul(1u32 << exp)
            .min(self.max_delay);
        full.mul_f64(0.5 + 0.5 * rng.gen_range(0.0..1.0))
    }
}

/// Is this failure worth retrying? Transport errors always are (the link is rebuilt and
/// the session resumed); `-ERR` replies only when the server itself says `retry later`.
/// Everything else — protocol misuse, unknown names, malformed replies — is fatal.
pub fn is_retryable(err: &ClientError) -> bool {
    match err {
        ClientError::Io(_) => true,
        ClientError::Server(msg) => msg.contains("retry later"),
        ClientError::UnexpectedReply(_) => false,
    }
}

/// A [`Client`] wrapper that retries, reconnects and resumes per [`RetryPolicy`].
///
/// The wrapper pins one server address, one corpus, and at most one session: after
/// [`start`](ResilientClient::start), every reconnect re-attaches that session with
/// `RESUME` before the failed request is retried.
pub struct ResilientClient {
    addr: SocketAddr,
    corpus: String,
    policy: RetryPolicy,
    jitter: StdRng,
    faults: Option<Arc<FaultRegistry>>,
    client: Option<Client>,
    session_id: Option<u64>,
    reconnects: u64,
    retried_requests: u64,
}

impl ResilientClient {
    /// Resolve `addr`, connect, and attach to `corpus` (both with retry/backoff).
    pub fn new(
        addr: impl ToSocketAddrs,
        corpus: &str,
        policy: RetryPolicy,
    ) -> Result<ResilientClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Io(io::Error::other("address resolved to nothing")))?;
        let jitter = StdRng::seed_from_u64(policy.seed);
        let mut rc = ResilientClient {
            addr,
            corpus: corpus.to_string(),
            policy,
            jitter,
            faults: None,
            client: None,
            session_id: None,
            reconnects: 0,
            retried_requests: 0,
        };
        rc.with_retry(|rc| {
            rc.ensure_connected()?;
            Ok(())
        })?;
        Ok(rc)
    }

    /// Attach a fault registry: the client starts sabotaging its own `ASK`/`ANSWER`
    /// requests at [`FAULT_SITE_CLIENT_DROP`] / [`FAULT_SITE_CLIENT_DROP_REPLY`].
    pub fn set_faults(&mut self, faults: Arc<FaultRegistry>) {
        self.faults = Some(faults);
    }

    /// Reconnect + `RESUME` re-attaches performed so far — the client-side view of the
    /// server's `retries=` METRICS counter.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Individual request attempts beyond the first, across all requests.
    pub fn retried_requests(&self) -> u64 {
        self.retried_requests
    }

    /// The session this client drives (set by [`start`](ResilientClient::start)).
    pub fn session_id(&self) -> Option<u64> {
        self.session_id
    }

    fn fire(&self, site: &str) -> bool {
        self.faults.as_ref().is_some_and(|f| f.fire(site))
    }

    /// Connection gone or suspect: drop it so the next attempt dials fresh.
    fn disconnect(&mut self) {
        if let Some(client) = self.client.take() {
            client.shutdown();
        }
    }

    /// Dial, greet, re-attach corpus and (when one is open) session. One attempt — the
    /// callers' retry loops provide the backoff.
    fn ensure_connected(&mut self) -> Result<&mut Client> {
        if self.client.is_none() {
            let mut client = Client::connect_with_timeouts(
                self.addr,
                self.policy.request_timeout,
                self.policy.request_timeout,
            )?;
            client.corpus(&self.corpus)?;
            if let Some(id) = self.session_id {
                client.resume(id)?;
                self.reconnects += 1;
            }
            self.client = Some(client);
        }
        Ok(self.client.as_mut().expect("connection just ensured"))
    }

    /// One request attempt with the client-side fault seams around it. Only `ASK` and
    /// `ANSWER` lines are sabotaged (mirroring the server's drop site), so the session
    /// bookkeeping around them stays on the happy path.
    fn attempt(&mut self, line: &str) -> Result<String> {
        let faultable = {
            let head = line.split_whitespace().next().unwrap_or("");
            head.eq_ignore_ascii_case("ASK") || head.eq_ignore_ascii_case("ANSWER")
        };
        if faultable && self.fire(FAULT_SITE_CLIENT_DROP) {
            self.disconnect();
            return Err(ClientError::Io(injected_io_error(FAULT_SITE_CLIENT_DROP)));
        }
        let drop_reply = faultable && self.fire(FAULT_SITE_CLIENT_DROP_REPLY);
        let client = self.ensure_connected()?;
        client.send_line(line)?;
        if drop_reply {
            client.shutdown();
        }
        client.receive_checked()
    }

    /// Classify-and-retry loop shared by every request: retryable failures back off
    /// (dropping the connection first when the transport broke), fatal ones surface.
    fn with_retry<T>(&mut self, mut f: impl FnMut(&mut ResilientClient) -> Result<T>) -> Result<T> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match f(self) {
                Ok(v) => return Ok(v),
                Err(e) if attempt < self.policy.max_attempts.max(1) && is_retryable(&e) => {
                    if matches!(e, ClientError::Io(_)) {
                        self.disconnect();
                    }
                    self.retried_requests += 1;
                    let pause = self.policy.backoff(attempt, &mut self.jitter);
                    thread::sleep(pause);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// An idempotent request: retried verbatim until a reply arrives or the budget runs out.
    fn request(&mut self, line: &str) -> Result<String> {
        let line = line.to_string();
        self.with_retry(|rc| rc.attempt(&line))
    }

    /// `START <model> [params]` — open the session every later reconnect re-attaches.
    pub fn start(&mut self, model: Model, params: &[(&str, &str)]) -> Result<u64> {
        let mut line = format!("START {model}");
        for (k, v) in params {
            line.push_str(&format!(" {k}={v}"));
        }
        let reply = self.request(&line)?;
        let id = reply
            .strip_prefix("+OK session id=")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|id| id.parse().ok())
            .ok_or(ClientError::UnexpectedReply(reply))?;
        self.session_id = Some(id);
        Ok(id)
    }

    /// `ASK` with retry — safe to resend because the server repeats the pending question
    /// until it is answered (each repeat shows up in the server's `reasks=` counter).
    pub fn ask(&mut self) -> Result<AskReply> {
        let reply = self.request("ASK")?;
        parse_ask_reply(&reply)
    }

    /// `ANSWER yes|no`, disambiguating lost replies. `question` is the pending question's
    /// fields (as returned by [`ask`](ResilientClient::ask)): after a transport failure the
    /// client re-attaches and probes with `ASK` — same question ⇒ the answer was lost,
    /// resend; anything else ⇒ it landed, the lost `+OK` is forgotten.
    pub fn answer(&mut self, positive: bool, question: &[(String, String)]) -> Result<()> {
        let line = if positive { "ANSWER yes" } else { "ANSWER no" };
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.attempt(line) {
                Ok(_) => return Ok(()),
                Err(e) if attempt < self.policy.max_attempts.max(1) && is_retryable(&e) => {
                    let transport = matches!(e, ClientError::Io(_));
                    if transport {
                        self.disconnect();
                    }
                    self.retried_requests += 1;
                    let pause = self.policy.backoff(attempt, &mut self.jitter);
                    thread::sleep(pause);
                    if transport {
                        // Did the lost ANSWER land? Probe the pending question.
                        match self.ask()? {
                            AskReply::Question(fields) if fields == question => {} // lost: resend
                            _ => return Ok(()), // session advanced: it landed
                        }
                    }
                    // A `-ERR … retry later` means the request never executed: plain resend.
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// `QUERY` — the current hypothesis text.
    pub fn query(&mut self) -> Result<String> {
        let reply = self.request("QUERY")?;
        reply
            .strip_prefix("+QUERY ")
            .map(str::to_string)
            .ok_or(ClientError::UnexpectedReply(reply))
    }

    /// `EVAL` — answer-set size of the current hypothesis.
    pub fn eval(&mut self) -> Result<usize> {
        let reply = self.request("EVAL")?;
        reply
            .strip_prefix("+EVAL ")
            .and_then(|n| n.parse().ok())
            .ok_or(ClientError::UnexpectedReply(reply))
    }

    /// `QUIT` — a transport failure after the goodbye went out still counts as success
    /// (the connection is gone either way, which is what QUIT wanted).
    pub fn quit(&mut self) -> Result<()> {
        match self.request("QUIT") {
            Ok(_) | Err(ClientError::Io(_)) => {
                self.session_id = None;
                self.disconnect();
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

/// The simulated unreliable user: labels flip with probability `p`, and each question is
/// (locally) re-asked `votes` times with the majority sent as the one wire `ANSWER` — the
/// k-vote meta-strategy, budget-aware because only that committed answer consumes the
/// session's question budget. Pick `votes` with [`qbe_core::votes_for_session`] to push the
/// whole session's error probability below a target δ.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// Per-vote flip probability (0 ≤ p < ½).
    pub p: f64,
    /// Votes per question; even values are rounded up to the next odd by the driver.
    pub votes: usize,
    /// Seed of the flip stream — same seed, same noise, same transcript.
    pub seed: u64,
}

impl NoiseModel {
    /// A model whose vote count is chosen so that *all* `questions` majority answers are
    /// simultaneously correct with probability ≥ 1 − δ (union bound; exact binomial tail).
    pub fn with_bound(p: f64, delta: f64, questions: usize, seed: u64) -> NoiseModel {
        NoiseModel {
            p,
            votes: qbe_core::votes_for_session(p, delta, questions),
            seed,
        }
    }
}

/// What [`drive_goal_session_resilient`] observed: the ordinary outcome plus the
/// resilience/noise counters.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// The session outcome, as [`drive_goal_session`](crate::client::drive_goal_session)
    /// reports it.
    pub session: GoalSessionOutcome,
    /// Reconnect + `RESUME` re-attaches the client performed.
    pub reconnects: u64,
    /// Request attempts beyond the first, across all requests.
    pub retried_requests: u64,
    /// Local votes cast by the noise model (0 without one).
    pub votes_cast: u64,
    /// Votes the noise flipped away from the truth.
    pub flips: u64,
}

/// [`drive_goal_session`](crate::client::drive_goal_session) hardened for an unreliable
/// world: same goal-driven protocol loop, but requests go through a [`ResilientClient`]
/// (timeouts, backoff, reconnect + `RESUME`) and answers optionally through a noisy
/// majority-voting user model. With `faults` attached the client additionally sabotages
/// its own socket — the acceptance tests drive all three learner models to convergence
/// this way over real TCP.
pub fn drive_goal_session_resilient(
    addr: impl ToSocketAddrs,
    corpus: &str,
    goal: &Goal,
    start_params: &[(&str, &str)],
    policy: RetryPolicy,
    noise: Option<&NoiseModel>,
    faults: Option<Arc<FaultRegistry>>,
) -> Result<ResilientOutcome> {
    let local = local_corpus(corpus).ok_or_else(|| {
        ClientError::Server(format!("unknown corpus {corpus:?} (client-side build)"))
    })?;
    let mut evaluator = GoalEvaluator::new(&local, goal)?;
    let mut client = ResilientClient::new(addr, corpus, policy)?;
    if let Some(f) = faults {
        client.set_faults(f);
    }
    let mut flip_rng = noise.map(|n| {
        assert!(
            (0.0..0.5).contains(&n.p),
            "majority voting needs flip probability in [0, 0.5)"
        );
        StdRng::seed_from_u64(n.seed)
    });

    let mut params: Vec<(&str, &str)> = start_params.to_vec();
    if let Goal::GraphPairs(class) = goal {
        params.push(("class", class.wire_name()));
    }
    let session_id = client.start(evaluator.model(), &params)?;

    let mut votes_cast = 0u64;
    let mut flips = 0u64;
    let (questions, consistent) = loop {
        match client.ask()? {
            AskReply::Done {
                questions,
                consistent,
            } => break (questions, consistent),
            AskReply::Question(fields) => {
                let truth = evaluator.label(&fields)?;
                let positive = match (noise, flip_rng.as_mut()) {
                    (Some(n), Some(rng)) => {
                        let k = n.votes.max(1) | 1; // odd: no ties
                        let mut yes = 0usize;
                        for _ in 0..k {
                            let flipped = n.p > 0.0 && rng.gen_bool(n.p);
                            if flipped {
                                flips += 1;
                            }
                            if truth != flipped {
                                yes += 1;
                            }
                            votes_cast += 1;
                        }
                        2 * yes > k
                    }
                    _ => truth,
                };
                client.answer(positive, &fields)?;
            }
        }
    };
    let hypothesis = client.query()?;
    let answer_set_size = client.eval()?;
    let reconnects = client.reconnects();
    let retried_requests = client.retried_requests();
    client.quit()?;
    Ok(ResilientOutcome {
        session: GoalSessionOutcome {
            session_id,
            questions,
            consistent,
            hypothesis,
            answer_set_size,
        },
        reconnects,
        retried_requests,
        votes_cast,
        flips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_classification_is_explicit() {
        // Retryable: the three `retry later` server replies, and any transport failure.
        for msg in [
            "server at capacity, retry later",
            "overloaded, retry later",
            "rate limit exceeded, retry later",
        ] {
            assert!(is_retryable(&ClientError::Server(msg.to_string())), "{msg}");
        }
        assert!(is_retryable(&ClientError::Io(io::Error::other("boom"))));
        // Fatal: every other -ERR and malformed replies.
        for msg in [
            "unknown corpus \"nope\"",
            "unsupported protocol command",
            "no open session (use START)",
        ] {
            assert!(
                !is_retryable(&ClientError::Server(msg.to_string())),
                "{msg}"
            );
        }
        assert!(!is_retryable(&ClientError::UnexpectedReply("?".into())));
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_deterministically() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            seed: 42,
            ..RetryPolicy::default()
        };
        let delays: Vec<Duration> = {
            let mut rng = StdRng::seed_from_u64(policy.seed);
            (1..=6).map(|i| policy.backoff(i, &mut rng)).collect()
        };
        // Jitter keeps each delay within [50%, 100%] of the capped exponential step.
        for (i, d) in delays.iter().enumerate() {
            let full = Duration::from_millis(10 << i).min(Duration::from_millis(80));
            assert!(*d <= full, "retry {}: {d:?} > {full:?}", i + 1);
            assert!(*d >= full / 2, "retry {}: {d:?} < half of {full:?}", i + 1);
        }
        // Same seed, same stream: the schedule is reproducible.
        let again: Vec<Duration> = {
            let mut rng = StdRng::seed_from_u64(policy.seed);
            (1..=6).map(|i| policy.backoff(i, &mut rng)).collect()
        };
        assert_eq!(delays, again);
    }

    #[test]
    fn noise_model_bound_scales_votes_with_noise_and_stakes() {
        let quiet = NoiseModel::with_bound(0.0, 0.01, 50, 7);
        assert_eq!(quiet.votes, 1, "no noise, no re-asking");
        let mild = NoiseModel::with_bound(0.1, 0.01, 50, 7);
        let loud = NoiseModel::with_bound(0.2, 0.01, 50, 7);
        assert!(mild.votes >= 3);
        assert!(loud.votes > mild.votes, "more noise, more votes");
        let long = NoiseModel::with_bound(0.2, 0.01, 500, 7);
        assert!(
            long.votes >= loud.votes,
            "more questions to protect, no fewer votes"
        );
    }
}
