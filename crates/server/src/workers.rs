//! The fixed worker pool behind the event-driven engine.
//!
//! The reactor thread must never execute a session step itself — a slow oracle answer or a
//! first-touch corpus build would stall every other connection's I/O. Instead it checks the
//! connection's [`ProtoState`] out into a [`Job`] and pushes it here; a worker runs the shared
//! protocol core ([`respond`]) and pushes a [`Completion`] (reply + returned state) onto the
//! completion queue, then kicks the reactor's waker so the readiness loop picks the reply up
//! even while idle in `wait`.
//!
//! Ownership does the synchronisation: each connection has at most one line in flight, and its
//! `ProtoState` travels with the job and comes back with the completion, so no per-connection
//! lock exists anywhere. The queue depth (jobs submitted but not yet completed) is exported for
//! the reactor's load-shedding decision.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use crate::poll::Waker;
use crate::server::{respond, ProtoState, Service};

/// One request line checked out to the pool, carrying its connection's protocol state.
pub(crate) struct Job {
    pub(crate) conn: u64,
    pub(crate) line: String,
    pub(crate) state: ProtoState,
}

/// The worker's result: the reply to write, whether the connection should close after it, and
/// the protocol state handed back to the reactor.
pub(crate) struct Completion {
    pub(crate) conn: u64,
    pub(crate) reply: String,
    pub(crate) quit: bool,
    pub(crate) state: ProtoState,
    /// An injected fault dropped this connection: the operation executed but the reply must
    /// be discarded and the socket closed, with the session detached (left resumable).
    pub(crate) dropped: bool,
}

/// Queue of finished jobs, drained by the reactor after a waker kick.
pub(crate) type CompletionQueue = Arc<Mutex<VecDeque<Completion>>>;

/// A fixed pool of worker threads executing session steps.
pub(crate) struct WorkerPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    depth: Arc<AtomicUsize>,
    completions: CompletionQueue,
}

impl WorkerPool {
    /// Spawn `workers` threads (at least one) serving jobs against `service`, reporting
    /// completions through the returned pool's queue and waking `waker` after each.
    pub(crate) fn spawn(workers: usize, service: Arc<Service>, waker: Waker) -> WorkerPool {
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let depth = Arc::new(AtomicUsize::new(0));
        let completions: CompletionQueue = Arc::new(Mutex::new(VecDeque::new()));
        let handles = (0..workers.max(1))
            .map(|i| {
                let receiver = receiver.clone();
                let service = service.clone();
                let waker = waker.clone();
                let depth = depth.clone();
                let completions = completions.clone();
                std::thread::Builder::new()
                    .name(format!("qbe-server-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &service, &waker, &depth, &completions))
                    .expect("worker thread spawn")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            handles,
            depth,
            completions,
        }
    }

    /// Jobs submitted but not yet completed — the load-shedding signal.
    pub(crate) fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// The queue the reactor drains.
    pub(crate) fn completions(&self) -> CompletionQueue {
        self.completions.clone()
    }

    /// Submit a job. Returns the job back if the pool has already shut down.
    pub(crate) fn submit(&self, job: Job) -> Result<(), Job> {
        let Some(sender) = &self.sender else {
            return Err(job);
        };
        self.depth.fetch_add(1, Ordering::Relaxed);
        sender.send(job).map_err(|e| {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            e.0
        })
    }

    /// Close the job channel and join every worker; in-flight jobs finish first and their
    /// completions stay queued for the reactor's final drain.
    pub(crate) fn shutdown(&mut self) {
        self.sender.take(); // hang up: workers see Err(RecvError) and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    receiver: &Mutex<Receiver<Job>>,
    service: &Service,
    waker: &Waker,
    depth: &AtomicUsize,
    completions: &Mutex<VecDeque<Completion>>,
) {
    loop {
        // Hold the receiver lock only for the dequeue, not the session step.
        let job = match receiver
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recv()
        {
            Ok(job) => job,
            Err(_) => break, // pool shut down
        };
        let Job {
            conn,
            line,
            mut state,
        } = job;
        service.inject_latency();
        // Decide the injected drop before executing, apply it after: the operation lands
        // but its reply is lost — the case a resilient client must disambiguate.
        let dropped = service.injected_drop(&line);
        let (reply, quit) = respond(service, &mut state, &line);
        depth.fetch_sub(1, Ordering::Relaxed);
        completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(Completion {
                conn,
                reply,
                quit,
                state,
                dropped,
            });
        waker.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::waker_pair;

    #[test]
    fn pool_round_trips_jobs_and_tracks_depth() {
        let service = Arc::new(Service::new());
        let (_reader, waker) = waker_pair().unwrap();
        let mut pool = WorkerPool::spawn(2, service, waker);
        let completions = pool.completions();
        for i in 0..8u64 {
            pool.submit(Job {
                conn: i,
                line: "HELLO".to_string(),
                state: ProtoState::new(),
            })
            .unwrap_or_else(|_| panic!("pool alive"));
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let done = completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len();
            if done == 8 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "only {done}/8 done");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(pool.depth(), 0, "all jobs drained");
        let first = completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
            .unwrap();
        assert!(first.reply.starts_with("+OK qbe-server proto=1.3"));
        assert!(!first.quit);
        pool.shutdown();
        // After shutdown, submission hands the job back instead of hanging.
        let refused = pool.submit(Job {
            conn: 99,
            line: "HELLO".to_string(),
            state: ProtoState::new(),
        });
        assert!(refused.is_err());
    }
}
