//! Named shared corpora: one immutable, fully indexed instance per name, built once and shared
//! by every connection.
//!
//! A learning service over "very large databases" (the paper's motivating setting) cannot
//! rebuild documents and indexes per user: the whole point of `NodeIndex`/`GraphIndex` is that
//! they are immutable and `Arc`-shareable. The [`CorpusStore`] realises that: the first
//! `CORPUS <name>` builds the instance (XMark documents + per-document [`NodeIndex`],
//! geographical graph + [`GraphIndex`], relation pair); every later request — on any
//! connection, for any session — receives clones of the same `Arc`s.
//!
//! Names are deterministic recipes, not uploads: a client and a test referring to `"tiny"` see
//! byte-identical data without shipping it over the wire (the XML half is
//! [`qbe_core::xml::xmark::corpus_by_name`]).
//!
//! When the store is given a data directory, each corpus is additionally persisted as a
//! `corpus-<name>.qbes` snapshot ([`qbe_core::store`]): the first build writes the snapshot,
//! and every later process opens it instead of regenerating and re-indexing from scratch.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use qbe_core::graph::{generate_geo_graph, typed_road_view, GeoConfig, GraphIndex, PropertyGraph};
use qbe_core::relational::{generate_join_instance, JoinInstanceConfig, JoinPredicate, Relation};
use qbe_core::store::{snapshot, CorpusSnapshot, FileBackend, SnapshotReader};
use qbe_core::xml::xmark::corpus_by_name;
use qbe_core::xml::{NodeIndex, XmlTree};

/// The corpus names [`build_corpus`] understands, smallest first.
pub const CORPUS_NAMES: &[&str] = &["tiny", "small", "medium"];

/// One named instance: every substrate a session might learn over, pre-indexed and shareable.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The corpus name.
    pub name: String,
    /// XML documents (XMark) for twig sessions.
    pub docs: Arc<Vec<XmlTree>>,
    /// One [`NodeIndex`] per document, aligned with `docs`.
    pub indexes: Arc<Vec<NodeIndex>>,
    /// Geographical property graph for path sessions.
    pub graph: Arc<PropertyGraph>,
    /// Label-interned adjacency of `graph`.
    pub graph_index: Arc<GraphIndex>,
    /// The typed road view of `graph` (edge label = road type, one direction per road) —
    /// what `graph` model sessions (RPQ/2RPQ/CRPQ) learn over.
    pub typed_graph: Arc<PropertyGraph>,
    /// Label-interned adjacency of `typed_graph` (with reverse-successor bitsets for `ℓ⁻`).
    pub typed_index: Arc<GraphIndex>,
    /// Left relation for join sessions.
    pub left: Arc<Relation>,
    /// Right relation for join sessions.
    pub right: Arc<Relation>,
    /// The join generator's reference predicate. Simulated clients (tests, benches, `--smoke`)
    /// use it as their hidden intent; real clients bring their own and never see this one.
    pub demo_join_goal: JoinPredicate,
}

impl Corpus {
    /// Total XML node count, the denominator twig sessions report against.
    pub fn xml_nodes(&self) -> usize {
        self.docs.iter().map(XmlTree::size).sum()
    }
}

/// Build a named corpus from scratch. `None` for unknown names (see [`CORPUS_NAMES`]).
///
/// Deterministic: every invocation of the same name yields identical data, which is what lets
/// remote clients act as their own oracle — they rebuild the corpus locally and evaluate their
/// goal query against it instead of downloading documents.
pub fn build_corpus(name: &str) -> Option<Corpus> {
    let (xmark, cities, rows) = match name {
        "tiny" => ("xmark-tiny", 10, 12),
        "small" => ("xmark-small", 16, 30),
        "medium" => ("xmark-default", 256, 120),
        _ => return None,
    };
    let docs = Arc::new(corpus_by_name(xmark).expect("every corpus maps to a named XMark corpus"));
    let indexes = Arc::new(docs.iter().map(NodeIndex::build).collect::<Vec<_>>());
    let graph = Arc::new(generate_geo_graph(&GeoConfig {
        cities,
        connectivity: 3,
        ..Default::default()
    }));
    let graph_index = Arc::new(GraphIndex::build(&graph));
    let typed_graph = Arc::new(typed_road_view(&graph));
    let typed_index = Arc::new(GraphIndex::build(&typed_graph));
    let (left, right, demo_join_goal) = generate_join_instance(&JoinInstanceConfig {
        left_rows: rows,
        right_rows: rows,
        extra_attributes: 2,
        domain_size: 6,
        seed: 11,
    });
    Some(Corpus {
        name: name.to_string(),
        docs,
        indexes,
        graph,
        graph_index,
        typed_graph,
        typed_index,
        left: Arc::new(left),
        right: Arc::new(right),
        demo_join_goal,
    })
}

/// Why a corpus request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// The name is not one of [`CORPUS_NAMES`].
    Unknown,
    /// A snapshot file existed but could not be opened or decoded. The message names the
    /// file and the corruption mode, suitable for an `-ERR` reply or a startup error.
    Load(String),
}

/// Convert a [`Corpus`] (Arc-shared) into its owned, serialisable snapshot form.
pub fn corpus_to_snapshot(c: &Corpus) -> CorpusSnapshot {
    CorpusSnapshot {
        name: c.name.clone(),
        docs: (*c.docs).clone(),
        indexes: (*c.indexes).clone(),
        graph: (*c.graph).clone(),
        graph_index: (*c.graph_index).clone(),
        typed_graph: (*c.typed_graph).clone(),
        typed_index: (*c.typed_index).clone(),
        left: (*c.left).clone(),
        right: (*c.right).clone(),
        demo_join_goal: c.demo_join_goal.clone(),
    }
}

/// Wrap a decoded snapshot's substrates back into the Arc-shared serving form.
pub fn snapshot_to_corpus(s: CorpusSnapshot) -> Corpus {
    Corpus {
        name: s.name,
        docs: Arc::new(s.docs),
        indexes: Arc::new(s.indexes),
        graph: Arc::new(s.graph),
        graph_index: Arc::new(s.graph_index),
        typed_graph: Arc::new(s.typed_graph),
        typed_index: Arc::new(s.typed_index),
        left: Arc::new(s.left),
        right: Arc::new(s.right),
        demo_join_goal: s.demo_join_goal,
    }
}

/// The snapshot file a corpus persists to inside a data directory.
pub fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("corpus-{name}.qbes"))
}

fn load_snapshot(path: &Path, name: &str) -> Result<Corpus, String> {
    let backend = FileBackend::open(path)
        .map_err(|e| format!("cannot open snapshot {}: {e}", path.display()))?;
    let reader =
        SnapshotReader::open(backend).map_err(|e| format!("snapshot {}: {e}", path.display()))?;
    let snap =
        CorpusSnapshot::decode(&reader).map_err(|e| format!("snapshot {}: {e}", path.display()))?;
    if snap.name != name {
        return Err(format!(
            "snapshot {} holds corpus {:?}, expected {:?}",
            path.display(),
            snap.name,
            name
        ));
    }
    Ok(snapshot_to_corpus(snap))
}

fn save_snapshot(dir: &Path, path: &Path, corpus: &Corpus) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    snapshot::write_atomic(path, &corpus_to_snapshot(corpus).encode())
}

/// Per-name slot: one initialiser runs, everyone else blocks on the cell and shares the result.
type Cell = Arc<OnceLock<Result<Arc<Corpus>, String>>>;

/// Cache of built corpora, shared by all connections of one server; optionally backed by
/// snapshot files in a data directory.
#[derive(Debug, Default)]
pub struct CorpusStore {
    dir: Option<PathBuf>,
    cells: Mutex<HashMap<String, Cell>>,
}

impl CorpusStore {
    /// An in-memory store (no persistence).
    pub fn new() -> CorpusStore {
        CorpusStore::default()
    }

    /// A store that opens `corpus-<name>.qbes` snapshots from `dir` when present and writes
    /// them after first builds. `None` behaves like [`CorpusStore::new`].
    pub fn with_dir(dir: Option<PathBuf>) -> CorpusStore {
        CorpusStore {
            dir,
            cells: Mutex::new(HashMap::new()),
        }
    }

    /// The shared corpus for `name`, loading its snapshot or building it on first request.
    ///
    /// Exactly one caller runs the expensive load/build per name — the map lock is held only
    /// long enough to hand out the per-name cell, and `OnceLock::get_or_init` makes every
    /// concurrent first request for the same corpus block on that one initialiser and share
    /// its `Arc` instead of racing to build twice (or serialising *different* corpora behind
    /// one global lock).
    pub fn get_or_load(&self, name: &str) -> Result<Arc<Corpus>, CorpusError> {
        // Validate before inserting a cell so garbage names cannot grow the map.
        if !CORPUS_NAMES.contains(&name) {
            return Err(CorpusError::Unknown);
        }
        let cell: Cell = {
            let mut cells = self
                .cells
                .lock()
                .expect("corpus cell map lock never poisoned");
            cells.entry(name.to_string()).or_default().clone()
        };
        cell.get_or_init(|| self.acquire(name))
            .clone()
            .map_err(CorpusError::Load)
    }

    /// The shared corpus for `name`, or `None` for unknown names and failed loads.
    pub fn get_or_build(&self, name: &str) -> Option<Arc<Corpus>> {
        self.get_or_load(name).ok()
    }

    fn acquire(&self, name: &str) -> Result<Arc<Corpus>, String> {
        let built =
            || Arc::new(build_corpus(name).expect("name already validated against CORPUS_NAMES"));
        let Some(dir) = &self.dir else {
            return Ok(built());
        };
        let path = snapshot_path(dir, name);
        if path.exists() {
            return load_snapshot(&path, name).map(Arc::new);
        }
        let corpus = built();
        if let Err(e) = save_snapshot(dir, &path, &corpus) {
            // Persistence is best-effort for corpora (they are deterministic recipes);
            // serving proceeds from the in-memory build.
            eprintln!(
                "qbe-server: warning: could not write snapshot {}: {e}",
                path.display()
            );
        }
        Ok(corpus)
    }

    /// Number of distinct corpora successfully loaded or built so far.
    pub fn built(&self) -> usize {
        self.cells
            .lock()
            .expect("corpus cell map lock never poisoned")
            .values()
            .filter(|cell| matches!(cell.get(), Some(Ok(_))))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_data_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "qbe-server-corpus-{tag}-{}-{n}",
            std::process::id()
        ))
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(build_corpus("gigantic").is_none());
        assert!(CorpusStore::new().get_or_build("gigantic").is_none());
        assert!(matches!(
            CorpusStore::new().get_or_load("gigantic"),
            Err(CorpusError::Unknown)
        ));
    }

    #[test]
    fn store_builds_once_and_shares() {
        let store = CorpusStore::new();
        let a = store.get_or_build("tiny").unwrap();
        let b = store.get_or_build("tiny").unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "second request must share, not rebuild"
        );
        assert!(Arc::ptr_eq(&a.docs, &b.docs));
        assert_eq!(store.built(), 1);
    }

    #[test]
    fn concurrent_first_requests_share_one_build() {
        let store = CorpusStore::new();
        let corpora: Vec<Arc<Corpus>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| store.get_or_load("tiny").unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for c in &corpora[1..] {
            assert!(
                Arc::ptr_eq(&corpora[0], c),
                "all concurrent callers must share the single build"
            );
        }
        assert_eq!(store.built(), 1, "exactly one build ran");
    }

    #[test]
    fn data_dir_round_trips_a_corpus_through_its_snapshot() {
        let dir = temp_data_dir("roundtrip");
        let built = CorpusStore::with_dir(Some(dir.clone()))
            .get_or_load("tiny")
            .unwrap();
        let path = snapshot_path(&dir, "tiny");
        assert!(path.exists(), "first build persists the snapshot");

        let loaded = CorpusStore::with_dir(Some(dir.clone()))
            .get_or_load("tiny")
            .unwrap();
        assert_eq!(loaded.name, built.name);
        assert_eq!(*loaded.docs, *built.docs);
        assert_eq!(loaded.left.tuples(), built.left.tuples());
        assert_eq!(loaded.right.tuples(), built.right.tuples());
        assert_eq!(loaded.demo_join_goal, built.demo_join_goal);
        assert_eq!(loaded.graph.node_count(), built.graph.node_count());
        assert_eq!(
            loaded.typed_index.label_count(),
            built.typed_index.label_count()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_reported_not_silently_rebuilt() {
        let dir = temp_data_dir("corrupt");
        CorpusStore::with_dir(Some(dir.clone()))
            .get_or_load("tiny")
            .unwrap();
        let path = snapshot_path(&dir, "tiny");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X'; // break the magic
        std::fs::write(&path, &bytes).unwrap();
        match CorpusStore::with_dir(Some(dir.clone())).get_or_load("tiny") {
            Err(CorpusError::Load(msg)) => {
                assert!(msg.contains("magic"), "message names the corruption: {msg}");
                assert!(
                    msg.contains("corpus-tiny.qbes"),
                    "message names the file: {msg}"
                );
            }
            other => panic!("expected a load error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_holding_the_wrong_corpus_is_rejected() {
        let dir = temp_data_dir("wrongname");
        CorpusStore::with_dir(Some(dir.clone()))
            .get_or_load("tiny")
            .unwrap();
        // Masquerade the tiny snapshot as "small".
        std::fs::rename(snapshot_path(&dir, "tiny"), snapshot_path(&dir, "small")).unwrap();
        match CorpusStore::with_dir(Some(dir.clone())).get_or_load("small") {
            Err(CorpusError::Load(msg)) => {
                assert!(
                    msg.contains("expected"),
                    "message explains the mismatch: {msg}"
                );
            }
            other => panic!("expected a load error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_corpus_has_all_substrates() {
        let c = build_corpus("tiny").unwrap();
        assert_eq!(c.docs.len(), c.indexes.len());
        assert!(c.xml_nodes() > 50, "XMark tiny is small but not trivial");
        assert!(c.graph.node_count() >= 10);
        assert!(!c.left.is_empty() && !c.right.is_empty());
        assert_eq!(c.graph_index.node_count(), c.graph.node_count());
        assert_eq!(c.typed_graph.node_count(), c.graph.node_count());
        assert_eq!(c.typed_graph.edge_count() * 2, c.graph.edge_count());
        assert!(c.typed_graph.edge_alphabet().len() > 1);
    }

    #[test]
    fn corpora_are_deterministic() {
        let a = build_corpus("tiny").unwrap();
        let b = build_corpus("tiny").unwrap();
        assert_eq!(a.docs, b.docs);
        assert_eq!(a.left.tuples(), b.left.tuples());
    }
}
