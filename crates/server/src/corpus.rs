//! Named shared corpora: one immutable, fully indexed instance per name, built once and shared
//! by every connection.
//!
//! A learning service over "very large databases" (the paper's motivating setting) cannot
//! rebuild documents and indexes per user: the whole point of `NodeIndex`/`GraphIndex` is that
//! they are immutable and `Arc`-shareable. The [`CorpusStore`] realises that: the first
//! `CORPUS <name>` builds the instance (XMark documents + per-document [`NodeIndex`],
//! geographical graph + [`GraphIndex`], relation pair); every later request — on any
//! connection, for any session — receives clones of the same `Arc`s.
//!
//! Names are deterministic recipes, not uploads: a client and a test referring to `"tiny"` see
//! byte-identical data without shipping it over the wire (the XML half is
//! [`qbe_core::xml::xmark::corpus_by_name`]).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use qbe_core::graph::{generate_geo_graph, typed_road_view, GeoConfig, GraphIndex, PropertyGraph};
use qbe_core::relational::{generate_join_instance, JoinInstanceConfig, JoinPredicate, Relation};
use qbe_core::xml::xmark::corpus_by_name;
use qbe_core::xml::{NodeIndex, XmlTree};

/// The corpus names [`build_corpus`] understands, smallest first.
pub const CORPUS_NAMES: &[&str] = &["tiny", "small"];

/// One named instance: every substrate a session might learn over, pre-indexed and shareable.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The corpus name.
    pub name: String,
    /// XML documents (XMark) for twig sessions.
    pub docs: Arc<Vec<XmlTree>>,
    /// One [`NodeIndex`] per document, aligned with `docs`.
    pub indexes: Arc<Vec<NodeIndex>>,
    /// Geographical property graph for path sessions.
    pub graph: Arc<PropertyGraph>,
    /// Label-interned adjacency of `graph`.
    pub graph_index: Arc<GraphIndex>,
    /// The typed road view of `graph` (edge label = road type, one direction per road) —
    /// what `graph` model sessions (RPQ/2RPQ/CRPQ) learn over.
    pub typed_graph: Arc<PropertyGraph>,
    /// Label-interned adjacency of `typed_graph` (with reverse-successor bitsets for `ℓ⁻`).
    pub typed_index: Arc<GraphIndex>,
    /// Left relation for join sessions.
    pub left: Arc<Relation>,
    /// Right relation for join sessions.
    pub right: Arc<Relation>,
    /// The join generator's reference predicate. Simulated clients (tests, benches, `--smoke`)
    /// use it as their hidden intent; real clients bring their own and never see this one.
    pub demo_join_goal: JoinPredicate,
}

impl Corpus {
    /// Total XML node count, the denominator twig sessions report against.
    pub fn xml_nodes(&self) -> usize {
        self.docs.iter().map(XmlTree::size).sum()
    }
}

/// Build a named corpus from scratch. `None` for unknown names (see [`CORPUS_NAMES`]).
///
/// Deterministic: every invocation of the same name yields identical data, which is what lets
/// remote clients act as their own oracle — they rebuild the corpus locally and evaluate their
/// goal query against it instead of downloading documents.
pub fn build_corpus(name: &str) -> Option<Corpus> {
    let (xmark, cities, rows) = match name {
        "tiny" => ("xmark-tiny", 10, 12),
        "small" => ("xmark-small", 16, 30),
        _ => return None,
    };
    let docs = Arc::new(corpus_by_name(xmark).expect("every corpus maps to a named XMark corpus"));
    let indexes = Arc::new(docs.iter().map(NodeIndex::build).collect::<Vec<_>>());
    let graph = Arc::new(generate_geo_graph(&GeoConfig {
        cities,
        connectivity: 3,
        ..Default::default()
    }));
    let graph_index = Arc::new(GraphIndex::build(&graph));
    let typed_graph = Arc::new(typed_road_view(&graph));
    let typed_index = Arc::new(GraphIndex::build(&typed_graph));
    let (left, right, demo_join_goal) = generate_join_instance(&JoinInstanceConfig {
        left_rows: rows,
        right_rows: rows,
        extra_attributes: 2,
        domain_size: 6,
        seed: 11,
    });
    Some(Corpus {
        name: name.to_string(),
        docs,
        indexes,
        graph,
        graph_index,
        typed_graph,
        typed_index,
        left: Arc::new(left),
        right: Arc::new(right),
        demo_join_goal,
    })
}

/// Cache of built corpora, shared by all connections of one server.
#[derive(Debug, Default)]
pub struct CorpusStore {
    cache: Mutex<HashMap<String, Arc<Corpus>>>,
}

impl CorpusStore {
    /// An empty store.
    pub fn new() -> CorpusStore {
        CorpusStore::default()
    }

    /// The shared corpus for `name`, building it on first request. `None` for unknown names.
    ///
    /// Building happens under the cache lock: concurrent first requests for the same corpus
    /// would otherwise race to do the expensive generation twice, and "one builder, everyone
    /// else waits and shares" is exactly the contract the service wants.
    pub fn get_or_build(&self, name: &str) -> Option<Arc<Corpus>> {
        let mut cache = self.cache.lock().expect("corpus cache lock never poisoned");
        if let Some(corpus) = cache.get(name) {
            return Some(corpus.clone());
        }
        let corpus = Arc::new(build_corpus(name)?);
        cache.insert(name.to_string(), corpus.clone());
        Some(corpus)
    }

    /// Number of distinct corpora built so far.
    pub fn built(&self) -> usize {
        self.cache
            .lock()
            .expect("corpus cache lock never poisoned")
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_names_are_rejected() {
        assert!(build_corpus("gigantic").is_none());
        assert!(CorpusStore::new().get_or_build("gigantic").is_none());
    }

    #[test]
    fn store_builds_once_and_shares() {
        let store = CorpusStore::new();
        let a = store.get_or_build("tiny").unwrap();
        let b = store.get_or_build("tiny").unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "second request must share, not rebuild"
        );
        assert!(Arc::ptr_eq(&a.docs, &b.docs));
        assert_eq!(store.built(), 1);
    }

    #[test]
    fn tiny_corpus_has_all_substrates() {
        let c = build_corpus("tiny").unwrap();
        assert_eq!(c.docs.len(), c.indexes.len());
        assert!(c.xml_nodes() > 50, "XMark tiny is small but not trivial");
        assert!(c.graph.node_count() >= 10);
        assert!(!c.left.is_empty() && !c.right.is_empty());
        assert_eq!(c.graph_index.node_count(), c.graph.node_count());
        assert_eq!(c.typed_graph.node_count(), c.graph.node_count());
        assert_eq!(c.typed_graph.edge_count() * 2, c.graph.edge_count());
        assert!(c.typed_graph.edge_alphabet().len() > 1);
    }

    #[test]
    fn corpora_are_deterministic() {
        let a = build_corpus("tiny").unwrap();
        let b = build_corpus("tiny").unwrap();
        assert_eq!(a.docs, b.docs);
        assert_eq!(a.left.tuples(), b.left.tuples());
    }
}
