//! The TCP service: thread-per-connection over `std::net`, one [`SessionRegistry`] and one
//! [`CorpusStore`] shared by all connections.
//!
//! Concurrency model (the oxigraph-style "thin wire layer over shared storage" shape):
//!
//! * the **accept loop** runs on its own thread and applies the backpressure gate — beyond
//!   [`ServerConfig::max_connections`] live connections, a new client is greeted with
//!   `-ERR server at capacity` and closed immediately, so overload degrades crisply instead of
//!   queueing unboundedly;
//! * each **connection thread** owns its socket and per-connection state (attached corpus,
//!   open session id); everything cross-connection lives behind the registry's shard mutexes
//!   or the corpus cache mutex;
//! * **framing** is one bounded line per request ([`read_line_bounded`]): a line longer than
//!   [`crate::protocol::MAX_LINE_BYTES`] or an idle socket
//!   (`read_timeout`) terminates the connection with an explanatory `-ERR`;
//! * **graceful shutdown** ([`ServerHandle::shutdown`]) stops the accept loop, shuts down
//!   every live socket (which wakes any blocked read), joins all threads, and reports
//!   still-open sessions as abandoned in the metrics.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use qbe_core::graph::{PathStrategy, QueryClass};
use qbe_core::relational::Strategy;
use qbe_core::session::InteractiveLearner;
use qbe_core::twig::NodeStrategy;
use qbe_core::{
    GraphQueryInteractive, JoinInteractive, PathInteractive, SessionConfig, TwigInteractive,
    STRATEGY_NAMES,
};

use crate::corpus::{Corpus, CorpusStore, CORPUS_NAMES};
use crate::protocol::{parse_command, render_fields, Command, Model, MAX_LINE_BYTES};
use crate::registry::SessionRegistry;

/// Tunables of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port; see [`ServerHandle::addr`]).
    pub addr: String,
    /// Live-connection cap; connections beyond it are rejected at accept time.
    pub max_connections: usize,
    /// Idle cap on one read: a connection that stays silent this long is closed.
    pub read_timeout: Duration,
    /// Cap on one blocking write.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
        }
    }
}

struct Shared {
    config: ServerConfig,
    registry: SessionRegistry,
    store: CorpusStore,
    shutdown: AtomicBool,
    active: AtomicUsize,
    /// One socket clone per live connection, so shutdown can wake blocked reads.
    live_streams: Mutex<HashMap<u64, TcpStream>>,
    /// Join handles of finished-or-running connection threads, reaped on shutdown.
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
}

/// A running server; dropping it without calling [`shutdown`](Self::shutdown) leaves the
/// threads serving until the process exits (what the standalone binary wants).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Bind and start serving. Returns as soon as the listener is live.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener =
        TcpListener::bind(
            config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address")
            })?,
        )?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        config,
        registry: SessionRegistry::new(),
        store: CorpusStore::new(),
        shutdown: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        live_streams: Mutex::new(HashMap::new()),
        conn_threads: Mutex::new(Vec::new()),
        next_conn: AtomicU64::new(1),
    });
    let accept_shared = shared.clone();
    let accept_thread = std::thread::Builder::new()
        .name("qbe-server-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of live connections.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Stop accepting, wake and join every connection thread, and return once the server is
    /// fully quiesced. Open sessions are reported as abandoned.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection; it checks the flag first thing.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Wake every connection blocked in a read.
        for (_, stream) in self
            .shared
            .live_streams
            .lock()
            .expect("stream map lock never poisoned")
            .drain()
        {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let threads: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .shared
                .conn_threads
                .lock()
                .expect("thread list lock never poisoned"),
        );
        for t in threads {
            let _ = t.join();
        }
    }

    /// Block until the accept loop exits (the standalone binary's serve-forever mode).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        // The protocol is many tiny request/response lines: without TCP_NODELAY, Nagle's
        // algorithm + delayed ACKs add ~40 ms to every round trip.
        let _ = stream.set_nodelay(true);
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
            let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
            let _ = writeln!(stream, "-ERR server at capacity, retry later");
            continue; // dropped ⇒ closed
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared
                .live_streams
                .lock()
                .expect("stream map lock never poisoned")
                .insert(conn_id, clone);
        }
        let conn_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name(format!("qbe-server-conn-{conn_id}"))
            .spawn(move || {
                // Drop guard: the capacity slot and stream-map entry are released even if the
                // handler panics — a panicking connection must not wedge the admission gate.
                struct ConnGuard {
                    shared: Arc<Shared>,
                    conn_id: u64,
                }
                impl Drop for ConnGuard {
                    fn drop(&mut self) {
                        if let Ok(mut streams) = self.shared.live_streams.lock() {
                            streams.remove(&self.conn_id);
                        }
                        self.shared.active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                let _guard = ConnGuard {
                    shared: conn_shared.clone(),
                    conn_id,
                };
                handle_connection(&conn_shared, stream, conn_id);
            });
        match handle {
            Ok(h) => {
                let mut threads = shared
                    .conn_threads
                    .lock()
                    .expect("thread list lock never poisoned");
                // Reap finished connections as new ones arrive, so the serve-forever mode does
                // not accumulate one JoinHandle per connection ever served.
                threads.retain(|t| !t.is_finished());
                threads.push(h);
            }
            Err(_) => {
                // Thread spawn failed: undo the admission.
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared
                    .live_streams
                    .lock()
                    .expect("stream map lock never poisoned")
                    .remove(&conn_id);
            }
        }
    }
}

/// Why [`read_line_bounded`] stopped.
#[derive(Debug)]
pub enum LineError {
    /// Peer closed the connection (possibly mid-line).
    Closed,
    /// No complete line arrived within the socket's read timeout.
    TimedOut,
    /// The line exceeded the byte cap before a newline appeared.
    TooLong,
    /// Any other I/O failure.
    Io(io::Error),
}

/// Read one `\n`-terminated line of at most `max` bytes (newline excluded), without ever
/// buffering more than `max` bytes of an unterminated line.
pub fn read_line_bounded(reader: &mut impl BufRead, max: usize) -> Result<String, LineError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(b) => b,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(LineError::TimedOut)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(LineError::Io(e)),
        };
        if available.is_empty() {
            return Err(LineError::Closed);
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            // CRLF framing: the \r is part of the line ending, not the content, so strip it
            // before enforcing the content cap.
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if line.len() > max {
                return Err(LineError::TooLong);
            }
            return Ok(String::from_utf8_lossy(&line).into_owned());
        }
        let n = available.len();
        line.extend_from_slice(available);
        reader.consume(n);
        // Mid-line the cap allows one extra byte: a \r that may turn out to be CRLF framing
        // once the \n arrives.
        if line.len() > max + 1 {
            return Err(LineError::TooLong);
        }
    }
}

/// Per-connection protocol state.
struct Connection<'a> {
    shared: &'a Shared,
    corpus: Option<Arc<Corpus>>,
    session: Option<u64>,
}

impl Connection<'_> {
    fn close_session(&mut self) {
        if let Some(id) = self.session.take() {
            self.shared.registry.close(id);
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream, _conn_id: u64) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut conn = Connection {
        shared,
        corpus: None,
        session: None,
    };
    if writeln!(writer, "+OK qbe-server ready").is_err() {
        return;
    }
    loop {
        let line = match read_line_bounded(&mut reader, MAX_LINE_BYTES) {
            Ok(line) => line,
            Err(LineError::Closed) => break,
            Err(LineError::TimedOut) => {
                if !shared.shutdown.load(Ordering::SeqCst) {
                    let _ = writeln!(writer, "-ERR idle timeout, closing");
                }
                break;
            }
            Err(LineError::TooLong) => {
                // The rest of the oversized line is unread: the stream is desynchronised, so
                // closing is the only safe continuation.
                let _ = writeln!(writer, "-ERR line exceeds {MAX_LINE_BYTES} bytes, closing");
                break;
            }
            Err(LineError::Io(_)) => break,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = writeln!(writer, "-ERR server shutting down");
            break;
        }
        let (reply, quit) = respond(&mut conn, &line);
        if writeln!(writer, "{reply}").is_err() {
            break;
        }
        if quit {
            break;
        }
    }
    conn.close_session();
}

/// Produce the one-line reply to one request line, plus whether the connection should close.
fn respond(conn: &mut Connection<'_>, line: &str) -> (String, bool) {
    let command = match parse_command(line) {
        Ok(c) => c,
        Err(e) => return (format!("-ERR {e}"), false),
    };
    let reply = match command {
        Command::Hello => format!(
            "+OK qbe-server proto=1.2 models=twig,path,join,graph classes=rpq,2rpq,crpq corpora={} strategies={} options=strategy,budget,seed,class",
            CORPUS_NAMES.join(","),
            STRATEGY_NAMES.join(","),
        ),
        Command::Corpus(name) => match conn.shared.store.get_or_build(&name) {
            None => format!(
                "-ERR unknown corpus {name:?} (known: {})",
                CORPUS_NAMES.join(",")
            ),
            Some(corpus) => {
                let summary = render_fields(&[
                    ("name", corpus.name.clone()),
                    ("docs", corpus.docs.len().to_string()),
                    ("xml_nodes", corpus.xml_nodes().to_string()),
                    ("graph_nodes", corpus.graph.node_count().to_string()),
                    (
                        "tuples",
                        format!("{}x{}", corpus.left.len(), corpus.right.len()),
                    ),
                ]);
                conn.corpus = Some(corpus);
                format!("+OK corpus {summary}")
            }
        },
        Command::Start { model, params } => match conn.corpus.clone() {
            None => "-ERR no corpus attached (use CORPUS <name>)".to_string(),
            Some(corpus) => match build_learner(&corpus, model, &params) {
                Err(why) => format!("-ERR {why}"),
                Ok(learner) => {
                    conn.close_session();
                    let id = conn.shared.registry.open(learner);
                    conn.session = Some(id);
                    format!("+OK session id={id} model={model}")
                }
            },
        },
        Command::Ask => match conn.session {
            None => "-ERR no open session (use START)".to_string(),
            Some(id) => {
                let proposed = conn.shared.registry.with_session(id, |l| {
                    l.propose()
                        .map(|q| q.to_string())
                        .ok_or_else(|| (l.questions(), l.consistent()))
                });
                match proposed {
                    None => "-ERR session vanished".to_string(),
                    Some(Ok(question)) => format!("+ASK {question}"),
                    Some(Err((questions, consistent))) => {
                        format!("+DONE questions={questions} consistent={consistent}")
                    }
                }
            }
        },
        Command::Answer(positive) => match conn.session {
            None => "-ERR no open session (use START)".to_string(),
            Some(id) => match conn
                .shared
                .registry
                .with_session(id, |l| l.answer(positive))
            {
                None => "-ERR session vanished".to_string(),
                Some(Ok(())) => "+OK recorded".to_string(),
                Some(Err(e)) => format!("-ERR {e}"),
            },
        },
        Command::Query => match conn.session {
            None => "-ERR no open session (use START)".to_string(),
            Some(id) => match conn.shared.registry.with_session(id, |l| l.hypothesis()) {
                None => "-ERR session vanished".to_string(),
                Some(None) => "-ERR no hypothesis yet (no positive example)".to_string(),
                Some(Some(text)) => format!("+QUERY {text}"),
            },
        },
        Command::Eval => match conn.session {
            None => "-ERR no open session (use START)".to_string(),
            Some(id) => match conn
                .shared
                .registry
                .with_session(id, |l| l.answer_set_size())
            {
                None => "-ERR session vanished".to_string(),
                Some(n) => format!("+EVAL {n}"),
            },
        },
        Command::Metrics => {
            let metrics = conn.shared.registry.metrics();
            let fields = [
                ("sessions", metrics.sessions.to_string()),
                ("ok", metrics.successes.to_string()),
                ("active", conn.shared.registry.active().to_string()),
                ("total_questions", metrics.total_questions.to_string()),
                (
                    "p50_questions",
                    metrics.p50_questions.unwrap_or(0).to_string(),
                ),
                (
                    "p95_questions",
                    metrics.p95_questions.unwrap_or(0).to_string(),
                ),
                (
                    "mean_questions",
                    format!("{:.2}", metrics.mean_questions().unwrap_or(0.0)),
                ),
                ("throughput_per_s", format!("{:.3}", metrics.throughput())),
            ];
            format!("+METRICS {}", render_fields(&fields))
        }
        Command::Quit => {
            // Close (and report) the session before replying, so a client that QUITs and then
            // probes METRICS on a fresh connection observes its own session.
            conn.close_session();
            return ("+OK bye".to_string(), true);
        }
    };
    (reply, false)
}

use crate::protocol::field_value as param;

fn parse_seed(params: &[(String, String)]) -> Result<u64, String> {
    match param(params, "seed") {
        None => Ok(0),
        Some(s) => s
            .parse()
            .map_err(|_| format!("seed must be a u64, got {s:?}")),
    }
}

/// The common `START` options — `seed=<u64>`, `budget=<n>`, and the model-agnostic half of
/// `strategy=<name>` — folded into a [`SessionConfig`]. Model-specific legacy strategy names
/// are resolved by the caller via `legacy`; anything in neither vocabulary is rejected loudly
/// instead of silently applying defaults.
fn session_config(
    params: &[(String, String)],
    legacy_names: &str,
    legacy: impl Fn(&str, u64) -> Option<Box<dyn qbe_core::Strategy>>,
) -> Result<SessionConfig, String> {
    let seed = parse_seed(params)?;
    let mut config = SessionConfig::new().seed(seed);
    if let Some(b) = param(params, "budget") {
        let budget: usize = b
            .parse()
            .map_err(|_| format!("budget must be a usize, got {b:?}"))?;
        config = config.budget(budget);
    }
    match param(params, "strategy") {
        None => Ok(config), // the model's flagship default
        Some(name) => {
            if let Some(strategy) = legacy(name, seed) {
                return Ok(config.strategy(strategy));
            }
            config.strategy_named(name).map_err(|_| {
                format!(
                    "unknown strategy, expected one of: {legacy_names}|{}",
                    STRATEGY_NAMES.join("|")
                )
            })
        }
    }
}

/// Build the model-specific learner a `START` command asks for.
fn build_learner(
    corpus: &Corpus,
    model: Model,
    params: &[(String, String)],
) -> Result<Box<dyn InteractiveLearner>, String> {
    match model {
        Model::Twig => {
            let config = session_config(
                params,
                "document-order|shallow-first|label-affinity",
                |name, seed| {
                    let preset = match name {
                        "document-order" => NodeStrategy::DocumentOrder,
                        "shallow-first" => NodeStrategy::ShallowFirst,
                        "label-affinity" => NodeStrategy::LabelAffinity,
                        _ => return None,
                    };
                    Some(preset.strategy(seed))
                },
            )?;
            Ok(Box::new(TwigInteractive::with_config(
                corpus.docs.clone(),
                corpus.indexes.clone(),
                config,
            )))
        }
        Model::Path => {
            let config = session_config(
                params,
                "shortest-first|halving|workload-prior",
                |name, seed| {
                    let preset = match name {
                        "shortest-first" => PathStrategy::ShortestFirst,
                        "halving" => PathStrategy::Halving,
                        "workload-prior" => PathStrategy::WorkloadPrior,
                        _ => return None,
                    };
                    Some(preset.strategy(seed))
                },
            )?;
            let from_name = param(params, "from").unwrap_or("city0");
            let to_name = param(params, "to").unwrap_or("city5");
            let resolve = |name: &str| {
                corpus
                    .graph
                    .find_node_by_property("name", name)
                    .ok_or_else(|| format!("unknown city {name:?}"))
            };
            let from = resolve(from_name)?;
            let to = resolve(to_name)?;
            let max_edges = match param(params, "max_edges") {
                None => 6,
                Some(s) => s
                    .parse()
                    .map_err(|_| format!("max_edges must be a usize, got {s:?}"))?,
            };
            Ok(Box::new(PathInteractive::with_config(
                corpus.graph.clone(),
                from,
                to,
                max_edges,
                config,
            )))
        }
        Model::Join => {
            let config =
                session_config(params, "most-specific-first|halve-lattice", |name, seed| {
                    let preset = match name {
                        "most-specific-first" => Strategy::MostSpecificFirst,
                        "halve-lattice" => Strategy::HalveLattice,
                        _ => return None,
                    };
                    Some(preset.strategy(seed))
                })?;
            Ok(Box::new(JoinInteractive::with_config(
                corpus.left.clone(),
                corpus.right.clone(),
                config,
            )))
        }
        Model::Graph => {
            let config = session_config(params, "halving", |_, _| None)?;
            let class = match param(params, "class") {
                None => QueryClass::Rpq,
                Some(name) => QueryClass::parse(name)
                    .ok_or_else(|| format!("unknown class {name:?}, expected rpq|2rpq|crpq"))?,
            };
            Ok(Box::new(GraphQueryInteractive::with_config(
                corpus.typed_graph.clone(),
                class,
                config,
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_reader_enforces_the_cap() {
        let mut ok = io::Cursor::new(b"HELLO\r\nASK\n".to_vec());
        assert_eq!(read_line_bounded(&mut ok, 16).unwrap(), "HELLO");
        assert_eq!(read_line_bounded(&mut ok, 16).unwrap(), "ASK");
        assert!(matches!(
            read_line_bounded(&mut ok, 16),
            Err(LineError::Closed)
        ));

        // Oversized despite a newline: rejected.
        let mut long = io::Cursor::new(
            vec![b'a'; 64]
                .into_iter()
                .chain(*b"\n")
                .collect::<Vec<u8>>(),
        );
        assert!(matches!(
            read_line_bounded(&mut long, 16),
            Err(LineError::TooLong)
        ));

        // Oversized with no newline at all: rejected without buffering the flood.
        let mut flood = io::Cursor::new(vec![b'b'; 1 << 20]);
        assert!(matches!(
            read_line_bounded(&mut flood, 16),
            Err(LineError::TooLong)
        ));
    }

    #[test]
    fn carriage_return_does_not_count_against_the_cap() {
        // Exactly max content bytes, CRLF-framed: the \r is line ending, not content.
        let mut at_cap = io::Cursor::new([vec![b'x'; 16], b"\r\n".to_vec()].concat());
        assert_eq!(read_line_bounded(&mut at_cap, 16).unwrap(), "x".repeat(16));
        // One content byte over, LF-framed: still rejected.
        let mut over = io::Cursor::new([vec![b'x'; 17], b"\n".to_vec()].concat());
        assert!(matches!(
            read_line_bounded(&mut over, 16),
            Err(LineError::TooLong)
        ));
    }

    #[test]
    fn learner_factory_validates_parameters() {
        let corpus = crate::corpus::build_corpus("tiny").unwrap();
        assert!(build_learner(&corpus, Model::Twig, &[]).is_ok());
        assert!(build_learner(
            &corpus,
            Model::Twig,
            &[("strategy".into(), "alphabetical".into())]
        )
        .is_err());
        assert!(build_learner(&corpus, Model::Join, &[("seed".into(), "x".into())]).is_err());
        assert!(
            build_learner(&corpus, Model::Path, &[("from".into(), "atlantis".into())]).is_err()
        );
        let ok = build_learner(&corpus, Model::Path, &[("to".into(), "city3".into())]).unwrap();
        assert_eq!(ok.kind(), "path");
        let graph =
            build_learner(&corpus, Model::Graph, &[("class".into(), "2rpq".into())]).unwrap();
        assert_eq!(graph.kind(), "graph");
        assert!(
            build_learner(&corpus, Model::Graph, &[]).is_ok(),
            "class defaults to rpq"
        );
        assert!(
            build_learner(&corpus, Model::Graph, &[("class".into(), "sparql".into())]).is_err()
        );
    }
}
