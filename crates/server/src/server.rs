//! The TCP service: two engines over one [`SessionRegistry`] and one [`CorpusStore`].
//!
//! * [`Engine::Event`] (the default) — a nonblocking readiness loop (the private
//!   `reactor` module) owns every socket and its buffers, and a small fixed worker pool
//!   (the `workers` module) executes session steps, so ten thousand idle connections cost
//!   ten thousand fds and *zero* threads, and one slow session step never pins an OS thread
//!   per connection.
//! * [`Engine::Blocking`] — the original thread-per-connection service, retained as the
//!   executable specification of the protocol behaviour (the differential loopback test runs
//!   the same transcript against both engines and compares replies byte for byte).
//!
//! Both engines share this module's protocol core: `ProtoState` (per-connection corpus +
//! session), `respond` (one request line → one reply line), [`read_line_bounded`] framing,
//! and the accept-error classification ([`classify_accept_error`], [`AcceptBackoff`]) that
//! keeps a failing `accept(2)` — EMFILE fd exhaustion, aborted handshakes — from busy-spinning
//! the accept path at 100% CPU.
//!
//! Connection-handling guarantees (each one a regression test in `tests/`):
//!
//! * **total per-line deadline** — a client trickling one byte per `read_timeout − ε` cannot
//!   hold a connection forever: the deadline covers the *whole line*, not one `read` call;
//! * **nonblocking capacity rejection** — the at-capacity `-ERR` is written best-effort on a
//!   nonblocking socket, so a rejected client that never reads cannot stall later accepts;
//! * **bounded framing** — a line longer than [`crate::protocol::MAX_LINE_BYTES`] terminates
//!   the connection with an explanatory `-ERR`;
//! * **graceful shutdown** ([`ServerHandle::shutdown`]) quiesces either engine and reports
//!   still-open sessions as abandoned in the metrics.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qbe_core::faults::FaultRegistry;
use qbe_core::graph::{PathStrategy, QueryClass};
use qbe_core::relational::Strategy;
use qbe_core::session::InteractiveLearner;
use qbe_core::store::{WalRecord, WalWriter};
use qbe_core::twig::NodeStrategy;
use qbe_core::{
    GraphQueryInteractive, JoinInteractive, PathInteractive, SessionConfig, TwigInteractive,
    STRATEGY_NAMES,
};

use crate::corpus::{Corpus, CorpusError, CorpusStore, CORPUS_NAMES};
use crate::protocol::{parse_command, render_fields, Command, Model, MAX_LINE_BYTES};
use crate::registry::SessionRegistry;

/// Which serving engine [`spawn`] starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Nonblocking readiness loop + worker pool (the default).
    Event,
    /// Thread-per-connection over blocking `std::net` — the executable spec.
    Blocking,
}

impl Engine {
    /// Canonical lower-case name (the `--engine` CLI vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Event => "event",
            Engine::Blocking => "blocking",
        }
    }

    /// Parse an engine name.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "event" => Some(Engine::Event),
            "blocking" => Some(Engine::Blocking),
            _ => None,
        }
    }
}

/// Per-session token-bucket rate limit (event engine): a session may burst `burst` sheddable
/// requests, then is refilled at `per_sec` tokens per second. `ASK`/`EVAL` consume a token
/// each; `ANSWER`/`QUIT` (and the other control commands) always pass, so a throttled client
/// can still finish what it started — shedding happens on the expensive, retryable requests.
#[derive(Debug, Clone, Copy)]
pub struct RateLimit {
    /// Bucket capacity: sheddable requests a session may issue back-to-back.
    pub burst: u32,
    /// Refill rate, tokens per second.
    pub per_sec: f64,
}

/// Tunables of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port; see [`ServerHandle::addr`]).
    pub addr: String,
    /// Live-connection cap; connections beyond it are rejected at accept time.
    pub max_connections: usize,
    /// Total deadline for one request line: a connection that has not completed a line this
    /// long after its previous one is closed — trickling bytes does *not* extend it.
    pub read_timeout: Duration,
    /// Cap on one blocking write (blocking engine) / on flushing a pending reply (event
    /// engine, via the per-line deadline).
    pub write_timeout: Duration,
    /// Which engine serves connections.
    pub engine: Engine,
    /// Worker threads executing session steps (event engine only).
    pub workers: usize,
    /// Per-session rate limit (event engine only); `None` disables throttling.
    pub rate_limit: Option<RateLimit>,
    /// Load-shedding threshold (event engine only): when this many requests are already
    /// queued for the worker pool, `ASK`/`EVAL` are shed with a retryable `-ERR` instead of
    /// queueing behind them. `ANSWER`/`QUIT` always pass.
    pub shed_queue_depth: usize,
    /// Directory for corpus snapshots (and the session WAL when [`persist`](Self::persist)
    /// is on). `None` keeps everything in memory.
    pub data_dir: Option<PathBuf>,
    /// Log session lifecycle events to a WAL under [`data_dir`](Self::data_dir) and recover
    /// live sessions from it on boot. Requires `data_dir`.
    pub persist: bool,
    /// Deterministic fault injection (`None` in production). The registry's sites drive
    /// injected latency ([`FAULT_SITE_LATENCY`]), mid-session connection drops
    /// ([`FAULT_SITE_DROP`]) and WAL write/fsync failures; its fire count is the
    /// `faults_injected=` METRICS counter. With a profile attached — even an empty one —
    /// disconnects *detach* sessions instead of closing them, so injected drops are
    /// survivable via `RESUME`.
    pub faults: Option<Arc<FaultRegistry>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            engine: Engine::Event,
            workers: std::thread::available_parallelism()
                .map(|n| n.get().clamp(2, 8))
                .unwrap_or(2),
            rate_limit: None,
            shed_queue_depth: 1024,
            data_dir: None,
            persist: false,
            faults: None,
        }
    }
}

/// Fault site: sleep injected before a request line executes (per-op latency).
/// Configure a `delay_ms` on the site, e.g. `server.latency=0.5:ms=2`.
pub const FAULT_SITE_LATENCY: &str = "server.latency";

/// Fault site: the connection is dropped after an `ASK`/`ANSWER` executes but before its
/// reply is written — the hardest loss for a client to disambiguate, since the answer may
/// or may not have been recorded. The session itself is detached, not closed, so the
/// client can `RESUME` it.
pub const FAULT_SITE_DROP: &str = "server.drop";

/// Everything the protocol core needs to answer a request line, shared by both engines and
/// every worker thread.
pub(crate) struct Service {
    pub(crate) registry: SessionRegistry,
    pub(crate) store: CorpusStore,
    /// The session WAL, present only with `--persist`. Appends happen on worker / connection
    /// threads (never the reactor thread) and are fsync-batched inside the writer.
    wal: Option<Mutex<WalWriter>>,
    /// Set on graceful shutdown: stop writing `Close` records, so sessions open at shutdown
    /// stay resumable after the next boot (only client `QUIT`s and disconnects close durably).
    preserve: AtomicBool,
    /// Deterministic fault injection (from [`ServerConfig::faults`]); `None` in production.
    faults: Option<Arc<FaultRegistry>>,
}

impl Service {
    pub(crate) fn new() -> Service {
        Service {
            registry: SessionRegistry::new(),
            store: CorpusStore::new(),
            wal: None,
            preserve: AtomicBool::new(false),
            faults: None,
        }
    }

    /// Build the service a [`ServerConfig`] asks for: snapshot-backed corpora when
    /// `data_dir` is set, and — with `persist` — WAL recovery of every live session
    /// *before* the listener opens, so the first accepted client can already `RESUME`.
    pub(crate) fn open(config: &ServerConfig) -> io::Result<Service> {
        let store = CorpusStore::with_dir(config.data_dir.clone());
        if !config.persist {
            return Ok(Service {
                store,
                faults: config.faults.clone(),
                ..Service::new()
            });
        }
        let dir = config.data_dir.as_ref().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "--persist requires --data-dir")
        })?;
        std::fs::create_dir_all(dir)?;
        let wal_path = dir.join("sessions.qbew");
        let (records, mut writer) = qbe_core::store::wal::recover(&wal_path).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("cannot recover WAL {}: {e}", wal_path.display()),
            )
        })?;
        let registry = SessionRegistry::new();
        let recovered = crate::persist::replay(&records, &store, &registry).map_err(|why| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("cannot replay WAL {}: {why}", wal_path.display()),
            )
        })?;
        registry.set_recovered(recovered);
        if let Some(faults) = &config.faults {
            writer.set_faults(faults.clone());
        }
        Ok(Service {
            registry,
            store,
            wal: Some(Mutex::new(writer)),
            preserve: AtomicBool::new(false),
            faults: config.faults.clone(),
        })
    }

    /// Server-side faults fired so far (the `faults_injected=` METRICS counter).
    pub(crate) fn faults_injected(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.injected())
    }

    /// With a fault profile attached, disconnects *detach* sessions (leave them resumable)
    /// instead of closing them — an injected drop must be survivable via `RESUME`.
    pub(crate) fn detach_on_disconnect(&self) -> bool {
        self.faults.is_some()
    }

    /// Sleep out any injected per-op latency. Called on worker / connection threads only,
    /// never the reactor thread.
    pub(crate) fn inject_latency(&self) {
        if let Some(delay) = self
            .faults
            .as_ref()
            .and_then(|f| f.delay(FAULT_SITE_LATENCY))
        {
            std::thread::sleep(delay);
        }
    }

    /// Decide whether to drop the connection serving `line` after executing it. Only
    /// `ASK`/`ANSWER` are droppable: they are the mid-session operations a resilient client
    /// must survive losing (and `ANSWER` is the ambiguous one — did it land?).
    pub(crate) fn injected_drop(&self, line: &str) -> bool {
        let Some(faults) = &self.faults else {
            return false;
        };
        let verb = line.split_ascii_whitespace().next().unwrap_or("");
        (verb.eq_ignore_ascii_case("ASK") || verb.eq_ignore_ascii_case("ANSWER"))
            && faults.fire(FAULT_SITE_DROP)
    }

    /// Stop recording `Close` records: sessions still open are being preserved across a
    /// graceful shutdown, not abandoned by their clients.
    pub(crate) fn preserve_sessions(&self) {
        self.preserve.store(true, Ordering::SeqCst);
    }

    fn append(&self, record: &WalRecord) {
        let Some(wal) = &self.wal else { return };
        let result = wal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .append(record);
        match result {
            Ok(()) => self.registry.note_persisted(),
            // Serving continues: durability degrades, correctness of the live session
            // doesn't. The operator sees it on stderr and in a persisted= counter that
            // stops advancing.
            Err(e) => eprintln!("qbe-server: warning: WAL append failed: {e}"),
        }
    }

    pub(crate) fn log_start(
        &self,
        id: u64,
        corpus: &str,
        model: &str,
        params: &[(String, String)],
    ) {
        self.append(&WalRecord::Start {
            session: id,
            corpus: corpus.to_string(),
            model: model.to_string(),
            params: params.to_vec(),
        });
    }

    pub(crate) fn log_answer(&self, id: u64, positive: bool) {
        self.append(&WalRecord::Answer {
            session: id,
            positive,
        });
    }

    pub(crate) fn log_close(&self, id: u64) {
        if self.preserve.load(Ordering::SeqCst) {
            return;
        }
        self.append(&WalRecord::Close { session: id });
        // A Close must not ride the fsync batch: whether the session comes back after a
        // restart depends on exactly this record being durable.
        self.flush_wal();
    }

    /// Flush the WAL's pending fsync batch (up to `sync_every − 1` records otherwise riding
    /// on the OS cache). Returns `true` when pending records were made durable. Called on
    /// session close and graceful shutdown of either engine.
    pub(crate) fn flush_wal(&self) -> bool {
        let Some(wal) = &self.wal else { return false };
        let mut writer = wal.lock().unwrap_or_else(PoisonError::into_inner);
        if writer.pending() == 0 {
            return false;
        }
        match writer.sync() {
            Ok(()) => true,
            Err(e) => {
                eprintln!("qbe-server: warning: WAL flush failed: {e}");
                false
            }
        }
    }
}

struct Shared {
    config: ServerConfig,
    service: Arc<Service>,
    shutdown: AtomicBool,
    active: AtomicUsize,
    /// One socket clone per live connection, so shutdown can wake blocked reads.
    live_streams: Mutex<HashMap<u64, TcpStream>>,
    /// Join handles of finished-or-running connection threads, reaped on shutdown.
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
}

enum EngineHandle {
    Blocking {
        shared: Arc<Shared>,
        accept_thread: Option<JoinHandle<()>>,
    },
    Event(crate::reactor::ReactorHandle),
}

/// A running server; dropping it without calling [`shutdown`](Self::shutdown) leaves the
/// engine serving until the process exits (what the standalone binary wants).
pub struct ServerHandle {
    addr: SocketAddr,
    engine: EngineHandle,
}

/// Bind and start serving with the configured engine. Returns as soon as the listener is live.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    // With persistence on, WAL recovery runs here — before the listener binds — so no client
    // can connect to a server whose sessions are still being reconstructed.
    let service = Arc::new(Service::open(&config)?);
    let listener =
        TcpListener::bind(
            config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address")
            })?,
        )?;
    let addr = listener.local_addr()?;
    let engine = match config.engine {
        Engine::Event => {
            EngineHandle::Event(crate::reactor::spawn_reactor(listener, config, service)?)
        }
        Engine::Blocking => {
            let shared = Arc::new(Shared {
                config,
                service,
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                live_streams: Mutex::new(HashMap::new()),
                conn_threads: Mutex::new(Vec::new()),
                next_conn: AtomicU64::new(1),
            });
            let accept_shared = shared.clone();
            let accept_thread = std::thread::Builder::new()
                .name("qbe-server-accept".to_string())
                .spawn(move || accept_loop(listener, accept_shared))?;
            EngineHandle::Blocking {
                shared,
                accept_thread: Some(accept_thread),
            }
        }
    };
    Ok(ServerHandle { addr, engine })
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of live (admitted) connections.
    pub fn active_connections(&self) -> usize {
        match &self.engine {
            EngineHandle::Blocking { shared, .. } => shared.active.load(Ordering::SeqCst),
            EngineHandle::Event(h) => h.active_connections(),
        }
    }

    /// Stop accepting, wake and join everything, and return once the server is fully
    /// quiesced. Open sessions are reported as abandoned.
    pub fn shutdown(self) {
        match self.engine {
            EngineHandle::Blocking {
                shared,
                mut accept_thread,
            } => {
                // From here on, connection teardown must not write WAL Close records: these
                // sessions are being preserved for the next boot, not abandoned.
                shared.service.preserve_sessions();
                shared.shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop with a throwaway connection; it checks the flag
                // first thing.
                let _ = TcpStream::connect(self.addr);
                if let Some(t) = accept_thread.take() {
                    let _ = t.join();
                }
                // Wake every connection blocked in a read.
                for (_, stream) in shared
                    .live_streams
                    .lock()
                    .expect("stream map lock never poisoned")
                    .drain()
                {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
                let threads: Vec<JoinHandle<()>> = std::mem::take(
                    &mut *shared
                        .conn_threads
                        .lock()
                        .expect("thread list lock never poisoned"),
                );
                for t in threads {
                    let _ = t.join();
                }
                // Every connection thread is done appending: make the WAL tail durable.
                shared.service.flush_wal();
            }
            EngineHandle::Event(mut h) => h.shutdown(),
        }
    }

    /// Block until the engine exits (the standalone binary's serve-forever mode).
    pub fn join(self) {
        match self.engine {
            EngineHandle::Blocking {
                mut accept_thread, ..
            } => {
                if let Some(t) = accept_thread.take() {
                    let _ = t.join();
                }
            }
            EngineHandle::Event(mut h) => h.join(),
        }
    }
}

/// How an `accept(2)` failure should be handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptError {
    /// Back off briefly and retry: resource pressure (EMFILE/ENFILE/ENOBUFS/ENOMEM), an
    /// aborted handshake, or an interrupting signal. Retrying immediately would spin.
    Transient,
    /// The listener itself is broken (EBADF/EINVAL/ENOTSOCK); accepting again can never
    /// succeed, so the accept path should stop.
    Fatal,
}

/// Classify an `accept` error. Unknown errors are treated as transient — with backoff that
/// is always safe, whereas misclassifying EMFILE as fatal would kill the listener exactly
/// when load is highest.
pub fn classify_accept_error(e: &io::Error) -> AcceptError {
    // EBADF(9), EINVAL(22), ENOTSOCK(88/95 dep. platform), EOPNOTSUPP: the listener fd is
    // gone or was never a listener; no amount of retrying helps.
    const FATAL: &[i32] = &[9, 22, 88, 95];
    match e.raw_os_error() {
        Some(code) if FATAL.contains(&code) => AcceptError::Fatal,
        _ => AcceptError::Transient,
    }
}

/// Bounded exponential backoff for transient accept errors: 1 ms doubling to a 500 ms cap,
/// reset by the next successful accept. Keeps a persistently failing `accept` (fd
/// exhaustion) at ~2 wakeups per second instead of a 100%-CPU spin.
#[derive(Debug)]
pub struct AcceptBackoff {
    next: Duration,
}

impl Default for AcceptBackoff {
    fn default() -> Self {
        AcceptBackoff::new()
    }
}

impl AcceptBackoff {
    const FLOOR: Duration = Duration::from_millis(1);
    const CAP: Duration = Duration::from_millis(500);

    /// A fresh backoff at the floor delay.
    pub fn new() -> AcceptBackoff {
        AcceptBackoff { next: Self::FLOOR }
    }

    /// The delay to sleep before the next accept attempt; doubles up to the cap.
    pub fn next_delay(&mut self) -> Duration {
        let delay = self.next;
        self.next = (self.next * 2).min(Self::CAP);
        delay
    }

    /// An accept succeeded: the next failure starts from the floor again.
    pub fn reset(&mut self) {
        self.next = Self::FLOOR;
    }
}

/// Write the at-capacity rejection without ever blocking the accept path: the socket is
/// flipped to nonblocking and the reply is a single best-effort `write`. A fresh socket's
/// send buffer always has room for one short line, so in practice the client still sees the
/// error — but a client that never reads can no longer stall accepts for `write_timeout`.
pub(crate) fn reject_at_capacity(stream: &mut TcpStream) {
    let _ = stream.set_nonblocking(true);
    let _ = stream.write(b"-ERR server at capacity, retry later\n");
    // dropped by the caller ⇒ closed
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut backoff = AcceptBackoff::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                backoff.reset();
                stream
            }
            Err(e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match classify_accept_error(&e) {
                    AcceptError::Transient => {
                        std::thread::sleep(backoff.next_delay());
                        continue;
                    }
                    AcceptError::Fatal => break,
                }
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = stream;
        // The protocol is many tiny request/response lines: without TCP_NODELAY, Nagle's
        // algorithm + delayed ACKs add ~40 ms to every round trip.
        let _ = stream.set_nodelay(true);
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
            shared.service.registry.note_rejected();
            reject_at_capacity(&mut stream);
            continue; // dropped ⇒ closed
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared
                .live_streams
                .lock()
                .expect("stream map lock never poisoned")
                .insert(conn_id, clone);
        }
        let conn_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name(format!("qbe-server-conn-{conn_id}"))
            .spawn(move || {
                // Drop guard: the capacity slot and stream-map entry are released even if the
                // handler panics — a panicking connection must not wedge the admission gate.
                struct ConnGuard {
                    shared: Arc<Shared>,
                    conn_id: u64,
                }
                impl Drop for ConnGuard {
                    fn drop(&mut self) {
                        if let Ok(mut streams) = self.shared.live_streams.lock() {
                            streams.remove(&self.conn_id);
                        }
                        self.shared.active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                let _guard = ConnGuard {
                    shared: conn_shared.clone(),
                    conn_id,
                };
                handle_connection(&conn_shared, stream, conn_id);
            });
        match handle {
            Ok(h) => {
                let mut threads = shared
                    .conn_threads
                    .lock()
                    .expect("thread list lock never poisoned");
                // Reap finished connections as new ones arrive, so the serve-forever mode does
                // not accumulate one JoinHandle per connection ever served.
                threads.retain(|t| !t.is_finished());
                threads.push(h);
            }
            Err(_) => {
                // Thread spawn failed: undo the admission.
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared
                    .live_streams
                    .lock()
                    .expect("stream map lock never poisoned")
                    .remove(&conn_id);
            }
        }
    }
}

/// Why [`read_line_bounded`] stopped.
#[derive(Debug)]
pub enum LineError {
    /// Peer closed the connection (possibly mid-line).
    Closed,
    /// No complete line arrived within the socket's read timeout / the line deadline.
    TimedOut,
    /// The line exceeded the byte cap before a newline appeared.
    TooLong,
    /// Any other I/O failure.
    Io(io::Error),
}

/// One `fill_buf` step of bounded line reading, shared by the per-read-timeout and
/// per-line-deadline variants. `Ok(Some(line))` on a complete line, `Ok(None)` to keep
/// reading.
fn line_step(
    reader: &mut impl BufRead,
    line: &mut Vec<u8>,
    max: usize,
) -> Result<Option<String>, LineError> {
    let available = match reader.fill_buf() {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            return Err(LineError::TimedOut)
        }
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(None),
        Err(e) => return Err(LineError::Io(e)),
    };
    if available.is_empty() {
        return Err(LineError::Closed);
    }
    if let Some(pos) = available.iter().position(|&b| b == b'\n') {
        line.extend_from_slice(&available[..pos]);
        reader.consume(pos + 1);
        // CRLF framing: the \r is part of the line ending, not the content, so strip it
        // before enforcing the content cap.
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        if line.len() > max {
            return Err(LineError::TooLong);
        }
        return Ok(Some(String::from_utf8_lossy(line).into_owned()));
    }
    let n = available.len();
    line.extend_from_slice(available);
    reader.consume(n);
    // Mid-line the cap allows one extra byte: a \r that may turn out to be CRLF framing
    // once the \n arrives.
    if line.len() > max + 1 {
        return Err(LineError::TooLong);
    }
    Ok(None)
}

/// Read one `\n`-terminated line of at most `max` bytes (newline excluded), without ever
/// buffering more than `max` bytes of an unterminated line. Timeout behaviour is whatever
/// the underlying reader's is — **per read call**, so server paths that must bound the whole
/// line use [`read_line_bounded_deadline`] instead.
pub fn read_line_bounded(reader: &mut impl BufRead, max: usize) -> Result<String, LineError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        if let Some(done) = line_step(reader, &mut line, max)? {
            return Ok(done);
        }
    }
}

/// [`read_line_bounded`] under a **total** deadline: the whole line must complete before
/// `deadline`, however slowly its bytes trickle in. This is the slow-loris fix — with a
/// per-read timeout alone, a client sending one byte every `read_timeout − ε` holds its
/// connection (and a capacity slot) forever.
///
/// The stream's read timeout is re-armed to the remaining budget before every read.
pub fn read_line_bounded_deadline(
    reader: &mut BufReader<TcpStream>,
    max: usize,
    deadline: Instant,
) -> Result<String, LineError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(LineError::TimedOut);
        }
        // `fill_buf` only touches the socket when its buffer is empty, so re-arming the
        // timeout here is cheap and always reflects the remaining budget.
        let _ = reader.get_ref().set_read_timeout(Some(deadline - now));
        if let Some(done) = line_step(reader, &mut line, max)? {
            return Ok(done);
        }
    }
}

/// Per-connection protocol state: the attached corpus and the open session. Owned by the
/// connection thread (blocking engine) or checked out into the worker executing the
/// connection's current request (event engine) — never shared, so never locked.
pub(crate) struct ProtoState {
    corpus: Option<Arc<Corpus>>,
    session: Option<u64>,
}

impl ProtoState {
    pub(crate) fn new() -> ProtoState {
        ProtoState {
            corpus: None,
            session: None,
        }
    }

    /// Close (and thereby report) the open session, if any, recording the close durably
    /// unless the service is preserving sessions for a restart.
    pub(crate) fn close_session(&mut self, service: &Service) {
        if let Some(id) = self.session.take() {
            service.registry.close(id);
            service.log_close(id);
        }
    }

    /// Detach from the open session *without* closing it: the session stays live in the
    /// registry for a later `RESUME` from a new connection.
    pub(crate) fn detach(&mut self) -> Option<u64> {
        self.session.take()
    }

    /// Connection teardown. With a fault profile attached the session is detached (injected
    /// drops — server- or client-side — must be survivable via `RESUME`); in production it
    /// is closed, preserving the invariant that a real disconnect abandons the session.
    pub(crate) fn teardown(&mut self, service: &Service) {
        if service.detach_on_disconnect() {
            self.detach();
        } else {
            self.close_session(service);
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream, _conn_id: u64) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut state = ProtoState::new();
    let service = &shared.service;
    let registry = &service.registry;
    if writeln!(writer, "+OK qbe-server ready").is_err() {
        return;
    }
    loop {
        // The deadline covers the whole next line: trickling bytes does not extend it.
        let deadline = Instant::now() + shared.config.read_timeout;
        let line = match read_line_bounded_deadline(&mut reader, MAX_LINE_BYTES, deadline) {
            Ok(line) => line,
            Err(LineError::Closed) => break,
            Err(LineError::TimedOut) => {
                if !shared.shutdown.load(Ordering::SeqCst) {
                    registry.note_timeout();
                    let _ = writeln!(writer, "-ERR idle timeout, closing");
                }
                break;
            }
            Err(LineError::TooLong) => {
                // The rest of the oversized line is unread: the stream is desynchronised, so
                // closing is the only safe continuation.
                let _ = writeln!(writer, "-ERR line exceeds {MAX_LINE_BYTES} bytes, closing");
                break;
            }
            Err(LineError::Io(_)) => break,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = writeln!(writer, "-ERR server shutting down");
            break;
        }
        service.inject_latency();
        // Decide the injected drop before executing, apply it after: the operation lands
        // but its reply is lost — the case a resilient client must disambiguate.
        let dropped = service.injected_drop(&line);
        let (reply, quit) = respond(&shared.service, &mut state, &line);
        if dropped {
            state.detach();
            break;
        }
        if writeln!(writer, "{reply}").is_err() {
            break;
        }
        if quit {
            break;
        }
    }
    state.teardown(service);
}

/// Produce the one-line reply to one request line, plus whether the connection should close.
/// The protocol core both engines execute — byte-identical replies by construction.
pub(crate) fn respond(service: &Service, state: &mut ProtoState, line: &str) -> (String, bool) {
    let registry = &service.registry;
    let command = match parse_command(line) {
        Ok(c) => c,
        Err(e) => return (format!("-ERR {e}"), false),
    };
    let reply = match command {
        Command::Hello => format!(
            "+OK qbe-server proto=1.3 models=twig,path,join,graph classes=rpq,2rpq,crpq corpora={} strategies={} options=strategy,budget,seed,class",
            CORPUS_NAMES.join(","),
            STRATEGY_NAMES.join(","),
        ),
        Command::Corpus(name) => match service.store.get_or_load(&name) {
            Err(CorpusError::Unknown) => format!(
                "-ERR unknown corpus {name:?} (known: {})",
                CORPUS_NAMES.join(",")
            ),
            Err(CorpusError::Load(why)) => format!("-ERR {why}"),
            Ok(corpus) => {
                let summary = render_fields(&[
                    ("name", corpus.name.clone()),
                    ("docs", corpus.docs.len().to_string()),
                    ("xml_nodes", corpus.xml_nodes().to_string()),
                    ("graph_nodes", corpus.graph.node_count().to_string()),
                    (
                        "tuples",
                        format!("{}x{}", corpus.left.len(), corpus.right.len()),
                    ),
                ]);
                state.corpus = Some(corpus);
                format!("+OK corpus {summary}")
            }
        },
        Command::Start { model, params } => match state.corpus.clone() {
            None => "-ERR no corpus attached (use CORPUS <name>)".to_string(),
            Some(corpus) => match build_learner(&corpus, model, &params) {
                Err(why) => format!("-ERR {why}"),
                Ok(learner) => {
                    state.close_session(service);
                    let id = registry.open(learner);
                    service.log_start(id, &corpus.name, model.name(), &params);
                    state.session = Some(id);
                    format!("+OK session id={id} model={model}")
                }
            },
        },
        Command::Resume(id) => match registry.with_session(id, |l| l.kind().to_string()) {
            None => format!("-ERR unknown session {id}"),
            Some(kind) => {
                // Re-RESUME-ing the attached session must not close_session it first —
                // that would remove the very session being resumed.
                if state.session != Some(id) {
                    state.close_session(service);
                    state.session = Some(id);
                    // A cross-connection re-attach is a client retrying after a lost
                    // connection (or a post-restart recovery): the retries= counter.
                    registry.note_retry();
                }
                format!("+OK session id={id} model={kind}")
            }
        },
        Command::Ask => match state.session {
            None => "-ERR no open session (use START)".to_string(),
            Some(id) => {
                let proposed = registry.with_session(id, |l| {
                    l.propose()
                        .map(|q| q.to_string())
                        .ok_or_else(|| (l.questions(), l.consistent()))
                });
                match proposed {
                    None => "-ERR session vanished".to_string(),
                    Some(Ok(question)) => {
                        // Counts the re-ask (same pending question served twice) if this
                        // isn't the first ASK since the last recorded answer.
                        registry.mark_asked(id);
                        format!("+ASK {question}")
                    }
                    Some(Err((questions, consistent))) => {
                        format!("+DONE questions={questions} consistent={consistent}")
                    }
                }
            }
        },
        Command::Answer(positive) => match state.session {
            None => "-ERR no open session (use START)".to_string(),
            Some(id) => match registry.with_session(id, |l| l.answer(positive)) {
                None => "-ERR session vanished".to_string(),
                Some(Ok(())) => {
                    registry.clear_asked(id);
                    // Only accepted answers are logged, so replay can never hit a
                    // no-pending-question error the original run didn't.
                    service.log_answer(id, positive);
                    "+OK recorded".to_string()
                }
                Some(Err(e)) => format!("-ERR {e}"),
            },
        },
        Command::Query => match state.session {
            None => "-ERR no open session (use START)".to_string(),
            Some(id) => match registry.with_session(id, |l| l.hypothesis()) {
                None => "-ERR session vanished".to_string(),
                Some(None) => "-ERR no hypothesis yet (no positive example)".to_string(),
                Some(Some(text)) => format!("+QUERY {text}"),
            },
        },
        Command::Eval => match state.session {
            None => "-ERR no open session (use START)".to_string(),
            Some(id) => match registry.with_session(id, |l| l.answer_set_size()) {
                None => "-ERR session vanished".to_string(),
                Some(n) => format!("+EVAL {n}"),
            },
        },
        Command::Metrics => {
            let metrics = registry.metrics();
            let fields = [
                ("sessions", metrics.sessions.to_string()),
                ("ok", metrics.successes.to_string()),
                ("active", registry.active().to_string()),
                ("total_questions", metrics.total_questions.to_string()),
                (
                    "p50_questions",
                    metrics.p50_questions.unwrap_or(0).to_string(),
                ),
                (
                    "p95_questions",
                    metrics.p95_questions.unwrap_or(0).to_string(),
                ),
                (
                    "mean_questions",
                    format!("{:.2}", metrics.mean_questions().unwrap_or(0.0)),
                ),
                ("throughput_per_s", format!("{:.3}", metrics.throughput())),
                ("rejected", metrics.rejected.to_string()),
                ("timeouts", metrics.timeouts.to_string()),
                ("shed", metrics.shed.to_string()),
                ("persisted", metrics.persisted.to_string()),
                ("recovered", metrics.recovered.to_string()),
                ("corpora_built", service.store.built().to_string()),
                ("retries", metrics.retries.to_string()),
                ("reasks", metrics.reasks.to_string()),
                ("faults_injected", service.faults_injected().to_string()),
            ];
            format!("+METRICS {}", render_fields(&fields))
        }
        Command::Quit => {
            // Close (and report) the session before replying, so a client that QUITs and then
            // probes METRICS on a fresh connection observes its own session.
            state.close_session(service);
            return ("+OK bye".to_string(), true);
        }
    };
    (reply, false)
}

use crate::protocol::field_value as param;

fn parse_seed(params: &[(String, String)]) -> Result<u64, String> {
    match param(params, "seed") {
        None => Ok(0),
        Some(s) => s
            .parse()
            .map_err(|_| format!("seed must be a u64, got {s:?}")),
    }
}

/// The common `START` options — `seed=<u64>`, `budget=<n>`, and the model-agnostic half of
/// `strategy=<name>` — folded into a [`SessionConfig`]. Model-specific legacy strategy names
/// are resolved by the caller via `legacy`; anything in neither vocabulary is rejected loudly
/// instead of silently applying defaults.
fn session_config(
    params: &[(String, String)],
    legacy_names: &str,
    legacy: impl Fn(&str, u64) -> Option<Box<dyn qbe_core::Strategy>>,
) -> Result<SessionConfig, String> {
    let seed = parse_seed(params)?;
    let mut config = SessionConfig::new().seed(seed);
    if let Some(b) = param(params, "budget") {
        let budget: usize = b
            .parse()
            .map_err(|_| format!("budget must be a usize, got {b:?}"))?;
        config = config.budget(budget);
    }
    match param(params, "strategy") {
        None => Ok(config), // the model's flagship default
        Some(name) => {
            if let Some(strategy) = legacy(name, seed) {
                return Ok(config.strategy(strategy));
            }
            config.strategy_named(name).map_err(|_| {
                format!(
                    "unknown strategy, expected one of: {legacy_names}|{}",
                    STRATEGY_NAMES.join("|")
                )
            })
        }
    }
}

/// Build the model-specific learner a `START` command asks for (also the reconstruction
/// path of WAL replay, which is what makes recovery byte-identical: the same factory, the
/// same parameters, the same seed).
pub(crate) fn build_learner(
    corpus: &Corpus,
    model: Model,
    params: &[(String, String)],
) -> Result<Box<dyn InteractiveLearner>, String> {
    match model {
        Model::Twig => {
            let config = session_config(
                params,
                "document-order|shallow-first|label-affinity",
                |name, seed| {
                    let preset = match name {
                        "document-order" => NodeStrategy::DocumentOrder,
                        "shallow-first" => NodeStrategy::ShallowFirst,
                        "label-affinity" => NodeStrategy::LabelAffinity,
                        _ => return None,
                    };
                    Some(preset.strategy(seed))
                },
            )?;
            Ok(Box::new(TwigInteractive::with_config(
                corpus.docs.clone(),
                corpus.indexes.clone(),
                config,
            )))
        }
        Model::Path => {
            let config = session_config(
                params,
                "shortest-first|halving|workload-prior",
                |name, seed| {
                    let preset = match name {
                        "shortest-first" => PathStrategy::ShortestFirst,
                        "halving" => PathStrategy::Halving,
                        "workload-prior" => PathStrategy::WorkloadPrior,
                        _ => return None,
                    };
                    Some(preset.strategy(seed))
                },
            )?;
            let from_name = param(params, "from").unwrap_or("city0");
            let to_name = param(params, "to").unwrap_or("city5");
            let resolve = |name: &str| {
                corpus
                    .graph
                    .find_node_by_property("name", name)
                    .ok_or_else(|| format!("unknown city {name:?}"))
            };
            let from = resolve(from_name)?;
            let to = resolve(to_name)?;
            let max_edges = match param(params, "max_edges") {
                None => 6,
                Some(s) => s
                    .parse()
                    .map_err(|_| format!("max_edges must be a usize, got {s:?}"))?,
            };
            Ok(Box::new(PathInteractive::with_config(
                corpus.graph.clone(),
                from,
                to,
                max_edges,
                config,
            )))
        }
        Model::Join => {
            let config =
                session_config(params, "most-specific-first|halve-lattice", |name, seed| {
                    let preset = match name {
                        "most-specific-first" => Strategy::MostSpecificFirst,
                        "halve-lattice" => Strategy::HalveLattice,
                        _ => return None,
                    };
                    Some(preset.strategy(seed))
                })?;
            Ok(Box::new(JoinInteractive::with_config(
                corpus.left.clone(),
                corpus.right.clone(),
                config,
            )))
        }
        Model::Graph => {
            let config = session_config(params, "halving", |_, _| None)?;
            let class = match param(params, "class") {
                None => QueryClass::Rpq,
                Some(name) => QueryClass::parse(name)
                    .ok_or_else(|| format!("unknown class {name:?}, expected rpq|2rpq|crpq"))?,
            };
            Ok(Box::new(GraphQueryInteractive::with_config(
                corpus.typed_graph.clone(),
                class,
                config,
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_reader_enforces_the_cap() {
        let mut ok = io::Cursor::new(b"HELLO\r\nASK\n".to_vec());
        assert_eq!(read_line_bounded(&mut ok, 16).unwrap(), "HELLO");
        assert_eq!(read_line_bounded(&mut ok, 16).unwrap(), "ASK");
        assert!(matches!(
            read_line_bounded(&mut ok, 16),
            Err(LineError::Closed)
        ));

        // Oversized despite a newline: rejected.
        let mut long = io::Cursor::new(
            vec![b'a'; 64]
                .into_iter()
                .chain(*b"\n")
                .collect::<Vec<u8>>(),
        );
        assert!(matches!(
            read_line_bounded(&mut long, 16),
            Err(LineError::TooLong)
        ));

        // Oversized with no newline at all: rejected without buffering the flood.
        let mut flood = io::Cursor::new(vec![b'b'; 1 << 20]);
        assert!(matches!(
            read_line_bounded(&mut flood, 16),
            Err(LineError::TooLong)
        ));
    }

    #[test]
    fn carriage_return_does_not_count_against_the_cap() {
        // Exactly max content bytes, CRLF-framed: the \r is line ending, not content.
        let mut at_cap = io::Cursor::new([vec![b'x'; 16], b"\r\n".to_vec()].concat());
        assert_eq!(read_line_bounded(&mut at_cap, 16).unwrap(), "x".repeat(16));
        // One content byte over, LF-framed: still rejected.
        let mut over = io::Cursor::new([vec![b'x'; 17], b"\n".to_vec()].concat());
        assert!(matches!(
            read_line_bounded(&mut over, 16),
            Err(LineError::TooLong)
        ));
    }

    #[test]
    fn accept_errors_classify_by_retryability() {
        // Resource pressure and aborted handshakes: transient, retry with backoff.
        for code in [
            24,  /* EMFILE */
            23,  /* ENFILE */
            103, /* ECONNABORTED */
            4,   /* EINTR */
            12,  /* ENOMEM */
            105, /* ENOBUFS */
        ] {
            assert_eq!(
                classify_accept_error(&io::Error::from_raw_os_error(code)),
                AcceptError::Transient,
                "errno {code}"
            );
        }
        // A broken listener: fatal, stop accepting.
        for code in [
            9,  /* EBADF */
            22, /* EINVAL */
            88, /* ENOTSOCK */
        ] {
            assert_eq!(
                classify_accept_error(&io::Error::from_raw_os_error(code)),
                AcceptError::Fatal,
                "errno {code}"
            );
        }
        // Errors with no OS code (synthetic) err on the side of retrying.
        assert_eq!(
            classify_accept_error(&io::Error::other("mystery")),
            AcceptError::Transient
        );
    }

    #[test]
    fn accept_backoff_doubles_to_a_cap_and_resets() {
        let mut b = AcceptBackoff::new();
        let mut last = Duration::ZERO;
        for _ in 0..16 {
            let d = b.next_delay();
            assert!(d >= last, "delays never shrink while failing");
            assert!(d <= Duration::from_millis(500), "capped at 500 ms");
            last = d;
        }
        assert_eq!(last, Duration::from_millis(500));
        b.reset();
        assert_eq!(b.next_delay(), Duration::from_millis(1));
    }

    #[test]
    fn deadline_reader_bounds_the_whole_line_not_one_read() {
        // A trickling peer: one byte every 30 ms against a 150 ms *total* deadline. The
        // per-read timeout never fires (bytes keep arriving), so only the total deadline can
        // end this — which is exactly the slow-loris fix.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let trickler = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            for _ in 0..40 {
                if s.write_all(b"x").is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(30));
            }
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let start = Instant::now();
        let deadline = start + Duration::from_millis(150);
        let out = read_line_bounded_deadline(&mut reader, MAX_LINE_BYTES, deadline);
        let elapsed = start.elapsed();
        assert!(matches!(out, Err(LineError::TimedOut)), "{out:?}");
        assert!(
            elapsed >= Duration::from_millis(140),
            "not before the deadline: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_secs(1),
            "the trickle must not extend the deadline: {elapsed:?}"
        );
        drop(reader);
        trickler.join().unwrap();
    }

    #[test]
    fn learner_factory_validates_parameters() {
        let corpus = crate::corpus::build_corpus("tiny").unwrap();
        assert!(build_learner(&corpus, Model::Twig, &[]).is_ok());
        assert!(build_learner(
            &corpus,
            Model::Twig,
            &[("strategy".into(), "alphabetical".into())]
        )
        .is_err());
        assert!(build_learner(&corpus, Model::Join, &[("seed".into(), "x".into())]).is_err());
        assert!(
            build_learner(&corpus, Model::Path, &[("from".into(), "atlantis".into())]).is_err()
        );
        let ok = build_learner(&corpus, Model::Path, &[("to".into(), "city3".into())]).unwrap();
        assert_eq!(ok.kind(), "path");
        let graph =
            build_learner(&corpus, Model::Graph, &[("class".into(), "2rpq".into())]).unwrap();
        assert_eq!(graph.kind(), "graph");
        assert!(
            build_learner(&corpus, Model::Graph, &[]).is_ok(),
            "class defaults to rpq"
        );
        assert!(
            build_learner(&corpus, Model::Graph, &[("class".into(), "sparql".into())]).is_err()
        );
    }
}
