//! The wire protocol: one UTF-8 line per request, one line per response.
//!
//! The build environment has no serde (and no registry to fetch one), so the protocol is a
//! hand-rolled text format in the redis/memcached tradition: space-separated tokens, `key=value`
//! parameters, responses prefixed `+` (success) or `-ERR` (failure). `PROTOCOL.md` at the crate
//! root specifies the full grammar with an example transcript; this module owns parsing and
//! rendering so the server, the client and the tests agree by construction.

use std::fmt;

/// Hard cap on the length of one request line, in bytes (newline included).
///
/// Lines longer than this are rejected before being buffered further — a malicious or broken
/// client cannot balloon server memory by never sending `\n`. Generous enough for any command
/// this protocol defines (the longest is `START` with a handful of `key=value` parameters).
pub const MAX_LINE_BYTES: usize = 1024;

/// Which learner a `START` command opens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Twig queries over the corpus's XML documents.
    Twig,
    /// Path constraints between two endpoints of the corpus's geographical graph.
    Path,
    /// Equi-join predicates over the corpus's relation pair.
    Join,
    /// RPQ / 2RPQ / CRPQ queries over the corpus's typed road graph (the `class=` parameter
    /// picks the query class; protocol ≥ 1.2).
    Graph,
}

impl Model {
    /// Canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Model::Twig => "twig",
            Model::Path => "path",
            Model::Join => "join",
            Model::Graph => "graph",
        }
    }

    /// Parse a model name.
    pub fn parse(s: &str) -> Option<Model> {
        match s {
            "twig" => Some(Model::Twig),
            "path" => Some(Model::Path),
            "join" => Some(Model::Join),
            "graph" => Some(Model::Graph),
            _ => None,
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `HELLO` — greet, learn the server's capabilities.
    Hello,
    /// `CORPUS <name>` — attach the connection to a named shared corpus.
    Corpus(String),
    /// `START <twig|path|join|graph> [key=value ...]` — open a learning session.
    Start {
        /// The learner to open.
        model: Model,
        /// Session parameters (strategy, seed, endpoints, …), model-specific.
        params: Vec<(String, String)>,
    },
    /// `RESUME <id>` — attach the connection to an existing session (after a reconnect or a
    /// server restart with persistence on; protocol ≥ 1.3).
    Resume(u64),
    /// `ASK` — request the next membership question.
    Ask,
    /// `ANSWER yes|no` — answer the pending question.
    Answer(bool),
    /// `QUERY` — render the current hypothesis.
    Query,
    /// `EVAL` — answer-set size of the current hypothesis.
    Eval,
    /// `METRICS` — aggregate service statistics.
    Metrics,
    /// `QUIT` — close the connection.
    Quit,
}

/// Why a request line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line contained no tokens.
    Empty,
    /// The first token is not a known command.
    UnknownCommand(String),
    /// The command exists but its arguments are malformed.
    BadArguments(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty command"),
            ParseError::UnknownCommand(c) => write!(f, "unknown command {c:?}"),
            ParseError::BadArguments(why) => write!(f, "bad arguments: {why}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse one request line (already stripped of its trailing newline).
///
/// Command verbs are case-insensitive, as is protocol tradition; arguments are case-sensitive
/// (corpus and strategy names are lower-case identifiers).
pub fn parse_command(line: &str) -> Result<Command, ParseError> {
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().ok_or(ParseError::Empty)?.to_ascii_uppercase();
    let rest: Vec<&str> = tokens.collect();
    let expect_no_args = |cmd: Command| {
        if rest.is_empty() {
            Ok(cmd)
        } else {
            Err(ParseError::BadArguments(format!(
                "{verb} takes no arguments"
            )))
        }
    };
    match verb.as_str() {
        "HELLO" => expect_no_args(Command::Hello),
        "ASK" => expect_no_args(Command::Ask),
        "QUERY" => expect_no_args(Command::Query),
        "EVAL" => expect_no_args(Command::Eval),
        "METRICS" => expect_no_args(Command::Metrics),
        "QUIT" => expect_no_args(Command::Quit),
        "CORPUS" => match rest.as_slice() {
            [name] => Ok(Command::Corpus((*name).to_string())),
            _ => Err(ParseError::BadArguments(
                "CORPUS takes exactly one name".to_string(),
            )),
        },
        "RESUME" => match rest.as_slice() {
            [id] => id.parse::<u64>().map(Command::Resume).map_err(|_| {
                ParseError::BadArguments(format!("RESUME takes a numeric session id, got {id:?}"))
            }),
            _ => Err(ParseError::BadArguments(
                "RESUME takes exactly one session id".to_string(),
            )),
        },
        "ANSWER" => match rest.as_slice() {
            [answer] => match answer.to_ascii_lowercase().as_str() {
                "yes" | "y" | "true" => Ok(Command::Answer(true)),
                "no" | "n" | "false" => Ok(Command::Answer(false)),
                other => Err(ParseError::BadArguments(format!(
                    "ANSWER takes yes|no, got {other:?}"
                ))),
            },
            _ => Err(ParseError::BadArguments(
                "ANSWER takes exactly one of yes|no".to_string(),
            )),
        },
        "START" => {
            let [model, params @ ..] = rest.as_slice() else {
                return Err(ParseError::BadArguments(
                    "START takes a model (twig|path|join|graph) and optional key=value parameters"
                        .to_string(),
                ));
            };
            let model = Model::parse(model).ok_or_else(|| {
                ParseError::BadArguments(format!(
                    "unknown model {model:?}, expected twig|path|join|graph"
                ))
            })?;
            let mut params = parse_fields(params)?;
            // Option names are case-insensitive (`STRATEGY=` and `strategy=` both work, as
            // protocol tradition suggests for verbs); values stay case-sensitive (corpus,
            // strategy and city names are lower-case identifiers).
            for (key, _) in &mut params {
                key.make_ascii_lowercase();
            }
            Ok(Command::Start { model, params })
        }
        _ => Err(ParseError::UnknownCommand(verb)),
    }
}

/// Parse `key=value` tokens (used for `START` parameters and by clients reading `+ASK` /
/// `+METRICS` payloads).
pub fn parse_fields(tokens: &[&str]) -> Result<Vec<(String, String)>, ParseError> {
    tokens
        .iter()
        .map(|tok| {
            tok.split_once('=')
                .filter(|(k, _)| !k.is_empty())
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| ParseError::BadArguments(format!("expected key=value, got {tok:?}")))
        })
        .collect()
}

/// Parse a whole `key=value ...` payload line (the argument part of a response).
pub fn parse_fields_line(line: &str) -> Result<Vec<(String, String)>, ParseError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    parse_fields(&tokens)
}

/// Look up one key in a parsed `key=value` field list (first match wins) — the one lookup
/// every consumer of `START` parameters, `+ASK` questions and `+METRICS` payloads needs.
pub fn field_value<'a>(fields: &'a [(String, String)], key: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Render `key=value` pairs as one space-separated payload.
pub fn render_fields<K: AsRef<str>, V: AsRef<str>>(fields: &[(K, V)]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!("{}={}", k.as_ref(), v.as_ref()))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse() {
        assert_eq!(parse_command("HELLO"), Ok(Command::Hello));
        assert_eq!(
            parse_command("hello"),
            Ok(Command::Hello),
            "verbs are case-insensitive"
        );
        assert_eq!(
            parse_command("CORPUS tiny"),
            Ok(Command::Corpus("tiny".to_string()))
        );
        assert_eq!(parse_command("ASK"), Ok(Command::Ask));
        assert_eq!(parse_command("RESUME 12"), Ok(Command::Resume(12)));
        assert_eq!(parse_command("resume 1"), Ok(Command::Resume(1)));
        assert_eq!(parse_command("ANSWER yes"), Ok(Command::Answer(true)));
        assert_eq!(parse_command("ANSWER no"), Ok(Command::Answer(false)));
        assert_eq!(parse_command("answer Y"), Ok(Command::Answer(true)));
        assert_eq!(parse_command("QUERY"), Ok(Command::Query));
        assert_eq!(parse_command("EVAL"), Ok(Command::Eval));
        assert_eq!(parse_command("METRICS"), Ok(Command::Metrics));
        assert_eq!(parse_command("QUIT"), Ok(Command::Quit));
        assert_eq!(
            parse_command("START twig strategy=label-affinity seed=3"),
            Ok(Command::Start {
                model: Model::Twig,
                params: vec![
                    ("strategy".to_string(), "label-affinity".to_string()),
                    ("seed".to_string(), "3".to_string()),
                ],
            })
        );
        assert_eq!(
            parse_command("START join"),
            Ok(Command::Start {
                model: Model::Join,
                params: vec![],
            })
        );
        assert_eq!(
            parse_command("START graph CLASS=2rpq"),
            Ok(Command::Start {
                model: Model::Graph,
                params: vec![("class".to_string(), "2rpq".to_string())],
            })
        );
    }

    #[test]
    fn whitespace_is_forgiven_but_garbage_is_not() {
        assert_eq!(parse_command("  ASK  "), Ok(Command::Ask));
        assert_eq!(parse_command(""), Err(ParseError::Empty));
        assert_eq!(parse_command("   \t "), Err(ParseError::Empty));
        assert!(matches!(
            parse_command("FROBNICATE"),
            Err(ParseError::UnknownCommand(_))
        ));
    }

    #[test]
    fn malformed_arguments_are_rejected() {
        assert!(matches!(
            parse_command("CORPUS"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            parse_command("CORPUS a b"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            parse_command("ANSWER maybe"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            parse_command("ANSWER"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            parse_command("START"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            parse_command("START sparql"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            parse_command("START twig strategy"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            parse_command("START twig =3"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            parse_command("ASK now"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            parse_command("RESUME"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            parse_command("RESUME twelve"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            parse_command("RESUME 1 2"),
            Err(ParseError::BadArguments(_))
        ));
    }

    #[test]
    fn field_rendering_round_trips() {
        let fields = vec![
            ("doc".to_string(), "0".to_string()),
            ("node".to_string(), "17".to_string()),
        ];
        let line = render_fields(&fields);
        assert_eq!(line, "doc=0 node=17");
        assert_eq!(parse_fields_line(&line).unwrap(), fields);
    }
}
