//! The multi-tenant session registry: id → boxed learner, mutex-sharded.
//!
//! Every open learning session — whichever connection it belongs to and whichever model it
//! learns — lives here as a `Box<dyn InteractiveLearner>` (the homogeneity the `qbe-core`
//! session trait exists for). The map is sharded across [`SHARDS`] mutexes keyed by session id,
//! so concurrent connections asking questions on different sessions never contend on one global
//! lock; a shard is held only for the duration of one command.
//!
//! Completed sessions fold into running aggregates (session/success/question counters plus an
//! incrementally sorted question-count list — 8 bytes per session served), so a `METRICS`
//! request is O(1): no per-request clone or sort of the service's whole history. The numbers
//! reported are the `WorkloadMetrics` vocabulary of the in-process workload driver — `METRICS`
//! over the wire and `exp_workload` on a laptop read the same statistics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use qbe_core::session::InteractiveLearner;
use qbe_core::workload::percentile_sorted;

/// Number of mutex shards. A small power of two: enough to decorrelate a few hundred
/// concurrent connections, cheap to scan for the active-session count.
///
/// Shard locks recover from poisoning (`PoisonError::into_inner`): sessions are independent
/// map entries, so a learner that panicked under one lock must not take down every later
/// session that happens to hash to the same shard.
pub const SHARDS: usize = 8;

struct Entry {
    learner: Box<dyn InteractiveLearner>,
    started: Instant,
    /// Set once the session has been folded into the completed aggregates, so a session that
    /// converges *and* is later closed is counted exactly once.
    reported: bool,
    /// Set once the pending question has been served by an `ASK`; cleared by a recorded
    /// `ANSWER`. A second `ASK` while set is a *re-ask* (k-vote clients, or a resumed client
    /// re-fetching the question it lost) — counted in the `reasks=` METRICS counter.
    asked: bool,
}

/// Running aggregates over every completed session.
#[derive(Debug, Default)]
struct CompletedLog {
    successes: usize,
    total_questions: usize,
    total_wall: Duration,
    /// Question counts of all completed sessions, kept sorted by binary insertion so
    /// percentile queries are index lookups (nearest-rank, as in
    /// [`qbe_core::workload::percentile`]).
    sorted_questions: Vec<usize>,
}

impl CompletedLog {
    fn fold(&mut self, questions: usize, success: bool, wall: Duration) {
        self.successes += usize::from(success);
        self.total_questions += questions;
        self.total_wall += wall;
        let at = self.sorted_questions.partition_point(|&q| q <= questions);
        self.sorted_questions.insert(at, questions);
    }
}

/// A `METRICS` snapshot: [`WorkloadMetrics`](qbe_core::workload::WorkloadMetrics)-style
/// aggregates over every session this registry has completed.
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    /// Sessions served to completion (converged or abandoned).
    pub sessions: usize,
    /// Sessions that converged with a consistent hypothesis.
    pub successes: usize,
    /// Total questions across all completed sessions.
    pub total_questions: usize,
    /// Nearest-rank median question count (`None` before the first completion).
    pub p50_questions: Option<usize>,
    /// Nearest-rank 95th-percentile question count.
    pub p95_questions: Option<usize>,
    /// Summed per-session wall time.
    pub total_wall: Duration,
    /// Registry uptime (the throughput denominator).
    pub uptime: Duration,
    /// Connections rejected at accept time (server at capacity).
    pub rejected: u64,
    /// Connections closed for missing the per-line deadline (idle or trickling).
    pub timeouts: u64,
    /// Requests shed by rate limiting or queue-depth load shedding.
    pub shed: u64,
    /// WAL records durably appended (0 when persistence is off).
    pub persisted: u64,
    /// Live sessions reconstructed from the WAL at the last boot.
    pub recovered: u64,
    /// Sessions re-attached across connections via `RESUME` (each one is a client retrying
    /// after a lost connection — or a recovery re-attach after a restart).
    pub retries: u64,
    /// `ASK`s that repeated an already-served pending question (k-vote re-asking, or a
    /// resumed client re-fetching the question whose reply it lost).
    pub reasks: u64,
    /// Faults fired by the server's injection registry (0 without a fault profile).
    pub faults_injected: u64,
}

impl ServiceMetrics {
    /// Mean question count (`None` before the first completion).
    pub fn mean_questions(&self) -> Option<f64> {
        if self.sessions == 0 {
            None
        } else {
            Some(self.total_questions as f64 / self.sessions as f64)
        }
    }

    /// Sessions served per second of uptime.
    pub fn throughput(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.sessions as f64 / secs
        }
    }
}

/// Registry of all live sessions plus the aggregates of completed ones.
pub struct SessionRegistry {
    shards: Vec<Mutex<HashMap<u64, Entry>>>,
    next_id: AtomicU64,
    completed: Mutex<CompletedLog>,
    opened: Instant,
    // Service-health counters, bumped lock-free from the accept path / reactor so counting a
    // rejection can never contend with the sessions it protects.
    rejected: AtomicU64,
    timeouts: AtomicU64,
    shed: AtomicU64,
    persisted: AtomicU64,
    recovered: AtomicU64,
    retries: AtomicU64,
    reasks: AtomicU64,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry::new()
    }
}

impl SessionRegistry {
    /// An empty registry; the metrics clock starts now.
    pub fn new() -> SessionRegistry {
        SessionRegistry {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            next_id: AtomicU64::new(1),
            completed: Mutex::new(CompletedLog::default()),
            opened: Instant::now(),
            rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            reasks: AtomicU64::new(0),
        }
    }

    /// Count a connection rejected at accept time (server at capacity).
    pub fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a connection closed for missing its per-line deadline.
    pub fn note_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a request shed by rate limiting or load shedding.
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a WAL record durably appended.
    pub fn note_persisted(&self) {
        self.persisted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record how many live sessions boot-time recovery reconstructed.
    pub fn set_recovered(&self, n: u64) {
        self.recovered.store(n, Ordering::Relaxed);
    }

    /// Count a session re-attached across connections via `RESUME`.
    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Serve the session's pending question: returns `true` when it had already been served
    /// (this `ASK` is a re-ask) and counts it. No-op `false` for unknown ids.
    pub fn mark_asked(&self, id: u64) -> bool {
        let mut shard = self
            .shard(id)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let Some(entry) = shard.get_mut(&id) else {
            return false;
        };
        let repeat = entry.asked;
        entry.asked = true;
        if repeat {
            self.reasks.fetch_add(1, Ordering::Relaxed);
        }
        repeat
    }

    /// An answer was recorded: the next `ASK` serves a fresh question, not a re-ask.
    pub fn clear_asked(&self, id: u64) {
        let mut shard = self
            .shard(id)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = shard.get_mut(&id) {
            entry.asked = false;
        }
    }

    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, Entry>> {
        &self.shards[(id % SHARDS as u64) as usize]
    }

    /// Register a new session, returning its id.
    pub fn open(&self, learner: Box<dyn InteractiveLearner>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.insert(id, learner);
        id
    }

    /// Register a recovered session under its original id (WAL replay). Later
    /// [`SessionRegistry::open`] calls allocate strictly beyond every recovered id, so a
    /// restarted server never reissues an id a client may still hold.
    pub fn open_with_id(&self, id: u64, learner: Box<dyn InteractiveLearner>) {
        self.insert(id, learner);
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
    }

    fn insert(&self, id: u64, learner: Box<dyn InteractiveLearner>) {
        let entry = Entry {
            learner,
            started: Instant::now(),
            reported: false,
            asked: false,
        };
        self.shard(id)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, entry);
    }

    /// Run `f` on the session's learner under its shard lock. `None` when the id is unknown.
    ///
    /// If the learner reports itself done afterwards, the session is folded into the completed
    /// aggregates (once).
    pub fn with_session<R>(
        &self,
        id: u64,
        f: impl FnOnce(&mut dyn InteractiveLearner) -> R,
    ) -> Option<R> {
        let mut shard = self
            .shard(id)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let entry = shard.get_mut(&id)?;
        let out = f(entry.learner.as_mut());
        if entry.learner.done() && !entry.reported {
            entry.reported = true;
            let (questions, success, wall) = Self::summary_of(entry);
            drop(shard);
            self.completed
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .fold(questions, success, wall);
        }
        Some(out)
    }

    /// Remove a session (client quit, connection dropped, replaced by a new `START`). An
    /// unfinished session still counts as a (failed) completion — abandonment is an outcome
    /// the service operator wants visible, not hidden.
    pub fn close(&self, id: u64) {
        let removed = self
            .shard(id)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
        if let Some(entry) = removed {
            if !entry.reported {
                let (questions, success, wall) = Self::summary_of(&entry);
                self.completed
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .fold(questions, success, wall);
            }
        }
    }

    fn summary_of(entry: &Entry) -> (usize, bool, Duration) {
        let learner = entry.learner.as_ref();
        let success = learner.done() && learner.consistent() && learner.hypothesis().is_some();
        (learner.questions(), success, entry.started.elapsed())
    }

    /// Number of live (not yet closed) sessions.
    pub fn active(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Snapshot the completed-session aggregates. O(1) apart from taking the lock.
    pub fn metrics(&self) -> ServiceMetrics {
        let log = self
            .completed
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        ServiceMetrics {
            sessions: log.sorted_questions.len(),
            successes: log.successes,
            total_questions: log.total_questions,
            p50_questions: percentile_sorted(&log.sorted_questions, 50.0),
            p95_questions: percentile_sorted(&log.sorted_questions, 95.0),
            total_wall: log.total_wall,
            uptime: self.opened.elapsed().max(Duration::from_micros(1)),
            rejected: self.rejected.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            persisted: self.persisted.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            reasks: self.reasks.load(Ordering::Relaxed),
            // Filled by the service from its fault registry; the session registry itself
            // never injects anything.
            faults_injected: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbe_core::session::drive;
    use qbe_core::twig::{parse_xpath, NodeStrategy};
    use qbe_core::xml::{parse_xml, NodeIndex};
    use qbe_core::TwigInteractive;
    use std::sync::Arc;

    fn learner() -> Box<dyn InteractiveLearner> {
        let docs = Arc::new(vec![parse_xml("<a><b><c/></b><b/></a>").unwrap()]);
        let indexes = Arc::new(docs.iter().map(NodeIndex::build).collect::<Vec<_>>());
        Box::new(
            TwigInteractive::with_shared(docs, indexes, NodeStrategy::DocumentOrder, 0)
                .with_goal(parse_xpath("//c").unwrap()),
        )
    }

    #[test]
    fn sessions_are_found_and_closed() {
        let reg = SessionRegistry::new();
        let id = reg.open(learner());
        assert_eq!(reg.active(), 1);
        assert_eq!(reg.with_session(id, |l| l.kind()), Some("twig"));
        assert_eq!(reg.with_session(id + 999, |l| l.kind()), None);
        reg.close(id);
        assert_eq!(reg.active(), 0);
        // Abandoned mid-flight: counted as a (failed) session.
        let metrics = reg.metrics();
        assert_eq!(metrics.sessions, 1);
        assert_eq!(metrics.successes, 0);
    }

    #[test]
    fn completed_sessions_are_reported_exactly_once() {
        let reg = SessionRegistry::new();
        let id = reg.open(learner());
        reg.with_session(id, |l| drive("s1", l)).unwrap();
        assert_eq!(reg.metrics().sessions, 1, "reported on completion");
        // Further queries and the eventual close must not double-count.
        reg.with_session(id, |l| l.questions()).unwrap();
        reg.close(id);
        let metrics = reg.metrics();
        assert_eq!(metrics.sessions, 1);
        assert_eq!(metrics.successes, 1);
        assert!(metrics.total_wall > Duration::ZERO);
        assert!(metrics.throughput() > 0.0);
    }

    #[test]
    fn percentiles_track_the_question_distribution() {
        // Aggregates must match the nearest-rank definition used by the workload driver.
        let reg = SessionRegistry::new();
        let ids: Vec<u64> = (0..5).map(|_| reg.open(learner())).collect();
        for id in &ids {
            reg.with_session(*id, |l| drive("s", l)).unwrap();
        }
        let per_session = reg.metrics().total_questions / 5;
        let metrics = reg.metrics();
        // All five sessions are identical, so every percentile is that common count.
        assert_eq!(metrics.p50_questions, Some(per_session));
        assert_eq!(metrics.p95_questions, Some(per_session));
        assert_eq!(metrics.mean_questions(), Some(per_session as f64));
    }

    #[test]
    fn health_counters_accumulate_independently_of_sessions() {
        let reg = SessionRegistry::new();
        reg.note_rejected();
        reg.note_rejected();
        reg.note_timeout();
        reg.note_shed();
        reg.note_shed();
        reg.note_shed();
        let metrics = reg.metrics();
        assert_eq!(metrics.rejected, 2);
        assert_eq!(metrics.timeouts, 1);
        assert_eq!(metrics.shed, 3);
        assert_eq!(metrics.sessions, 0, "counters are not sessions");
    }

    #[test]
    fn recovered_ids_push_the_allocator_forward() {
        let reg = SessionRegistry::new();
        reg.open_with_id(7, learner());
        reg.open_with_id(3, learner());
        assert_eq!(reg.active(), 2);
        assert_eq!(reg.with_session(7, |l| l.kind()), Some("twig"));
        let fresh = reg.open(learner());
        assert!(fresh > 7, "fresh ids never collide with recovered ones");
        let metrics = reg.metrics();
        assert_eq!(metrics.persisted, 0);
        assert_eq!(metrics.recovered, 0);
        reg.note_persisted();
        reg.set_recovered(2);
        let metrics = reg.metrics();
        assert_eq!(metrics.persisted, 1);
        assert_eq!(metrics.recovered, 2);
    }

    #[test]
    fn reask_tracking_counts_repeats_until_an_answer_clears_them() {
        let reg = SessionRegistry::new();
        let id = reg.open(learner());
        assert!(!reg.mark_asked(id), "first ask serves a fresh question");
        assert!(reg.mark_asked(id), "second ask is a re-ask");
        assert!(reg.mark_asked(id), "and so is the third");
        reg.clear_asked(id);
        assert!(!reg.mark_asked(id), "an answer resets the cycle");
        assert!(!reg.mark_asked(id + 999), "unknown ids are a no-op");
        reg.note_retry();
        let metrics = reg.metrics();
        assert_eq!(metrics.reasks, 2);
        assert_eq!(metrics.retries, 1);
        assert_eq!(metrics.faults_injected, 0);
    }

    #[test]
    fn ids_are_unique_across_shards() {
        let reg = SessionRegistry::new();
        let ids: Vec<u64> = (0..32).map(|_| reg.open(learner())).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        assert_eq!(reg.active(), 32);
    }
}
