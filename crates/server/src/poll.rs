//! Tiny FFI shim over the OS readiness APIs: `epoll` on Linux, `poll(2)` elsewhere.
//!
//! The build environment has no crates registry, so there is no `libc`/`mio` to lean on.
//! This module declares the half-dozen C symbols the event-driven engine needs (they are
//! already linked — std links the platform libc) and wraps them in a safe, deliberately
//! minimal [`Poller`] API: register/modify/deregister a file descriptor under a `u64` token,
//! wait for readiness with a timeout. All `unsafe` in the crate lives here, behind
//! invariants small enough to state inline:
//!
//! * every registered fd outlives its registration (the reactor owns the socket and
//!   deregisters before dropping it);
//! * buffers passed to the kernel are local, correctly sized, and never retained.
//!
//! [`Waker`] is the classic self-pipe: worker threads write one byte to a nonblocking pipe
//! whose read end is registered in the poller, waking the reactor from `wait` without
//! touching any of its state.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

use std::os::raw::{c_int, c_void};

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (or in an error/hangup state a read will surface).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
}

/// Convert a poll timeout to the milliseconds argument of `poll`/`epoll_wait`, rounding *up*
/// so a 100 µs timeout does not become a busy-spin of 0 ms waits. `None` blocks forever.
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            let rounded = if t.subsec_nanos() % 1_000_000 != 0 {
                ms + 1
            } else {
                ms
            };
            rounded.min(c_int::MAX as u128) as c_int
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! Linux backend: `epoll`, O(1) per wait in the number of idle connections.
    use super::*;

    // The kernel ABI packs `struct epoll_event` on x86; other architectures use natural
    // alignment. Mirrors glibc's `__EPOLL_PACKED`.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    /// Readiness selector over registered fds (epoll backend).
    pub struct Poller {
        epfd: OwnedFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        /// A fresh, empty selector.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall; the returned fd is immediately owned (closed on drop).
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                // SAFETY: `fd` is a freshly created, unowned epoll descriptor.
                epfd: unsafe { OwnedFd::from_raw_fd(fd) },
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: (if read { EPOLLIN | EPOLLRDHUP } else { 0 })
                    | (if write { EPOLLOUT } else { 0 }),
                data: token,
            };
            // SAFETY: `ev` is a live local; the fd is valid for the duration of the call
            // (callers only pass fds of sockets they own).
            if unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Start watching `fd` under `token` for the given interests.
        pub fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, read, write)
        }

        /// Change the interests of an already-registered fd.
        pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, read, write)
        }

        /// Stop watching `fd` (must happen before the fd is closed).
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
        }

        /// Block until at least one registered fd is ready or the timeout passes; append the
        /// ready events to `out`. A timeout or an interrupting signal appends nothing.
        pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
            let n = {
                // SAFETY: `buf` is a live Vec of `len()` initialised events; the kernel
                // writes at most `maxevents` entries into it.
                let r = unsafe {
                    epoll_wait(
                        self.epfd.as_raw_fd(),
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        timeout_ms(timeout),
                    )
                };
                if r < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(e);
                }
                r as usize
            };
            for ev in &self.buf[..n] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Portable Unix backend: `poll(2)`, O(fds) per wait — fine for the test-sized loads
    //! non-Linux builds see.
    use super::*;
    use std::collections::HashMap;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    }

    /// Readiness selector over registered fds (poll backend).
    pub struct Poller {
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
        index: HashMap<RawFd, usize>,
    }

    impl Poller {
        /// A fresh, empty selector.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Vec::new(),
                tokens: Vec::new(),
                index: HashMap::new(),
            })
        }

        fn events_bits(read: bool, write: bool) -> i16 {
            (if read { POLLIN } else { 0 }) | (if write { POLLOUT } else { 0 })
        }

        /// Start watching `fd` under `token` for the given interests.
        pub fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            if self.index.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.index.insert(fd, self.fds.len());
            self.fds.push(PollFd {
                fd,
                events: Self::events_bits(read, write),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        /// Change the interests of an already-registered fd.
        pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            let ix = *self
                .index
                .get(&fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds[ix].events = Self::events_bits(read, write);
            self.tokens[ix] = token;
            Ok(())
        }

        /// Stop watching `fd` (must happen before the fd is closed).
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let ix = self
                .index
                .remove(&fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds.swap_remove(ix);
            self.tokens.swap_remove(ix);
            if ix < self.fds.len() {
                self.index.insert(self.fds[ix].fd, ix);
            }
            Ok(())
        }

        /// Block until at least one registered fd is ready or the timeout passes; append the
        /// ready events to `out`. A timeout or an interrupting signal appends nothing.
        pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
            // SAFETY: `fds` is a live Vec of repr(C) entries; the kernel only fills
            // `revents` within its length.
            let r = unsafe {
                poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as u64,
                    timeout_ms(timeout),
                )
            };
            if r < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pfd, &token) in self.fds.iter().zip(&self.tokens) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: pfd.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: pfd.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

pub use sys::Poller;

extern "C" {
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x0004;

fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl on an fd we own; no pointers involved.
    unsafe {
        let flags = fcntl(fd, F_GETFL, 0);
        if flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// The read half of a [`Waker`] pipe; the reactor registers its fd and drains it on wakeup.
pub struct WakeReader {
    fd: OwnedFd,
}

impl WakeReader {
    /// The fd to register in the [`Poller`].
    pub fn raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Discard all pending wake bytes (level-triggered pollers would otherwise re-report).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: `buf` is a live local array; `read` writes at most its length.
            let n = unsafe {
                read(
                    self.fd.as_raw_fd(),
                    buf.as_mut_ptr() as *mut c_void,
                    buf.len(),
                )
            };
            if n <= 0 {
                break; // empty (EAGAIN), closed, or error — nothing left to drain
            }
        }
    }
}

/// The write half of the self-pipe: any thread may call [`wake`](Waker::wake) to interrupt
/// the reactor's [`Poller::wait`]. Cheap, cloneable, `Send + Sync`, never blocks.
#[derive(Clone)]
pub struct Waker {
    fd: std::sync::Arc<OwnedFd>,
}

impl Waker {
    /// Wake the reactor. A full pipe means a wakeup is already pending — success either way.
    pub fn wake(&self) {
        let byte = [1u8];
        // SAFETY: one-byte write from a live local buffer into an owned fd.
        let _ = unsafe { write(self.fd.as_raw_fd(), byte.as_ptr() as *const c_void, 1) };
    }
}

/// A connected nonblocking self-pipe: `(read_half, write_half)`.
pub fn waker_pair() -> io::Result<(WakeReader, Waker)> {
    let mut fds: [c_int; 2] = [-1, -1];
    // SAFETY: `fds` is a live 2-element array, exactly what `pipe` fills.
    if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: both fds are freshly created and unowned; OwnedFd takes over closing them.
    let (r, w) = unsafe { (OwnedFd::from_raw_fd(fds[0]), OwnedFd::from_raw_fd(fds[1])) };
    set_nonblocking_fd(r.as_raw_fd())?;
    set_nonblocking_fd(w.as_raw_fd())?;
    Ok((
        WakeReader { fd: r },
        Waker {
            fd: std::sync::Arc::new(w),
        },
    ))
}

#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: c_int = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: c_int = 8;

/// The current soft limit on open file descriptors, if the OS reports one. The 10k-connection
/// soak sizes itself against this instead of dying on EMFILE.
pub fn fd_soft_limit() -> Option<u64> {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `lim` is a live repr(C) struct of the shape getrlimit fills.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return None;
    }
    Some(lim.rlim_cur)
}

/// Raise the soft fd limit toward `min(target, hard limit)`; returns the soft limit actually
/// in effect afterwards. Best-effort: failures leave the limit unchanged.
pub fn raise_fd_limit(target: u64) -> u64 {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: same contract as in `fd_soft_limit`.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return 0;
    }
    let want = target.min(lim.rlim_max);
    if want > lim.rlim_cur {
        let new = RLimit {
            rlim_cur: want,
            rlim_max: lim.rlim_max,
        };
        // SAFETY: passing a live, fully initialised struct by const pointer.
        if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
            return want;
        }
    }
    lim.rlim_cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn waker_wakes_a_blocked_wait() {
        let mut poller = Poller::new().unwrap();
        let (rx, tx) = waker_pair().unwrap();
        poller.register(rx.raw_fd(), 42, true, false).unwrap();

        // Without a wake, a short wait times out with no events.
        let mut events = Vec::new();
        poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty());

        // A wake from another thread interrupts a long wait promptly.
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.wake();
            tx
        });
        let start = Instant::now();
        poller
            .wait(Some(Duration::from_secs(5)), &mut events)
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(2));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);

        // Drained, the pipe reports nothing further.
        rx.drain();
        events.clear();
        poller
            .wait(Some(Duration::from_millis(5)), &mut events)
            .unwrap();
        assert!(events.is_empty());
        drop(waker.join().unwrap());
    }

    #[test]
    fn sockets_report_read_and_write_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        // A fresh connected socket is writable but not readable.
        poller.register(server.as_raw_fd(), 7, true, true).unwrap();
        let mut events = Vec::new();
        poller
            .wait(Some(Duration::from_millis(200)), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));
        assert!(!events.iter().any(|e| e.token == 7 && e.readable));

        // After the client writes, read readiness appears.
        client.write_all(b"ping\n").unwrap();
        events.clear();
        poller.modify(server.as_raw_fd(), 7, true, false).unwrap();
        poller
            .wait(Some(Duration::from_secs(2)), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let mut buf = [0u8; 8];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping\n");

        // Deregistered fds never report again.
        poller.deregister(server.as_raw_fd()).unwrap();
        client.write_all(b"more\n").unwrap();
        events.clear();
        poller
            .wait(Some(Duration::from_millis(50)), &mut events)
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn timeout_rounds_up_not_down() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
        assert_eq!(
            timeout_ms(Some(Duration::from_nanos(250_000_001))),
            251,
            "fractional milliseconds round up"
        );
    }

    #[test]
    fn fd_limit_helpers_report_sane_values() {
        let soft = fd_soft_limit().expect("getrlimit works");
        assert!(soft >= 64, "any realistic environment allows 64 fds");
        // Raising toward the current soft limit is a no-op that reports it back.
        assert!(raise_fd_limit(64) >= 64);
    }
}
