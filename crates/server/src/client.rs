//! A small blocking client for the wire protocol, plus a goal-driven session driver.
//!
//! [`Client`] is the thin request/response half: one method per command, each writing one line
//! and parsing one reply. [`drive_goal_session`] layers the *simulated user* on top: it answers
//! the server's questions according to a hidden goal evaluated client-side (rebuilding the
//! named corpus locally — corpora are deterministic recipes, see [`crate::corpus`]), which is
//! exactly what the loopback integration tests, the `server_throughput` bench and the binary's
//! `--smoke` mode need. A real deployment replaces this layer with a human.

use std::collections::{BTreeSet, HashMap};
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use qbe_core::algebra::{ConjQuery, EvalCache, PathAtom, QueryStore, Term as AlgTerm};
use qbe_core::graph::{eval_conj_tuples, eval_expr_pairs, GNodeId, QueryClass};
use qbe_core::twig::interactive::{GoalNodeOracle, NodeOracle};
use qbe_core::twig::parse_xpath;
use qbe_core::xml::NodeId;

use crate::corpus::{build_corpus, Corpus};
use crate::protocol::{field_value, parse_fields_line, Model, MAX_LINE_BYTES};
use crate::server::{read_line_bounded, LineError};

/// Process-wide cache of locally rebuilt corpora: goal-driven clients re-derive the *same*
/// deterministic corpus for every session they run (often hundreds in a bench), and building
/// documents plus indexes per session would dwarf the protocol work being measured.
static LOCAL_CORPORA: OnceLock<Mutex<HashMap<String, Arc<Corpus>>>> = OnceLock::new();

/// The client-side copy of the named corpus, built on first request and shared (behind an
/// `Arc`) by every later [`drive_goal_session`] of this process — mirroring the server's
/// [`CorpusStore`](crate::corpus::CorpusStore) contract of one builder, everyone else waits
/// and shares. `None` for unknown names.
pub fn local_corpus(name: &str) -> Option<Arc<Corpus>> {
    let cache = LOCAL_CORPORA.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache
        .lock()
        .expect("local corpus cache lock never poisoned");
    if let Some(corpus) = map.get(name) {
        return Some(corpus.clone());
    }
    let corpus = Arc::new(build_corpus(name)?);
    map.insert(name.to_string(), corpus.clone());
    Some(corpus)
}

/// How many distinct corpora this process has built client-side so far. Because the cache
/// never evicts, the count per name can only ever be 0 or 1 — the loopback tests assert the
/// cache hit through it.
pub fn local_corpus_builds() -> usize {
    LOCAL_CORPORA
        .get()
        .map(|cache| {
            cache
                .lock()
                .expect("local corpus cache lock never poisoned")
                .len()
        })
        .unwrap_or(0)
}

/// Reply to an `ASK`.
#[derive(Debug, Clone, PartialEq)]
pub enum AskReply {
    /// A pending membership question, as `key=value` fields.
    Question(Vec<(String, String)>),
    /// The session is complete.
    Done {
        /// Questions the session asked in total.
        questions: usize,
        /// Whether the collected labels stayed consistent.
        consistent: bool,
    },
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Client-side protocol failure: an `-ERR` reply, a malformed reply, or transport trouble.
#[derive(Debug)]
pub enum ClientError {
    /// The server answered `-ERR …`.
    Server(String),
    /// The reply did not match the expected shape.
    UnexpectedReply(String),
    /// Transport-level failure.
    Io(io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::UnexpectedReply(line) => write!(f, "unexpected reply: {line:?}"),
            ClientError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

type Result<T> = std::result::Result<T, ClientError>;

impl Client {
    /// Connect and consume the server's greeting (errors on a capacity rejection).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_with_timeouts(addr, Duration::from_secs(30), Duration::from_secs(10))
    }

    /// [`connect`](Client::connect) with explicit read/write timeouts — the resilient client
    /// wants a per-request deadline much shorter than the interactive default.
    pub fn connect_with_timeouts(
        addr: impl ToSocketAddrs,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(write_timeout))?;
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
        };
        client.read_ok()?; // greeting
        Ok(client)
    }

    /// Write one request line without waiting for the reply. Paired with
    /// [`receive_checked`](Client::receive_checked) this is the seam the fault-injecting
    /// resilient client needs to lose a reply *after* the request went out.
    pub(crate) fn send_line(&mut self, line: &str) -> Result<()> {
        writeln!(self.writer, "{line}")?;
        Ok(())
    }

    /// Tear the connection down immediately (both directions). Subsequent reads fail fast
    /// instead of waiting out the read timeout — used when a client-side fault drops the link.
    pub(crate) fn shutdown(&self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Both);
    }

    /// Read one reply line and surface `-ERR` as [`ClientError::Server`].
    pub(crate) fn receive_checked(&mut self) -> Result<String> {
        let reply = self.read_reply()?;
        if let Some(err) = reply.strip_prefix("-ERR ") {
            return Err(ClientError::Server(err.to_string()));
        }
        if !reply.starts_with('+') {
            return Err(ClientError::UnexpectedReply(reply));
        }
        Ok(reply)
    }

    fn read_reply(&mut self) -> Result<String> {
        match read_line_bounded(&mut self.reader, MAX_LINE_BYTES * 4) {
            Ok(line) => Ok(line),
            Err(LineError::Io(e)) => Err(ClientError::Io(e)),
            Err(LineError::Closed) => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            Err(LineError::TimedOut) => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "no reply within the read timeout",
            ))),
            Err(LineError::TooLong) => Err(ClientError::UnexpectedReply(
                "oversized reply line".to_string(),
            )),
        }
    }

    /// Send one line, read one reply, surface `-ERR` as [`ClientError::Server`].
    fn roundtrip(&mut self, line: &str) -> Result<String> {
        self.send_line(line)?;
        self.receive_checked()
    }

    fn read_ok(&mut self) -> Result<String> {
        let reply = self.read_reply()?;
        reply
            .strip_prefix("+OK")
            .map(|rest| rest.trim().to_string())
            .ok_or(ClientError::Server(
                reply.trim_start_matches("-ERR ").to_string(),
            ))
    }

    /// `HELLO` — returns the server's capability line.
    pub fn hello(&mut self) -> Result<String> {
        self.roundtrip("HELLO")
    }

    /// `CORPUS <name>` — attach to a shared corpus; returns the summary fields.
    pub fn corpus(&mut self, name: &str) -> Result<Vec<(String, String)>> {
        let reply = self.roundtrip(&format!("CORPUS {name}"))?;
        let Some(payload) = reply.strip_prefix("+OK corpus ") else {
            return Err(ClientError::UnexpectedReply(reply));
        };
        parse_fields_line(payload).map_err(|_| ClientError::UnexpectedReply(reply.clone()))
    }

    /// `START <model> [params]` — open a session; returns its id.
    pub fn start(&mut self, model: Model, params: &[(&str, &str)]) -> Result<u64> {
        let mut line = format!("START {model}");
        for (k, v) in params {
            line.push_str(&format!(" {k}={v}"));
        }
        let reply = self.roundtrip(&line)?;
        reply
            .strip_prefix("+OK session id=")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|id| id.parse().ok())
            .ok_or(ClientError::UnexpectedReply(reply))
    }

    /// `RESUME <id>` — attach to an existing session (after a reconnect or a server restart
    /// with persistence on; protocol ≥ 1.3). Returns the session's model name.
    pub fn resume(&mut self, id: u64) -> Result<String> {
        let reply = self.roundtrip(&format!("RESUME {id}"))?;
        reply
            .strip_prefix("+OK session id=")
            .and_then(|rest| {
                let mut tokens = rest.split_whitespace();
                let replied_id: u64 = tokens.next()?.parse().ok()?;
                if replied_id != id {
                    return None;
                }
                tokens.next()?.strip_prefix("model=").map(str::to_string)
            })
            .ok_or(ClientError::UnexpectedReply(reply))
    }

    /// `ASK` — the next question, or the completion notice.
    pub fn ask(&mut self) -> Result<AskReply> {
        let reply = self.roundtrip("ASK")?;
        parse_ask_reply(&reply)
    }

    /// `ANSWER yes|no`.
    pub fn answer(&mut self, positive: bool) -> Result<()> {
        self.roundtrip(if positive { "ANSWER yes" } else { "ANSWER no" })?;
        Ok(())
    }

    /// `QUERY` — the current hypothesis text.
    pub fn query(&mut self) -> Result<String> {
        let reply = self.roundtrip("QUERY")?;
        reply
            .strip_prefix("+QUERY ")
            .map(str::to_string)
            .ok_or(ClientError::UnexpectedReply(reply))
    }

    /// `EVAL` — answer-set size of the current hypothesis.
    pub fn eval(&mut self) -> Result<usize> {
        let reply = self.roundtrip("EVAL")?;
        reply
            .strip_prefix("+EVAL ")
            .and_then(|n| n.parse().ok())
            .ok_or(ClientError::UnexpectedReply(reply))
    }

    /// `METRICS` — aggregate service statistics as fields.
    pub fn metrics(&mut self) -> Result<Vec<(String, String)>> {
        let reply = self.roundtrip("METRICS")?;
        let Some(payload) = reply.strip_prefix("+METRICS ") else {
            return Err(ClientError::UnexpectedReply(reply));
        };
        parse_fields_line(payload).map_err(|_| ClientError::UnexpectedReply(reply.clone()))
    }

    /// `QUIT` — say goodbye (the server closes the connection).
    pub fn quit(&mut self) -> Result<()> {
        self.roundtrip("QUIT")?;
        Ok(())
    }
}

/// Parse a raw `+ASK …` / `+DONE …` reply line into an [`AskReply`].
pub(crate) fn parse_ask_reply(reply: &str) -> Result<AskReply> {
    if let Some(payload) = reply.strip_prefix("+ASK ") {
        return parse_fields_line(payload)
            .map(AskReply::Question)
            .map_err(|_| ClientError::UnexpectedReply(reply.to_string()));
    }
    if let Some(payload) = reply.strip_prefix("+DONE ") {
        let fields = parse_fields_line(payload)
            .map_err(|_| ClientError::UnexpectedReply(reply.to_string()))?;
        let questions = field_value(&fields, "questions")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ClientError::UnexpectedReply(reply.to_string()))?;
        let consistent = field_value(&fields, "consistent")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ClientError::UnexpectedReply(reply.to_string()))?;
        return Ok(AskReply::Done {
            questions,
            consistent,
        });
    }
    Err(ClientError::UnexpectedReply(reply.to_string()))
}

/// A hidden goal a simulated remote user answers according to.
#[derive(Debug, Clone)]
pub enum Goal {
    /// Twig sessions: an XPath goal evaluated against the (locally rebuilt) corpus documents.
    Twig(String),
    /// Path sessions: "every edge has this road type".
    PathRoadType(String),
    /// Join sessions: the corpus generator's reference predicate.
    Join,
    /// Graph-query sessions (protocol ≥ 1.2): membership of `(source, target)` pairs in the
    /// answer set of the class's demo goal query, evaluated client-side over the locally
    /// rebuilt typed road graph (see [`demo_graph_goal_pairs`]).
    GraphPairs(QueryClass),
}

/// The demo goal query of one class, evaluated to its answer set over the corpus's typed road
/// graph — the hidden intent simulated graph-model clients (tests, benches, `--smoke`) answer
/// according to. Deterministic per corpus, like [`Corpus::demo_join_goal`].
///
/// * `rpq` — one or more hops along the first road type (`t₀⁺`);
/// * `2rpq` — a forward `t₀` hop then an inverse one (`t₀/t₀⁻`: pairs sharing a `t₀`-successor);
/// * `crpq` — two cities connected by *both* a `t₀` and a `t₁` road
///   (`π_{x,y}(x —t₀→ y ∧ x —t₁→ y)`).
pub fn demo_graph_goal_pairs(corpus: &Corpus, class: QueryClass) -> BTreeSet<(GNodeId, GNodeId)> {
    let alphabet = corpus.typed_graph.edge_alphabet();
    let mut store = QueryStore::new();
    let mut cache = EvalCache::new();
    match class {
        QueryClass::Rpq => {
            let l = store.label(&alphabet[0]);
            let goal = store.plus(l);
            eval_expr_pairs(&corpus.typed_index, &store, &mut cache, goal)
        }
        QueryClass::TwoRpq => {
            let fwd = store.label(&alphabet[0]);
            let inv = store.inv_label(&alphabet[0]);
            let goal = store.concat([fwd, inv]);
            eval_expr_pairs(&corpus.typed_index, &store, &mut cache, goal)
        }
        QueryClass::Crpq => {
            let (x, y) = (store.sym("x"), store.sym("y"));
            let first = store.label(&alphabet[0]);
            let second = store.label(&alphabet[1 % alphabet.len()]);
            let goal = ConjQuery::new(
                vec![
                    PathAtom {
                        subject: AlgTerm::Var(x),
                        expr: first,
                        object: AlgTerm::Var(y),
                    },
                    PathAtom {
                        subject: AlgTerm::Var(x),
                        expr: second,
                        object: AlgTerm::Var(y),
                    },
                ],
                vec![x, y],
            );
            eval_conj_tuples(&corpus.typed_index, &store, &mut cache, &goal)
                .into_iter()
                .map(|t| (t[0], t[1]))
                .collect()
        }
    }
}

/// What [`drive_goal_session`] observed.
#[derive(Debug, Clone)]
pub struct GoalSessionOutcome {
    /// Session id the server assigned.
    pub session_id: u64,
    /// Questions the client answered.
    pub questions: usize,
    /// Whether the server reported the labels consistent at completion.
    pub consistent: bool,
    /// The final hypothesis text (`QUERY`).
    pub hypothesis: String,
    /// The final answer-set size (`EVAL`).
    pub answer_set_size: usize,
}

/// Extract the `(doc, node)` a twig question identifies (shape checked client-side).
fn twig_question_item(fields: &[(String, String)]) -> Result<(usize, NodeId)> {
    let get = |key: &str| {
        field_value(fields, key)
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or_else(|| ClientError::UnexpectedReply(format!("missing/non-numeric {key}")))
    };
    Ok((get("doc")?, NodeId::from_index(get("node")?)))
}

/// Client-side evaluation of a [`Goal`] against the locally rebuilt corpus: turns a
/// question's wire fields into the *true* yes/no label. Shared by [`drive_goal_session`]
/// and the resilient driver (which may then flip the label through its noise model).
pub(crate) struct GoalEvaluator<'a> {
    goal: Goal,
    local: &'a Corpus,
    twig_oracle: Option<GoalNodeOracle<'a>>,
    join_goal: Option<qbe_core::relational::JoinPredicate>,
    graph_goal: Option<BTreeSet<(GNodeId, GNodeId)>>,
}

impl<'a> GoalEvaluator<'a> {
    /// Build the evaluator (parses the twig goal's XPath, materialises the graph goal's
    /// answer set; both deterministic per corpus).
    pub(crate) fn new(local: &'a Corpus, goal: &Goal) -> Result<GoalEvaluator<'a>> {
        let twig_oracle = match goal {
            Goal::Twig(xpath) => {
                let goal_query = parse_xpath(xpath)
                    .map_err(|e| ClientError::Server(format!("bad goal xpath: {e:?}")))?;
                Some(GoalNodeOracle::new(&local.docs, goal_query))
            }
            _ => None,
        };
        let join_goal = match goal {
            Goal::Join => Some(local.demo_join_goal.clone()),
            _ => None,
        };
        let graph_goal = match goal {
            Goal::GraphPairs(class) => Some(demo_graph_goal_pairs(local, *class)),
            _ => None,
        };
        Ok(GoalEvaluator {
            goal: goal.clone(),
            local,
            twig_oracle,
            join_goal,
            graph_goal,
        })
    }

    /// The wire model the goal implies.
    pub(crate) fn model(&self) -> Model {
        match self.goal {
            Goal::Twig(_) => Model::Twig,
            Goal::PathRoadType(_) => Model::Path,
            Goal::Join => Model::Join,
            Goal::GraphPairs(_) => Model::Graph,
        }
    }

    /// The true label of one question (its `key=value` fields as served by `ASK`).
    pub(crate) fn label(&mut self, fields: &[(String, String)]) -> Result<bool> {
        Ok(match &self.goal {
            Goal::Twig(_) => {
                let (doc, node) = twig_question_item(fields)?;
                self.twig_oracle
                    .as_mut()
                    .expect("twig goal implies twig oracle")
                    .label(doc, node)
            }
            Goal::PathRoadType(road_type) => field_value(fields, "types")
                .map(|v| v.split(',').any(|t| t == road_type))
                .unwrap_or(false),
            Goal::Join => {
                let get = |key: &str| {
                    field_value(fields, key)
                        .and_then(|v| v.parse::<usize>().ok())
                        .ok_or_else(|| ClientError::UnexpectedReply(format!("missing field {key}")))
                };
                let (l, r) = (get("left")?, get("right")?);
                self.join_goal
                    .as_ref()
                    .expect("join goal implies predicate")
                    .satisfied_by(&self.local.left.tuples()[l], &self.local.right.tuples()[r])
            }
            Goal::GraphPairs(_) => {
                let get = |key: &str| {
                    field_value(fields, key)
                        .and_then(|v| v.parse::<u32>().ok())
                        .ok_or_else(|| ClientError::UnexpectedReply(format!("missing field {key}")))
                };
                let (s, t) = (get("source_id")?, get("target_id")?);
                self.graph_goal
                    .as_ref()
                    .expect("graph goal implies an answer set")
                    .contains(&(GNodeId(s), GNodeId(t)))
            }
        })
    }
}

/// Drive one session over the wire to completion, answering every question according to
/// `goal`, then collect the learned query and its answer-set size.
///
/// The corpus named `corpus` is rebuilt locally so the client can evaluate its goal — the
/// remote user's "intent" never crosses the wire, only yes/no labels do, exactly as in the
/// paper's interactive protocol. The rebuild happens once per corpus name per process (see
/// [`local_corpus`]), not once per session.
pub fn drive_goal_session(
    addr: impl ToSocketAddrs,
    corpus: &str,
    goal: &Goal,
    start_params: &[(&str, &str)],
) -> Result<GoalSessionOutcome> {
    let local: Arc<Corpus> = local_corpus(corpus).ok_or_else(|| {
        ClientError::Server(format!("unknown corpus {corpus:?} (client-side build)"))
    })?;
    // The standard goal oracle from qbe-twig, borrowing the locally rebuilt corpus (no copy):
    // per-document goal answer sets are computed lazily, once per session.
    let mut evaluator = GoalEvaluator::new(&local, goal)?;

    let mut client = Client::connect(addr)?;
    client.corpus(corpus)?;
    // The goal already names the query class, so the `class=` option rides along implicitly.
    let mut params: Vec<(&str, &str)> = start_params.to_vec();
    if let Goal::GraphPairs(class) = goal {
        params.push(("class", class.wire_name()));
    }
    let session_id = client.start(evaluator.model(), &params)?;
    let mut asked = 0usize;
    let (questions, consistent) = loop {
        match client.ask()? {
            AskReply::Done {
                questions,
                consistent,
            } => break (questions, consistent),
            AskReply::Question(fields) => {
                let positive = evaluator.label(&fields)?;
                client.answer(positive)?;
                asked += 1;
            }
        }
    };
    debug_assert_eq!(asked, questions, "server and client count questions alike");
    let hypothesis = client.query()?;
    let answer_set_size = client.eval()?;
    client.quit()?;
    Ok(GoalSessionOutcome {
        session_id,
        questions,
        consistent,
        hypothesis,
        answer_set_size,
    })
}
