//! Loopback tests specific to the serving-tier rewrite: the event-driven engine's defensive
//! behaviours (slow-loris deadlines, capacity bursts, rate limiting, load shedding, idle
//! scale), plus the differential test pinning both engines to byte-identical protocol
//! behaviour.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use qbe_server::client::{drive_goal_session, Client, Goal};
use qbe_server::server::{read_line_bounded, spawn, ServerConfig};
use qbe_server::{Engine, RateLimit};

/// A raw line-protocol client: no retries, no interpretation, just request → reply strings.
struct Raw {
    reader: std::io::BufReader<TcpStream>,
}

impl Raw {
    fn connect(addr: SocketAddr) -> (Raw, String) {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut raw = Raw {
            reader: std::io::BufReader::new(stream),
        };
        let greeting = raw.read_line();
        (raw, greeting)
    }

    fn read_line(&mut self) -> String {
        read_line_bounded(&mut self.reader, 4096).expect("a reply line")
    }

    fn roundtrip(&mut self, line: &str) -> String {
        let mut sock = self.reader.get_ref();
        sock.write_all(line.as_bytes()).expect("request written");
        sock.write_all(b"\n").expect("request written");
        self.read_line()
    }
}

fn metric(metrics: &[(String, String)], key: &str) -> u64 {
    qbe_server::protocol::field_value(metrics, key)
        .unwrap_or_else(|| panic!("metrics carry {key}"))
        .parse()
        .unwrap_or_else(|_| panic!("{key} is numeric"))
}

/// The engines must be indistinguishable on the wire: the full PROTOCOL.md vocabulary —
/// happy paths, protocol errors, session replacement, metrics — replayed against a fresh
/// server per engine, replies compared verbatim (minus the one wall-clock-dependent field).
#[test]
fn both_engines_serve_identical_transcripts() {
    // Budget 2 pins the twig session's length; seeds pin every question. The transcript
    // exercises HELLO, CORPUS (unknown + known), START (bad strategy + twig + replacement by
    // join), ASK/ANSWER (including ANSWER with nothing pending), QUERY (too early + after
    // convergence), EVAL, METRICS, QUIT, and a malformed command.
    const TRANSCRIPT: &[&str] = &[
        "HELLO",
        "BOGUS bogus",
        "ASK",
        "CORPUS nope",
        "CORPUS tiny",
        "START twig strategy=psychic",
        "START twig seed=7 budget=2",
        "QUERY",
        "ANSWER yes",
        "ASK",
        "ANSWER yes",
        "ASK",
        "ANSWER no",
        "ASK",
        "QUERY",
        "EVAL",
        "START join seed=3",
        "ASK",
        "METRICS",
        "QUIT",
    ];

    /// Drop the wall-clock field: it is the one legitimately nondeterministic value.
    fn normalized(reply: &str) -> String {
        reply
            .split(' ')
            .filter(|f| !f.starts_with("throughput_per_s="))
            .collect::<Vec<_>>()
            .join(" ")
    }

    let run = |engine: Engine| -> Vec<String> {
        let handle = spawn(ServerConfig {
            engine,
            ..Default::default()
        })
        .unwrap();
        let (mut raw, greeting) = Raw::connect(handle.addr());
        let mut replies = vec![greeting];
        for line in TRANSCRIPT {
            replies.push(normalized(&raw.roundtrip(line)));
        }
        drop(raw);
        handle.shutdown();
        replies
    };

    let event = run(Engine::Event);
    let blocking = run(Engine::Blocking);
    assert_eq!(event.len(), blocking.len());
    for ((request, e), b) in std::iter::once(&"<greeting>")
        .chain(TRANSCRIPT)
        .zip(&event)
        .zip(&blocking)
    {
        assert_eq!(e, b, "engines disagree on {request:?}");
    }
    // And the transcript really covered both outcomes.
    assert!(event.iter().any(|r| r.starts_with("+ASK")));
    assert!(event.iter().any(|r| r.starts_with("+DONE")));
    assert!(event.iter().any(|r| r.starts_with("-ERR")));
    assert!(event.iter().any(|r| r.starts_with("+METRICS")));
}

/// The slow-loris regression: a client trickling bytes faster than the *per-read* timeout
/// but never completing a line is disconnected at the total per-line deadline — on both
/// engines — and the close is visible in the `timeouts` counter.
#[test]
fn trickling_clients_are_disconnected_at_the_deadline() {
    for engine in [Engine::Event, Engine::Blocking] {
        let handle = spawn(ServerConfig {
            engine,
            read_timeout: Duration::from_millis(400),
            ..Default::default()
        })
        .unwrap();
        let addr = handle.addr();

        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        assert!(read_line_bounded(&mut reader, 4096)
            .unwrap()
            .starts_with("+OK"));

        // Trickle one byte every 80 ms — well inside any per-read timeout of 400 ms, so only
        // a *total* deadline can end this connection.
        let start = Instant::now();
        let trickler = std::thread::spawn(move || {
            let mut sock = stream;
            for _ in 0..50 {
                if sock.write_all(b"x").is_err() {
                    break; // server closed us: exactly what the test wants
                }
                std::thread::sleep(Duration::from_millis(80));
            }
        });

        // The server must end the connection (error line, then EOF) around the deadline.
        let reply = read_line_bounded(&mut reader, 4096).unwrap();
        let elapsed = start.elapsed();
        assert!(
            reply.contains("idle timeout"),
            "{}: expected the timeout notice, got {reply:?}",
            engine.name()
        );
        assert!(
            elapsed >= Duration::from_millis(350),
            "{}: closed before the deadline: {elapsed:?}",
            engine.name()
        );
        assert!(
            elapsed < Duration::from_secs(2),
            "{}: the trickle extended the deadline: {elapsed:?}",
            engine.name()
        );
        let mut rest = Vec::new();
        let _ = reader.read_to_end(&mut rest); // EOF or reset — never a hang
        trickler.join().unwrap();

        let mut probe = Client::connect(addr).unwrap();
        let metrics = probe.metrics().unwrap();
        assert_eq!(
            metric(&metrics, "timeouts"),
            1,
            "{}: the disconnect is visible in METRICS",
            engine.name()
        );
        drop(probe);
        handle.shutdown();
    }
}

/// The accept-path regression: a burst of connections past capacity — none of which ever
/// reads its rejection — must neither stall later accepts nor leak slots, and the rejections
/// are counted.
#[test]
fn capacity_bursts_do_not_delay_accepts_and_are_counted() {
    for engine in [Engine::Event, Engine::Blocking] {
        let handle = spawn(ServerConfig {
            engine,
            max_connections: 1,
            ..Default::default()
        })
        .unwrap();
        let addr = handle.addr();

        let occupant = Client::connect(addr).expect("first connection admitted");
        // Burst: 8 connections that never read a byte. With a blocking rejection write this
        // could cost up to 8 × write_timeout of accept stall; now it must be instant.
        let start = Instant::now();
        let burst: Vec<TcpStream> = (0..8)
            .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}")))
            .collect();
        // The server has processed the whole burst once a later connection gets its
        // rejection line: TCP accept order is FIFO.
        let (mut probe_raw, greeting) = Raw::connect(addr);
        assert!(
            greeting.contains("capacity"),
            "{}: over capacity, got {greeting:?}",
            engine.name()
        );
        let burst_elapsed = start.elapsed();
        assert!(
            burst_elapsed < Duration::from_secs(5),
            "{}: the burst stalled accepts for {burst_elapsed:?}",
            engine.name()
        );
        let mut rest = Vec::new();
        let _ = probe_raw.reader.read_to_end(&mut rest);
        drop(probe_raw);
        drop(burst);

        // Free the slot; the next client is admitted promptly.
        drop(occupant);
        let freed = Instant::now();
        let mut again = loop {
            match Client::connect(addr) {
                Ok(client) => break client,
                Err(_) => {
                    assert!(
                        freed.elapsed() < Duration::from_secs(5),
                        "{}: slot never freed after disconnect",
                        engine.name()
                    );
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        let metrics = again.metrics().unwrap();
        assert!(
            metric(&metrics, "rejected") >= 9,
            "{}: 8 burst + 1 probe rejections recorded, got {}",
            engine.name(),
            metric(&metrics, "rejected")
        );
        drop(again);
        handle.shutdown();
    }
}

/// Token-bucket rate limiting on the event engine: `ASK` costs a token, `ANSWER` never does,
/// an empty bucket sheds with a retryable error, and elapsed time refills it.
#[test]
fn rate_limit_sheds_excess_asks_but_answers_always_pass() {
    let handle = spawn(ServerConfig {
        engine: Engine::Event,
        rate_limit: Some(RateLimit {
            burst: 1,
            per_sec: 5.0,
        }),
        ..Default::default()
    })
    .unwrap();
    let (mut raw, _) = Raw::connect(handle.addr());
    assert!(raw.roundtrip("CORPUS tiny").starts_with("+OK"));
    assert!(raw.roundtrip("START twig seed=7").starts_with("+OK"));

    // The single burst token pays for the first ASK…
    assert!(raw.roundtrip("ASK").starts_with("+ASK"));
    // …the immediate second ASK is shed (refill at 5/s cannot have produced a token in
    // microseconds)…
    let shed = raw.roundtrip("ASK");
    assert!(shed.contains("rate limit"), "{shed}");
    // …but ANSWER is never rate limited: the client can always finish what it started.
    assert!(raw.roundtrip("ANSWER yes").starts_with("+OK"));
    // A refill interval later, ASK works again.
    std::thread::sleep(Duration::from_millis(250));
    assert!(raw.roundtrip("ASK").starts_with("+ASK"));

    let metrics_line = raw.roundtrip("METRICS");
    assert!(metrics_line.contains("shed=1"), "{metrics_line}");
    assert!(raw.roundtrip("QUIT").starts_with("+OK"));
    drop(raw);
    handle.shutdown();
}

/// Load shedding under a saturated worker queue: with the shed threshold at zero, every
/// sheddable request is refused with a retryable error while setup and teardown commands
/// still run — the session winds down cleanly even under (simulated) total overload.
#[test]
fn saturated_queues_shed_ask_and_eval_but_not_answer_and_quit() {
    let handle = spawn(ServerConfig {
        engine: Engine::Event,
        shed_queue_depth: 0,
        ..Default::default()
    })
    .unwrap();
    let (mut raw, _) = Raw::connect(handle.addr());
    assert!(raw.roundtrip("CORPUS tiny").starts_with("+OK"));
    assert!(raw.roundtrip("START twig").starts_with("+OK"));
    let ask = raw.roundtrip("ASK");
    assert!(ask.contains("overloaded"), "{ask}");
    let eval = raw.roundtrip("EVAL");
    assert!(eval.contains("overloaded"), "{eval}");
    let metrics_line = raw.roundtrip("METRICS");
    assert!(metrics_line.contains("shed=2"), "{metrics_line}");
    assert!(raw.roundtrip("QUIT").starts_with("+OK bye"));
    drop(raw);
    handle.shutdown();
}

/// Scale smoke: hundreds of idle connections (thousands via `QBE_SOAK_CONNS`) held open on
/// the event engine cost nothing — a learning session still converges at full speed alongside
/// them, and closing them all drains the admission count back to zero.
#[test]
fn idle_connection_soak_leaves_sessions_fast() {
    let conns: usize = std::env::var("QBE_SOAK_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(512);
    let handle = spawn(ServerConfig {
        engine: Engine::Event,
        max_connections: conns + 16,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    let idle: Vec<Raw> = (0..conns)
        .map(|i| {
            let (raw, greeting) = Raw::connect(addr);
            assert!(greeting.starts_with("+OK"), "conn {i}: {greeting}");
            raw
        })
        .collect();
    assert_eq!(handle.active_connections(), conns);

    // A session among the idle thousands converges as if they were not there.
    let start = Instant::now();
    let outcome = drive_goal_session(
        addr,
        "tiny",
        &Goal::Twig("//person/name".into()),
        &[("seed", "7")],
    )
    .expect("session converges among idle connections");
    assert!(outcome.consistent);
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "idle connections slowed the session to {:?}",
        start.elapsed()
    );

    // Some idle connections still work after the session traffic.
    for mut raw in idle.into_iter().take(3) {
        assert!(raw.roundtrip("HELLO").starts_with("+OK"));
        drop(raw);
    }
    // (the rest dropped with the vec)
    let drained = Instant::now();
    while handle.active_connections() > 0 {
        assert!(
            drained.elapsed() < Duration::from_secs(10),
            "{} connections never drained",
            handle.active_connections()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}
