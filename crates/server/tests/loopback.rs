//! Loopback integration tests: a real server on an ephemeral port, real TCP clients.
//!
//! The headline test is the acceptance criterion of the serving layer: two *concurrent*
//! client sessions — different goals, one shared corpus — each converge to their target query
//! through nothing but the wire protocol, and `METRICS` afterwards reconciles with what the
//! clients observed.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use qbe_server::client::{drive_goal_session, Client, Goal};
use qbe_server::server::{read_line_bounded, spawn, ServerConfig};
use qbe_server::{build_corpus, Model};

use qbe_core::twig::{eval, parse_xpath};

fn test_server() -> qbe_server::ServerHandle {
    spawn(ServerConfig::default()).expect("binding 127.0.0.1:0 succeeds")
}

fn metric(metrics: &[(String, String)], key: &str) -> String {
    qbe_server::protocol::field_value(metrics, key)
        .unwrap_or_else(|| panic!("metrics carry {key}"))
        .to_string()
}

#[test]
fn two_concurrent_sessions_converge_and_metrics_reconcile() {
    let handle = test_server();
    let addr = handle.addr();

    // Two users with different intents, concurrently, over the same shared corpus.
    let goals = ["//person/name", "//item/name"];
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = goals
            .iter()
            .map(|goal| {
                scope.spawn(move || {
                    drive_goal_session(
                        addr,
                        "tiny",
                        &Goal::Twig(goal.to_string()),
                        &[("seed", "7")],
                    )
                    .expect("session runs to completion")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Each session converged to a query *semantically equal to its goal* on the corpus: the
    // rendered hypothesis parses back and selects exactly the goal's nodes.
    let corpus = build_corpus("tiny").unwrap();
    for (goal_text, outcome) in goals.iter().zip(&outcomes) {
        assert!(outcome.consistent, "{goal_text}: labels stayed consistent");
        assert!(outcome.questions > 0);
        let goal = parse_xpath(goal_text).unwrap();
        let learned = parse_xpath(&outcome.hypothesis)
            .unwrap_or_else(|e| panic!("learned query {:?} parses: {e:?}", outcome.hypothesis));
        let mut goal_total = 0;
        for doc in corpus.docs.iter() {
            let goal_set = eval::select(&goal, doc);
            goal_total += goal_set.len();
            assert_eq!(
                eval::select(&learned, doc),
                goal_set,
                "{goal_text}: learned {} selects a different answer set",
                outcome.hypothesis
            );
        }
        assert_eq!(
            outcome.answer_set_size, goal_total,
            "{goal_text}: EVAL agrees with a local indexed evaluation"
        );
    }
    assert_ne!(
        outcomes[0].session_id, outcomes[1].session_id,
        "sessions get distinct ids"
    );

    // METRICS reconciles with what the two clients observed.
    let mut client = Client::connect(addr).unwrap();
    let metrics = client.metrics().unwrap();
    assert_eq!(metric(&metrics, "sessions"), "2");
    assert_eq!(metric(&metrics, "ok"), "2");
    assert_eq!(metric(&metrics, "active"), "0");
    let mut questions: Vec<usize> = outcomes.iter().map(|o| o.questions).collect();
    questions.sort_unstable();
    let total: usize = questions.iter().sum();
    assert_eq!(metric(&metrics, "total_questions"), total.to_string());
    let p50: usize = metric(&metrics, "p50_questions").parse().unwrap();
    let p95: usize = metric(&metrics, "p95_questions").parse().unwrap();
    assert_eq!(p50, questions[0], "nearest-rank p50 of two sessions");
    assert_eq!(p95, questions[1], "nearest-rank p95 of two sessions");
    assert!(metric(&metrics, "throughput_per_s").parse::<f64>().unwrap() > 0.0);
    // Nothing went wrong in this run, and the health counters say so explicitly.
    assert_eq!(metric(&metrics, "rejected"), "0");
    assert_eq!(metric(&metrics, "timeouts"), "0");
    assert_eq!(metric(&metrics, "shed"), "0");
    // No faults configured, no drops survived, no questions re-served: the resilience
    // counters (protocol 1.3 additive fields) are all explicitly zero on a clean run.
    assert_eq!(metric(&metrics, "retries"), "0");
    assert_eq!(metric(&metrics, "reasks"), "0");
    assert_eq!(metric(&metrics, "faults_injected"), "0");

    handle.shutdown();
}

#[test]
fn all_three_models_learn_over_the_wire() {
    let handle = test_server();
    let addr = handle.addr();

    let twig = drive_goal_session(addr, "tiny", &Goal::Twig("//person/name".into()), &[]).unwrap();
    assert!(twig.consistent);
    assert!(twig.hypothesis.contains("person"), "{}", twig.hypothesis);

    let path = drive_goal_session(
        addr,
        "tiny",
        &Goal::PathRoadType("highway".into()),
        &[("to", "city3")],
    )
    .unwrap();
    assert!(path.consistent);
    // The learned constraint may be any most specific hypothesis extensionally equal to the
    // goal on the candidate paths, so the convergence check is semantic: its answer set (EVAL)
    // matches a local re-evaluation of the goal over the same (deterministic) candidates.
    let corpus = build_corpus("tiny").unwrap();
    let from = corpus.graph.find_node_by_property("name", "city0").unwrap();
    let to = corpus.graph.find_node_by_property("name", "city3").unwrap();
    let goal_accepted = qbe_core::graph::simple_paths(&corpus.graph, from, to, 6)
        .iter()
        .filter(|p| {
            qbe_core::graph::interactive::PathFeatures::of(&corpus.graph, p)
                .uniform_types
                .contains("highway")
        })
        .count();
    assert_eq!(
        path.answer_set_size, goal_accepted,
        "path EVAL matches the goal's answer set ({})",
        path.hypothesis
    );

    let join = drive_goal_session(addr, "tiny", &Goal::Join, &[]).unwrap();
    assert!(join.consistent);
    let goal_pairs = qbe_core::relational::interactive::selected_pairs(
        &corpus.left,
        &corpus.right,
        &corpus.demo_join_goal,
    );
    assert_eq!(
        join.answer_set_size,
        goal_pairs.len(),
        "join EVAL matches the goal's answer set ({})",
        join.hypothesis
    );

    let mut client = Client::connect(addr).unwrap();
    let metrics = client.metrics().unwrap();
    assert_eq!(metric(&metrics, "sessions"), "3");
    assert_eq!(metric(&metrics, "ok"), "3");

    handle.shutdown();
}

#[test]
fn graph_sessions_converge_for_every_query_class_over_the_wire() {
    use qbe_core::graph::QueryClass;
    use qbe_server::client::demo_graph_goal_pairs;

    let handle = test_server();
    let addr = handle.addr();

    // The ISSUE's acceptance criterion for the serving layer of the algebra work: 2RPQ and
    // conjunctive (CRPQ) sessions — plus plain RPQ — converge end-to-end through protocol
    // v1.2, with the client acting as its own oracle over the locally rebuilt typed view.
    let corpus = qbe_server::local_corpus("tiny").expect("tiny is a known corpus");
    for class in QueryClass::ALL {
        let goal = demo_graph_goal_pairs(&corpus, class);
        assert!(
            !goal.is_empty(),
            "{}: demo goal selects pairs",
            class.wire_name()
        );
        let outcome = drive_goal_session(addr, "tiny", &Goal::GraphPairs(class), &[("seed", "7")])
            .unwrap_or_else(|e| panic!("{}: session runs to completion: {e}", class.wire_name()));
        assert!(
            outcome.consistent,
            "{}: labels stayed consistent",
            class.wire_name()
        );
        assert!(outcome.questions > 0, "{}", class.wire_name());
        assert_eq!(
            outcome.answer_set_size,
            goal.len(),
            "{}: EVAL matches the goal's answer set ({})",
            class.wire_name(),
            outcome.hypothesis
        );
        assert!(
            !outcome.hypothesis.is_empty(),
            "{}: a hypothesis is rendered",
            class.wire_name()
        );
    }

    // The 2RPQ demo goal is genuinely two-way: it uses an inverse label, which only the
    // typed view + reverse-successor bitsets can answer.
    let two_way = demo_graph_goal_pairs(&corpus, QueryClass::TwoRpq);
    assert!(
        two_way.iter().any(|(s, t)| s == t),
        "ℓ·ℓ⁻ admits round trips back to the source"
    );

    let mut client = Client::connect(addr).unwrap();
    let metrics = client.metrics().unwrap();
    assert_eq!(metric(&metrics, "sessions"), "3");
    assert_eq!(metric(&metrics, "ok"), "3");

    handle.shutdown();
}

#[test]
fn hello_advertises_strategy_capabilities() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let hello = client.hello().unwrap();
    assert!(hello.contains("proto=1.3"), "{hello}");
    assert!(hello.contains("models=twig,path,join,graph"), "{hello}");
    assert!(hello.contains("classes=rpq,2rpq,crpq"), "{hello}");
    for name in qbe_core::STRATEGY_NAMES {
        assert!(hello.contains(name), "{hello} misses strategy {name}");
    }
    assert!(
        hello.contains("options=strategy,budget,seed,class"),
        "{hello}"
    );
    handle.shutdown();
}

#[test]
fn generic_strategies_and_budgets_work_over_the_wire() {
    let handle = test_server();
    let addr = handle.addr();

    // Every shipped model-agnostic strategy converges on every model, selected by wire name
    // (uppercase option keys are accepted, as the v1.1 protocol documents).
    for strategy in qbe_core::STRATEGY_NAMES {
        let twig = drive_goal_session(
            addr,
            "tiny",
            &Goal::Twig("//person/name".into()),
            &[("STRATEGY", strategy), ("seed", "7")],
        )
        .unwrap();
        assert!(twig.consistent, "{strategy}");
        assert!(
            twig.hypothesis.contains("person"),
            "{strategy}: {}",
            twig.hypothesis
        );
        let join = drive_goal_session(
            addr,
            "tiny",
            &Goal::Join,
            &[("strategy", strategy), ("seed", "3")],
        )
        .unwrap();
        assert!(join.consistent, "{strategy}");
        let path = drive_goal_session(
            addr,
            "tiny",
            &Goal::PathRoadType("highway".into()),
            &[("strategy", strategy), ("to", "city3")],
        )
        .unwrap();
        assert!(path.consistent, "{strategy}");
    }

    // A tight budget caps the questions: the session completes early with its current
    // hypothesis instead of labelling to convergence.
    let unbudgeted =
        drive_goal_session(addr, "tiny", &Goal::Twig("//person/name".into()), &[]).unwrap();
    assert!(unbudgeted.questions > 3);
    let mut client = Client::connect(addr).unwrap();
    client.corpus("tiny").unwrap();
    // Control: without a budget, one positive answer leaves further questions pending.
    client.start(Model::Twig, &[]).unwrap();
    match client.ask().unwrap() {
        qbe_server::AskReply::Question(_) => client.answer(true).unwrap(),
        done => panic!("expected a first question, got {done:?}"),
    }
    assert!(
        matches!(client.ask().unwrap(), qbe_server::AskReply::Question(_)),
        "an unbudgeted session keeps asking"
    );
    // Same session with budget=1 (uppercase option keys are accepted): after the one
    // affordable answer the server reports completion, and the positive label collected
    // within the budget still yields a hypothesis.
    client.start(Model::Twig, &[("BUDGET", "1")]).unwrap();
    match client.ask().unwrap() {
        qbe_server::AskReply::Question(_) => client.answer(true).unwrap(),
        done => panic!("expected a first question, got {done:?}"),
    }
    match client.ask().unwrap() {
        qbe_server::AskReply::Done {
            questions,
            consistent,
        } => {
            assert_eq!(questions, 1, "the session stopped at its budget");
            assert!(consistent);
        }
        question => panic!("budget spent, expected Done, got {question:?}"),
    }
    client.query().unwrap();
    client.quit().unwrap();

    // Unknown strategy names are rejected with the full vocabulary.
    let mut client = Client::connect(addr).unwrap();
    client.corpus("tiny").unwrap();
    match client.start(Model::Twig, &[("strategy", "psychic")]) {
        Err(qbe_server::ClientError::Server(msg)) => {
            assert!(msg.contains("label-affinity"), "{msg}");
            assert!(msg.contains("max-coverage"), "{msg}");
        }
        other => panic!("expected a strategy rejection, got {other:?}"),
    }

    handle.shutdown();
}

#[test]
fn goal_driven_clients_rebuild_each_corpus_once_per_process() {
    let handle = test_server();
    let addr = handle.addr();

    // Two goal-driven sessions over the same corpus: the second must hit the client-side
    // cache, not rebuild.
    drive_goal_session(addr, "tiny", &Goal::Twig("//person/name".into()), &[]).unwrap();
    drive_goal_session(addr, "tiny", &Goal::Twig("//item/name".into()), &[]).unwrap();
    let a = qbe_server::local_corpus("tiny").expect("tiny is a known corpus");
    let b = qbe_server::local_corpus("tiny").expect("tiny is a known corpus");
    assert!(
        std::sync::Arc::ptr_eq(&a, &b),
        "later requests share the cached corpus"
    );
    // The cache never evicts, so each name is built at most once per process — even though
    // other loopback tests in this binary drive sessions concurrently.
    assert!(
        qbe_server::local_corpus_builds() <= qbe_server::CORPUS_NAMES.len(),
        "at most one client-side build per corpus name"
    );
    assert!(qbe_server::local_corpus("gigantic").is_none());

    handle.shutdown();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Commands out of order or malformed: every one gets a -ERR, the connection survives.
    assert!(client.ask().is_err(), "ASK before START");
    assert!(
        client.start(Model::Twig, &[]).is_err(),
        "START before CORPUS"
    );
    assert!(client.corpus("nonexistent").is_err(), "unknown corpus");
    client.corpus("tiny").unwrap();
    assert!(
        client
            .start(Model::Twig, &[("strategy", "psychic")])
            .is_err(),
        "unknown strategy"
    );
    let session = client.start(Model::Twig, &[]).unwrap();
    assert!(session > 0);
    assert!(client.answer(true).is_err(), "ANSWER without pending ASK");
    assert!(
        client.query().is_err(),
        "QUERY with no positive example yet"
    );
    assert_eq!(client.eval().unwrap(), 0, "EVAL of the empty hypothesis");
    client.quit().unwrap();

    handle.shutdown();
}

#[test]
fn capacity_gate_rejects_excess_connections() {
    let handle = spawn(ServerConfig {
        max_connections: 1,
        ..Default::default()
    })
    .unwrap();

    let first = Client::connect(handle.addr()).expect("first connection admitted");
    // A second concurrent connection is greeted with the capacity error.
    match Client::connect(handle.addr()) {
        Err(qbe_server::ClientError::Server(msg)) => {
            assert!(msg.contains("capacity"), "{msg}");
        }
        Err(other) => panic!("expected a capacity rejection, got {other}"),
        Ok(_) => panic!("expected a capacity rejection, connection was admitted"),
    }
    drop(first);
    // Once the first connection drains, a new one is admitted again.
    for _ in 0..50 {
        if handle.active_connections() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut again = Client::connect(handle.addr()).expect("slot freed after disconnect");
    again.hello().unwrap();

    handle.shutdown();
}

#[test]
fn oversized_lines_close_the_connection_with_an_error() {
    let handle = test_server();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // Greeting.
    assert!(read_line_bounded(&mut reader, 4096)
        .unwrap()
        .starts_with("+OK"));
    // A 2 KiB "command": twice the cap, but small enough that the server's reader consumes
    // the whole line before replying and closing (a larger flood would leave unread bytes in
    // the server's receive buffer, turning the close into an RST that can discard the error
    // reply in flight — the byte cap itself is covered by the unit tests either way).
    let mut flood = vec![b'A'; 2 * 1024];
    flood.push(b'\n');
    stream.write_all(&flood).unwrap();
    let reply = read_line_bounded(&mut reader, 4096).unwrap();
    assert!(reply.starts_with("-ERR line exceeds"), "{reply}");
    // The server closes after the error.
    let mut rest = Vec::new();
    let closed = reader.read_to_end(&mut rest);
    assert!(closed.is_ok() || closed.is_err()); // either clean EOF or reset: no hang
    handle.shutdown();
}

#[test]
fn idle_connections_are_timed_out() {
    let handle = spawn(ServerConfig {
        read_timeout: Duration::from_millis(100),
        ..Default::default()
    })
    .unwrap();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    assert!(read_line_bounded(&mut reader, 4096)
        .unwrap()
        .starts_with("+OK"));
    // Send nothing: the server must close with an idle-timeout error, not hang.
    let reply = read_line_bounded(&mut reader, 4096).unwrap();
    assert!(reply.contains("idle timeout"), "{reply}");
    handle.shutdown();
}

#[test]
fn abandoned_sessions_count_as_failures_in_metrics() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.corpus("tiny").unwrap();
    client.start(Model::Join, &[]).unwrap();
    // Answer one question, then walk away.
    match client.ask().unwrap() {
        qbe_server::AskReply::Question(_) => client.answer(true).unwrap(),
        done => panic!("expected a question, got {done:?}"),
    }
    client.quit().unwrap();

    let mut probe = Client::connect(handle.addr()).unwrap();
    let metrics = probe.metrics().unwrap();
    assert_eq!(metric(&metrics, "sessions"), "1");
    assert_eq!(
        metric(&metrics, "ok"),
        "0",
        "an abandoned session is not a success"
    );
    handle.shutdown();
}

#[test]
fn ask_repeats_the_pending_question_until_answered() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.corpus("tiny").unwrap();
    client.start(Model::Twig, &[]).unwrap();
    let q1 = client.ask().unwrap();
    let q2 = client.ask().unwrap();
    assert_eq!(q1, q2, "unanswered questions are stable");
    handle.shutdown();
}

#[test]
fn shutdown_quiesces_with_live_connections() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.corpus("tiny").unwrap();
    client.start(Model::Twig, &[]).unwrap();
    // Shut down while the client still holds its connection and an open session.
    handle.shutdown();
    // The client's next request fails (connection reset/EOF/shutdown notice) instead of
    // hanging forever.
    assert!(client.hello().is_err());
}

#[test]
fn concurrent_corpus_requests_build_once() {
    let handle = test_server();
    let addr = handle.addr();
    // Eight connections race the first CORPUS request for the same (not yet built) corpus.
    // Exactly one build may run; everyone gets a +OK with identical summaries.
    let summaries: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.corpus("small").expect("CORPUS small succeeds")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for summary in &summaries[1..] {
        assert_eq!(summary, &summaries[0], "all callers see the same corpus");
    }
    let mut probe = Client::connect(addr).unwrap();
    let metrics = probe.metrics().unwrap();
    assert_eq!(
        metric(&metrics, "corpora_built"),
        "1",
        "the race built the corpus exactly once"
    );
    handle.shutdown();
}

#[test]
fn resume_reattaches_a_session_across_connections() {
    let handle = test_server();
    let addr = handle.addr();

    let mut first = Client::connect(addr).unwrap();
    first.corpus("tiny").unwrap();
    let id = first.start(Model::Twig, &[("seed", "7")]).unwrap();
    let q1 = first.ask().unwrap();
    drop(first); // connection drops without QUIT — the session is closed by teardown

    // A dropped connection closes its session: RESUME must refuse it. The server processes
    // the hangup asynchronously, so poll until the close lands.
    let mut second = Client::connect(addr).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while second.resume(id).is_ok() {
        assert!(
            std::time::Instant::now() < deadline,
            "session {id} never closed after its connection dropped"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // A *live* session on another connection is; the pending question is unchanged.
    let mut owner = Client::connect(addr).unwrap();
    owner.corpus("tiny").unwrap();
    let id2 = owner.start(Model::Twig, &[("seed", "7")]).unwrap();
    let q2 = owner.ask().unwrap();
    assert_eq!(q1, q2, "same seed, same first question");
    let mut taker = Client::connect(addr).unwrap();
    let model = taker.resume(id2).expect("live session resumes");
    assert_eq!(model, "twig");
    assert_eq!(
        taker.ask().unwrap(),
        q2,
        "pending question survives the handoff"
    );
    handle.shutdown();
}
