//! End-to-end resilience: real TCP, real injected faults, zero manual intervention.
//!
//! The acceptance bar for the unreliable-world hardening: under a deterministic fault
//! schedule — server-side connection drops and latency, client-side socket sabotage, and a
//! noisy oracle flipping labels at p = 0.2 — every learner model still converges to exactly
//! what a clean run learns, with the resilient client reconnecting and `RESUME`-ing on its
//! own, and the server's `retries=` / `reasks=` / `faults_injected=` counters telling the
//! story afterwards.

use std::time::Duration;

use qbe_core::faults::{FaultProfile, FaultRegistry, SiteConfig};
use qbe_core::graph::QueryClass;
use qbe_server::protocol::field_value;
use qbe_server::{
    drive_goal_session, drive_goal_session_resilient, is_retryable, spawn, Client, ClientError,
    Goal, NoiseModel, ResilientClient, RetryPolicy, ServerConfig, FAULT_SITE_CLIENT_DROP,
    FAULT_SITE_CLIENT_DROP_REPLY, FAULT_SITE_DROP, FAULT_SITE_LATENCY,
};

fn metric(metrics: &[(String, String)], key: &str) -> u64 {
    field_value(metrics, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("METRICS carries {key}="))
}

/// A fast-retry policy for tests: tight backoff, fixed jitter seed.
fn test_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(20),
        request_timeout: Duration::from_secs(5),
        seed: 42,
    }
}

/// The ISSUE's acceptance schedule: `every=` sites fire deterministically (no probability
/// draw), so the run is guaranteed to contain server drops, injected latency, and both
/// kinds of client-side sabotage — and is reproducible besides.
#[test]
fn all_models_converge_over_tcp_under_injected_faults_and_noise() {
    let server_faults = FaultRegistry::shared(
        FaultProfile::new(7)
            .site(FAULT_SITE_DROP, SiteConfig::with_every(7))
            .site(FAULT_SITE_LATENCY, SiteConfig::with_every(25).delay_ms(1)),
    );
    let faulty = spawn(ServerConfig {
        faults: Some(server_faults.clone()),
        ..ServerConfig::default()
    })
    .expect("faulty server binds");
    let clean = spawn(ServerConfig::default()).expect("clean server binds");

    let client_faults = FaultRegistry::shared(
        FaultProfile::new(13)
            .site(FAULT_SITE_CLIENT_DROP, SiteConfig::with_every(11))
            .site(FAULT_SITE_CLIENT_DROP_REPLY, SiteConfig::with_every(13)),
    );

    type Session<'a> = (&'a str, Goal, Vec<(&'a str, &'a str)>);
    let sessions: [Session; 4] = [
        ("twig", Goal::Twig("//person/name".to_string()), vec![]),
        (
            "path",
            Goal::PathRoadType("highway".to_string()),
            vec![("to", "city3")],
        ),
        ("join", Goal::Join, vec![]),
        ("graph", Goal::GraphPairs(QueryClass::Rpq), vec![]),
    ];
    for (label, goal, params) in &sessions {
        // Oracle flips each vote with p = 0.2; the vote count is chosen so the whole
        // session's majority answers are all correct with probability ≥ 1 − 1e-6.
        let noise = NoiseModel::with_bound(0.2, 1e-6, 64, 0xC0FFEE ^ label.len() as u64);
        let outcome = drive_goal_session_resilient(
            faulty.addr(),
            "tiny",
            goal,
            params,
            test_policy(),
            Some(&noise),
            Some(client_faults.clone()),
        )
        .unwrap_or_else(|e| panic!("{label}: resilient session failed: {e}"));
        let reference = drive_goal_session(clean.addr(), "tiny", goal, params)
            .unwrap_or_else(|e| panic!("{label}: clean reference failed: {e}"));

        assert!(outcome.session.consistent, "{label}: labels consistent");
        assert_eq!(
            outcome.session.hypothesis, reference.hypothesis,
            "{label}: noisy+faulty run learns the clean run's query"
        );
        assert_eq!(
            outcome.session.answer_set_size, reference.answer_set_size,
            "{label}: same answer set"
        );
        assert_eq!(
            outcome.session.questions, reference.questions,
            "{label}: majority voting absorbed every flip"
        );
        assert!(
            outcome.votes_cast > outcome.session.questions as u64,
            "{label}: the noise model actually re-asked"
        );
    }

    // The server's counters confirm the chaos happened and was survived: every injected
    // drop (server- or client-side) forced a RESUME re-attach, and lost ASK replies /
    // ANSWER probes re-served pending questions.
    let metrics = Client::connect(faulty.addr())
        .and_then(|mut c| c.metrics())
        .expect("metrics readable");
    assert_eq!(metric(&metrics, "sessions"), 4);
    assert_eq!(metric(&metrics, "ok"), 4);
    assert!(
        metric(&metrics, "retries") > 0,
        "RESUME re-attaches happened"
    );
    assert!(metric(&metrics, "reasks") > 0, "questions were re-served");
    assert!(
        metric(&metrics, "faults_injected") > 0,
        "server-side faults fired"
    );
    assert_eq!(
        metric(&metrics, "faults_injected"),
        server_faults.injected(),
        "METRICS reads the live registry"
    );
    assert!(client_faults.injected() > 0, "client-side faults fired too");

    faulty.shutdown();
    clean.shutdown();
}

/// CI selects a fault profile via `QBE_FAULT_PROFILE` (see ci.yml); without the variable a
/// mild deterministic default applies, so the test is meaningful locally too. Either way a
/// resilient session must converge under whatever the environment throws at it.
#[test]
fn env_selected_fault_profile_is_survivable() {
    let profile = FaultProfile::from_env("QBE_FAULT_PROFILE")
        .expect("QBE_FAULT_PROFILE parses when set")
        .unwrap_or_else(|| FaultProfile::new(11).site(FAULT_SITE_DROP, SiteConfig::with_every(5)));
    let handle = spawn(ServerConfig {
        faults: Some(FaultRegistry::shared(profile)),
        ..ServerConfig::default()
    })
    .expect("server binds");

    let outcome = drive_goal_session_resilient(
        handle.addr(),
        "tiny",
        &Goal::Twig("//person/name".to_string()),
        &[],
        test_policy(),
        None,
        None,
    )
    .expect("session survives the environment's fault profile");
    assert!(outcome.session.consistent);
    assert!(outcome.session.hypothesis.contains("person"));
    handle.shutdown();
}

/// Fatal errors must *not* burn the retry budget: an unknown corpus is a programming error,
/// not weather, and surfaces immediately.
#[test]
fn fatal_errors_surface_without_retries() {
    let handle = spawn(ServerConfig::default()).expect("server binds");
    let err = ResilientClient::new(handle.addr(), "no-such-corpus", test_policy())
        .err()
        .expect("unknown corpus is an error");
    assert!(
        matches!(&err, ClientError::Server(msg) if msg.contains("unknown corpus")),
        "got {err}"
    );
    assert!(!is_retryable(&err));
    handle.shutdown();
}

/// A resilient session on a fault-free server behaves exactly like the plain driver — no
/// reconnects, no retried requests, and the METRICS resilience counters stay zero.
#[test]
fn resilient_driver_is_a_noop_on_a_healthy_server() {
    let handle = spawn(ServerConfig::default()).expect("server binds");
    let outcome = drive_goal_session_resilient(
        handle.addr(),
        "tiny",
        &Goal::Join,
        &[],
        test_policy(),
        None,
        None,
    )
    .expect("clean resilient session");
    assert!(outcome.session.consistent);
    assert_eq!(outcome.reconnects, 0);
    assert_eq!(outcome.retried_requests, 0);
    assert_eq!(outcome.votes_cast, 0, "no noise model, no voting");

    let metrics = Client::connect(handle.addr())
        .and_then(|mut c| c.metrics())
        .expect("metrics readable");
    assert_eq!(metric(&metrics, "retries"), 0);
    assert_eq!(metric(&metrics, "reasks"), 0);
    assert_eq!(metric(&metrics, "faults_injected"), 0);
    handle.shutdown();
}
