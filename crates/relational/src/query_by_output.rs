//! Query by output: reverse-engineer a query from a database instance and a query result.
//!
//! This reproduces the baseline the paper cites as the closest prior work to its relational
//! learning programme: *"A related problem, recently studied by Tran et al., is the query by
//! output problem: given a database instance and the output of some query, their goal is to
//! construct an instance-equivalent query to the initial one."* (§3). The published system
//! (TALOS, SIGMOD'09) casts the problem as a classification task: it picks a source relation
//! (or join) whose projection covers the output, labels every source tuple by whether it lands
//! in the output, grows a decision tree over selection predicates, and reads one conjunctive
//! selection off each positive leaf. The learned query is the union of those branches.
//!
//! The implementation here follows that recipe over the SPJ algebra of [`crate::spj`]:
//!
//! 1. [`infer_projection`] finds which source columns the output projects;
//! 2. source tuples are labelled positive/negative by membership of their projection in the
//!    output;
//! 3. a decision tree over `attribute = constant` predicates separates the two classes
//!    ([`DecisionTree`]);
//! 4. every positive leaf becomes one conjunctive [`SpjQuery`] branch of the final
//!    [`LearnedOutputQuery`], which is then verified to be *instance-equivalent* — it reproduces
//!    the output exactly on the given instance.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::model::{Instance, Relation, Tuple, Value};
use crate::spj::{same_tuple_set, Condition, SpjQuery};

/// A query learned from an output: a union of conjunctive selection+projection branches over a
/// single source relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearnedOutputQuery {
    /// Name of the source relation the branches select from.
    pub source: String,
    /// Attributes the output projects (by name, in output-column order).
    pub projection: Vec<String>,
    /// One conjunctive selection per positive decision-tree leaf.
    pub branches: Vec<Vec<Condition>>,
}

impl LearnedOutputQuery {
    /// Render each branch as a standalone [`SpjQuery`].
    pub fn branch_queries(&self) -> Vec<SpjQuery> {
        let attrs: Vec<&str> = self.projection.iter().map(String::as_str).collect();
        self.branches
            .iter()
            .map(|conds| {
                SpjQuery::scan(self.source.clone())
                    .select(conds.clone())
                    .project(&attrs)
            })
            .collect()
    }

    /// Evaluate the union of branches over an instance (set semantics).
    pub fn evaluate(&self, db: &Instance) -> Option<Relation> {
        let mut acc: Option<Relation> = None;
        for q in self.branch_queries() {
            let r = q.evaluate(db).ok()?;
            acc = Some(match acc {
                None => r,
                Some(mut sofar) => {
                    for t in r.tuples() {
                        sofar.insert(t.clone());
                    }
                    sofar
                }
            });
        }
        acc.map(|r| r.distinct())
    }

    /// Total number of selection conditions across branches (a succinctness measure).
    pub fn condition_count(&self) -> usize {
        self.branches.iter().map(Vec::len).sum()
    }
}

impl fmt::Display for LearnedOutputQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<String> = self
            .branch_queries()
            .iter()
            .map(|q| q.to_string())
            .collect();
        write!(f, "{}", rendered.join(" ∪ "))
    }
}

/// Why query-by-output failed on the given input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QboError {
    /// No base relation's columns can be projected onto the output columns.
    NoCoveringSource,
    /// A covering source exists but no decision tree separates positives from negatives
    /// (two identical source tuples have different labels, which cannot happen with a
    /// deterministic projection, so in practice this signals an empty instance).
    Inseparable,
    /// The learned query does not reproduce the output exactly (instance-equivalence failed).
    NotEquivalent,
}

impl fmt::Display for QboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QboError::NoCoveringSource => {
                write!(f, "no base relation projects onto the output columns")
            }
            QboError::Inseparable => write!(f, "positive and negative tuples cannot be separated"),
            QboError::NotEquivalent => write!(f, "learned query is not instance-equivalent"),
        }
    }
}

impl std::error::Error for QboError {}

/// Find source-column positions (one per output column) such that projecting `source` onto them
/// covers every output tuple. Returns the first (lexicographically smallest) covering mapping.
pub fn infer_projection(source: &Relation, output: &Relation) -> Option<Vec<usize>> {
    let out_arity = output.schema().arity();
    // Candidate source columns for each output column: those whose value set is a superset of
    // the output column's value set.
    let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(out_arity);
    for j in 0..out_arity {
        let needed: BTreeSet<&Value> = output.tuples().iter().map(|t| t.get(j)).collect();
        let mut cols = Vec::new();
        for i in 0..source.schema().arity() {
            let have: BTreeSet<&Value> = source.tuples().iter().map(|t| t.get(i)).collect();
            if needed.is_subset(&have) {
                cols.push(i);
            }
        }
        if cols.is_empty() {
            return None;
        }
        candidates.push(cols);
    }
    // Backtracking over the per-column candidates, verifying that every output tuple is the
    // projection of at least one source tuple under the chosen mapping.
    fn verify(source: &Relation, output: &Relation, mapping: &[usize]) -> bool {
        let projected: BTreeSet<Tuple> =
            source.tuples().iter().map(|t| t.project(mapping)).collect();
        output.tuples().iter().all(|t| projected.contains(t))
    }
    fn search(
        source: &Relation,
        output: &Relation,
        candidates: &[Vec<usize>],
        chosen: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        if chosen.len() == candidates.len() {
            return verify(source, output, chosen).then(|| chosen.clone());
        }
        for &c in &candidates[chosen.len()] {
            chosen.push(c);
            if let Some(found) = search(source, output, candidates, chosen) {
                return Some(found);
            }
            chosen.pop();
        }
        None
    }
    search(source, output, &candidates, &mut Vec::new())
}

/// A binary decision tree over `attribute = constant` tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecisionTree {
    /// A pure (or unsplittable) leaf holding the majority label.
    Leaf {
        /// The predicted label.
        positive: bool,
    },
    /// An internal node testing `attribute = value`.
    Node {
        /// Attribute index tested.
        attribute: usize,
        /// Constant compared against.
        value: Value,
        /// Subtree for tuples satisfying the test.
        then_branch: Box<DecisionTree>,
        /// Subtree for tuples failing the test.
        else_branch: Box<DecisionTree>,
    },
}

impl DecisionTree {
    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        match self {
            DecisionTree::Leaf { .. } => 1,
            DecisionTree::Node {
                then_branch,
                else_branch,
                ..
            } => 1 + then_branch.size() + else_branch.size(),
        }
    }

    /// Depth of the tree (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            DecisionTree::Leaf { .. } => 1,
            DecisionTree::Node {
                then_branch,
                else_branch,
                ..
            } => 1 + then_branch.depth().max(else_branch.depth()),
        }
    }

    /// Classify a tuple.
    pub fn classify(&self, tuple: &Tuple) -> bool {
        match self {
            DecisionTree::Leaf { positive } => *positive,
            DecisionTree::Node {
                attribute,
                value,
                then_branch,
                else_branch,
            } => {
                if tuple.get(*attribute) == value {
                    then_branch.classify(tuple)
                } else {
                    else_branch.classify(tuple)
                }
            }
        }
    }
}

fn gini(pos: usize, neg: usize) -> f64 {
    let total = (pos + neg) as f64;
    if total == 0.0 {
        return 0.0;
    }
    let p = pos as f64 / total;
    2.0 * p * (1.0 - p)
}

/// Grow a decision tree that separates `positives` from `negatives` exactly when possible.
///
/// Splits are chosen by Gini impurity reduction over every `attribute = constant` test, the
/// classical TALOS ingredient. Only equality tests on the positive tuples' own values are
/// considered on the "then" side, which keeps the produced selections constants that actually
/// occur in the data.
pub fn grow_tree(positives: &[&Tuple], negatives: &[&Tuple]) -> DecisionTree {
    if negatives.is_empty() {
        return DecisionTree::Leaf { positive: true };
    }
    if positives.is_empty() {
        return DecisionTree::Leaf { positive: false };
    }
    let arity = positives[0].arity();
    // Candidate tests: (attribute, value) pairs occurring in either class.
    let mut best: Option<(usize, Value, f64)> = None;
    let parent = gini(positives.len(), negatives.len());
    for a in 0..arity {
        let values: BTreeSet<&Value> = positives
            .iter()
            .chain(negatives.iter())
            .map(|t| t.get(a))
            .collect();
        for v in values {
            let tp = positives.iter().filter(|t| t.get(a) == v).count();
            let tn = negatives.iter().filter(|t| t.get(a) == v).count();
            let fp = positives.len() - tp;
            let fnn = negatives.len() - tn;
            let then_total = (tp + tn) as f64;
            let else_total = (fp + fnn) as f64;
            let total = then_total + else_total;
            if then_total == 0.0 || else_total == 0.0 {
                continue; // useless split
            }
            let weighted = then_total / total * gini(tp, tn) + else_total / total * gini(fp, fnn);
            let gain = parent - weighted;
            if gain > 1e-12 {
                let better = match &best {
                    None => true,
                    Some((_, _, g)) => gain > *g + 1e-12,
                };
                if better {
                    best = Some((a, v.clone(), gain));
                }
            }
        }
    }
    match best {
        None => {
            // No split helps: emit the majority label.
            DecisionTree::Leaf {
                positive: positives.len() >= negatives.len(),
            }
        }
        Some((attribute, value, _)) => {
            let (tp, fp): (Vec<&Tuple>, Vec<&Tuple>) =
                positives.iter().partition(|t| t.get(attribute) == &value);
            let (tn, fnn): (Vec<&Tuple>, Vec<&Tuple>) =
                negatives.iter().partition(|t| t.get(attribute) == &value);
            DecisionTree::Node {
                attribute,
                value,
                then_branch: Box::new(grow_tree(&tp, &tn)),
                else_branch: Box::new(grow_tree(&fp, &fnn)),
            }
        }
    }
}

/// Extract the conjunctive conditions of each positive leaf.
///
/// "then" edges contribute `attribute = value` conditions and "else" edges contribute
/// `attribute ≠ value` conditions, so each positive leaf's path is exactly the conjunctive
/// selection the decision tree applies on that branch (the TALOS reading of a tree as a union of
/// selection queries).
fn positive_branches(tree: &DecisionTree, attributes: &[String]) -> Vec<Vec<Condition>> {
    fn walk(
        tree: &DecisionTree,
        attributes: &[String],
        path: &mut Vec<Condition>,
        out: &mut Vec<Vec<Condition>>,
    ) {
        match tree {
            DecisionTree::Leaf { positive } => {
                if *positive {
                    out.push(path.clone());
                }
            }
            DecisionTree::Node {
                attribute,
                value,
                then_branch,
                else_branch,
            } => {
                path.push(Condition::AttrConst(
                    attributes[*attribute].clone(),
                    value.clone(),
                ));
                walk(then_branch, attributes, path, out);
                path.pop();
                path.push(Condition::AttrNotConst(
                    attributes[*attribute].clone(),
                    value.clone(),
                ));
                walk(else_branch, attributes, path, out);
                path.pop();
            }
        }
    }
    let mut out = Vec::new();
    walk(tree, attributes, &mut Vec::new(), &mut out);
    out
}

/// Learn an instance-equivalent query for `output` over `db`.
///
/// Every base relation of `db` is tried as the source, smallest first; the first source for
/// which the decision-tree branches reproduce the output exactly wins.
pub fn query_by_output(db: &Instance, output: &Relation) -> Result<LearnedOutputQuery, QboError> {
    let mut sources: Vec<&Relation> = db.relations().collect();
    sources.sort_by_key(|r| (r.schema().arity(), r.len(), r.schema().name().to_string()));
    let mut saw_covering_source = false;
    for source in sources {
        let Some(mapping) = infer_projection(source, output) else {
            continue;
        };
        saw_covering_source = true;
        let out_set: BTreeSet<Tuple> = output.tuples().iter().cloned().collect();
        let mut positives = Vec::new();
        let mut negatives = Vec::new();
        for t in source.tuples() {
            if out_set.contains(&t.project(&mapping)) {
                positives.push(t);
            } else {
                negatives.push(t);
            }
        }
        let tree = grow_tree(&positives, &negatives);
        let attributes = source.schema().attributes().to_vec();
        let branches = positive_branches(&tree, &attributes);
        if branches.is_empty() {
            continue;
        }
        let projection: Vec<String> = mapping.iter().map(|&i| attributes[i].clone()).collect();
        let learned = LearnedOutputQuery {
            source: source.schema().name().to_string(),
            projection,
            branches,
        };
        if let Some(result) = learned.evaluate(db) {
            if same_tuple_set(&result, output) {
                return Ok(learned);
            }
        }
    }
    if saw_covering_source {
        Err(QboError::NotEquivalent)
    } else {
        Err(QboError::NoCoveringSource)
    }
}

/// Summary of a query-by-output run, used by the experiment binaries.
#[derive(Debug, Clone)]
pub struct QboReport {
    /// The source relation chosen.
    pub source: String,
    /// Number of union branches in the learned query.
    pub branches: usize,
    /// Total number of selection conditions.
    pub conditions: usize,
    /// Whether the learned query reproduces the output exactly.
    pub equivalent: bool,
}

/// Run query-by-output and summarise the outcome.
pub fn qbo_report(db: &Instance, output: &Relation) -> Option<QboReport> {
    match query_by_output(db, output) {
        Ok(q) => Some(QboReport {
            source: q.source.clone(),
            branches: q.branches.len(),
            conditions: q.condition_count(),
            equivalent: true,
        }),
        Err(_) => None,
    }
}

/// Count how many distinct constants the learned query mentions (used to compare succinctness
/// against the goal query in experiments).
pub fn distinct_constants(query: &LearnedOutputQuery) -> usize {
    let mut values: BTreeMap<&str, BTreeSet<&Value>> = BTreeMap::new();
    for branch in &query.branches {
        for c in branch {
            if let Condition::AttrConst(a, v) = c {
                values.entry(a).or_default().insert(v);
            }
        }
    }
    values.values().map(BTreeSet::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RelationSchema;

    fn employees() -> Relation {
        Relation::with_tuples(
            RelationSchema::new("emp", &["eid", "name", "dept", "senior"]),
            vec![
                Tuple::new(vec![1.into(), "Ana".into(), 10.into(), true.into()]),
                Tuple::new(vec![2.into(), "Bob".into(), 10.into(), false.into()]),
                Tuple::new(vec![3.into(), "Cleo".into(), 20.into(), true.into()]),
                Tuple::new(vec![4.into(), "Dan".into(), 20.into(), false.into()]),
                Tuple::new(vec![5.into(), "Eve".into(), 30.into(), true.into()]),
            ],
        )
    }

    fn db() -> Instance {
        let mut db = Instance::new();
        db.add(employees());
        db
    }

    fn output_of(q: &SpjQuery, db: &Instance) -> Relation {
        q.evaluate(db).unwrap()
    }

    #[test]
    fn projection_inference_finds_identity_columns() {
        let emp = employees();
        let out = Relation::with_tuples(
            RelationSchema::new("out", &["n"]),
            vec![
                Tuple::new(vec!["Ana".into()]),
                Tuple::new(vec!["Bob".into()]),
            ],
        );
        assert_eq!(infer_projection(&emp, &out), Some(vec![1]));
    }

    #[test]
    fn projection_inference_fails_when_values_are_missing() {
        let emp = employees();
        let out = Relation::with_tuples(
            RelationSchema::new("out", &["n"]),
            vec![Tuple::new(vec!["Zoe".into()])],
        );
        assert_eq!(infer_projection(&emp, &out), None);
    }

    #[test]
    fn decision_tree_separates_by_single_attribute() {
        let emp = employees();
        let (pos, neg): (Vec<&Tuple>, Vec<&Tuple>) = emp
            .tuples()
            .iter()
            .partition(|t| t.get(2) == &Value::Int(10));
        let tree = grow_tree(&pos, &neg);
        for t in &pos {
            assert!(tree.classify(t));
        }
        for t in &neg {
            assert!(!tree.classify(t));
        }
        assert!(
            tree.depth() <= 3,
            "a single equality split should suffice, got {tree:?}"
        );
    }

    #[test]
    fn pure_positive_input_yields_single_leaf() {
        let emp = employees();
        let pos: Vec<&Tuple> = emp.tuples().iter().collect();
        let tree = grow_tree(&pos, &[]);
        assert_eq!(tree, DecisionTree::Leaf { positive: true });
    }

    #[test]
    fn qbo_recovers_a_selection_query() {
        let goal = SpjQuery::scan("emp")
            .select(vec![Condition::AttrConst("dept".into(), Value::Int(10))])
            .project(&["name"]);
        let db = db();
        let out = output_of(&goal, &db);
        let learned = query_by_output(&db, &out).unwrap();
        assert_eq!(learned.source, "emp");
        assert!(same_tuple_set(&learned.evaluate(&db).unwrap(), &out));
    }

    #[test]
    fn qbo_recovers_a_disjunctive_selection_as_a_union() {
        // dept = 10 OR dept = 30 cannot be one conjunction; TALOS handles it with two leaves.
        let db = db();
        let out = Relation::with_tuples(
            RelationSchema::new("out", &["name"]),
            vec![
                Tuple::new(vec!["Ana".into()]),
                Tuple::new(vec!["Bob".into()]),
                Tuple::new(vec!["Eve".into()]),
            ],
        );
        let learned = query_by_output(&db, &out).unwrap();
        assert!(same_tuple_set(&learned.evaluate(&db).unwrap(), &out));
    }

    #[test]
    fn qbo_full_relation_needs_no_conditions() {
        let db = db();
        let out = output_of(&SpjQuery::scan("emp").project(&["eid"]), &db);
        let learned = query_by_output(&db, &out).unwrap();
        assert_eq!(learned.condition_count(), 0);
        assert_eq!(learned.branches.len(), 1);
    }

    #[test]
    fn qbo_fails_when_output_values_do_not_occur() {
        let db = db();
        let out = Relation::with_tuples(
            RelationSchema::new("out", &["x"]),
            vec![Tuple::new(vec![999.into()])],
        );
        assert_eq!(query_by_output(&db, &out), Err(QboError::NoCoveringSource));
    }

    #[test]
    fn qbo_report_summarises_the_learned_query() {
        let goal = SpjQuery::scan("emp")
            .select(vec![Condition::AttrConst(
                "senior".into(),
                Value::Bool(true),
            )])
            .project(&["name"]);
        let db = db();
        let out = output_of(&goal, &db);
        let report = qbo_report(&db, &out).unwrap();
        assert!(report.equivalent);
        assert_eq!(report.source, "emp");
        assert!(report.conditions >= 1);
    }

    #[test]
    fn distinct_constants_counts_values_per_attribute() {
        let q = LearnedOutputQuery {
            source: "emp".into(),
            projection: vec!["name".into()],
            branches: vec![
                vec![Condition::AttrConst("dept".into(), Value::Int(10))],
                vec![Condition::AttrConst("dept".into(), Value::Int(30))],
            ],
        };
        assert_eq!(distinct_constants(&q), 2);
    }

    #[test]
    fn display_joins_branches_with_union() {
        let q = LearnedOutputQuery {
            source: "emp".into(),
            projection: vec!["name".into()],
            branches: vec![
                vec![Condition::AttrConst("dept".into(), Value::Int(10))],
                vec![Condition::AttrConst("dept".into(), Value::Int(30))],
            ],
        };
        let s = q.to_string();
        assert!(s.contains("∪"), "{s}");
        assert!(s.contains("dept = 10"), "{s}");
    }
}
