//! Conditional functional dependency (CFD) discovery.
//!
//! The paper's related-work survey (§3) cites *"Fan et al. proposed learning algorithms for
//! conditional functional dependencies"* (TKDE'11) as one of the data-mining-flavoured
//! approaches to inferring query-like artefacts from instances. A CFD `(X → A, tp)` extends a
//! functional dependency with a *pattern tuple* `tp` over `X ∪ {A}` whose entries are either
//! constants or the wildcard `_`; the dependency only constrains tuples matching the constant
//! part of the pattern. This module implements:
//!
//! * plain functional-dependency checking and levelwise discovery ([`fd_holds`],
//!   [`discover_fds`]);
//! * CFD semantics — matching, support, violation counting ([`Cfd`]);
//! * discovery of constant CFDs with a support threshold ([`discover_constant_cfds`]), the
//!   CTane-style levelwise search restricted (as in the original experimental study) to
//!   left-hand sides of bounded size.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::model::{Relation, Tuple, Value};

/// One entry of a CFD pattern tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pattern {
    /// Matches any value (written `_`).
    Wildcard,
    /// Matches exactly this constant.
    Const(Value),
}

impl Pattern {
    /// Whether a value matches the pattern entry.
    pub fn matches(&self, value: &Value) -> bool {
        match self {
            Pattern::Wildcard => true,
            Pattern::Const(v) => v == value,
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Wildcard => write!(f, "_"),
            Pattern::Const(v) => write!(f, "{v}"),
        }
    }
}

/// A conditional functional dependency `(X → A, tp)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfd {
    /// Left-hand-side attribute indices with their pattern entries.
    pub lhs: Vec<(usize, Pattern)>,
    /// Right-hand-side attribute index.
    pub rhs: usize,
    /// Right-hand-side pattern entry.
    pub rhs_pattern: Pattern,
}

impl Cfd {
    /// Create a CFD; the left-hand side is kept sorted by attribute index.
    pub fn new(lhs: Vec<(usize, Pattern)>, rhs: usize, rhs_pattern: Pattern) -> Cfd {
        let mut lhs = lhs;
        lhs.sort_by_key(|(ix, _)| *ix);
        Cfd {
            lhs,
            rhs,
            rhs_pattern,
        }
    }

    /// Whether a tuple matches the left-hand-side pattern.
    pub fn lhs_matches(&self, tuple: &Tuple) -> bool {
        self.lhs.iter().all(|(ix, p)| p.matches(tuple.get(*ix)))
    }

    /// Tuples of the relation matching the left-hand side (the CFD's *support set*).
    pub fn support(&self, relation: &Relation) -> usize {
        relation
            .tuples()
            .iter()
            .filter(|t| self.lhs_matches(t))
            .count()
    }

    /// Number of violating tuples (or pairs, for wildcard right-hand sides).
    ///
    /// * constant RHS: a matching tuple violates the CFD if its RHS value differs from the
    ///   constant;
    /// * wildcard RHS: a pair of matching tuples violates it if they agree on all LHS attributes
    ///   but differ on the RHS (the classical FD reading, conditioned on the pattern).
    pub fn violations(&self, relation: &Relation) -> usize {
        match &self.rhs_pattern {
            Pattern::Const(v) => relation
                .tuples()
                .iter()
                .filter(|t| self.lhs_matches(t) && t.get(self.rhs) != v)
                .count(),
            Pattern::Wildcard => {
                let matching: Vec<&Tuple> = relation
                    .tuples()
                    .iter()
                    .filter(|t| self.lhs_matches(t))
                    .collect();
                let lhs_ixs: Vec<usize> = self.lhs.iter().map(|(ix, _)| *ix).collect();
                let mut violations = 0;
                for (i, a) in matching.iter().enumerate() {
                    for b in matching.iter().skip(i + 1) {
                        let agree_lhs = lhs_ixs.iter().all(|&ix| a.get(ix) == b.get(ix));
                        if agree_lhs && a.get(self.rhs) != b.get(self.rhs) {
                            violations += 1;
                        }
                    }
                }
                violations
            }
        }
    }

    /// Whether the CFD holds (no violations) on the relation.
    pub fn holds(&self, relation: &Relation) -> bool {
        self.violations(relation) == 0
    }

    /// Render the CFD using the relation's attribute names.
    pub fn describe(&self, relation: &Relation) -> String {
        let attrs = relation.schema().attributes();
        let lhs: Vec<String> = self
            .lhs
            .iter()
            .map(|(ix, p)| format!("{}={}", attrs[*ix], p))
            .collect();
        format!(
            "[{}] → {}={}",
            lhs.join(", "),
            attrs[self.rhs],
            self.rhs_pattern
        )
    }
}

/// Whether the plain functional dependency `lhs → rhs` holds on the relation.
pub fn fd_holds(relation: &Relation, lhs: &[usize], rhs: usize) -> bool {
    let mut seen: BTreeMap<Vec<&Value>, &Value> = BTreeMap::new();
    for t in relation.tuples() {
        let key: Vec<&Value> = lhs.iter().map(|&ix| t.get(ix)).collect();
        match seen.get(&key) {
            None => {
                seen.insert(key, t.get(rhs));
            }
            Some(prev) => {
                if *prev != t.get(rhs) {
                    return false;
                }
            }
        }
    }
    true
}

/// A discovered plain functional dependency, by attribute name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveredFd {
    /// Left-hand-side attribute names.
    pub lhs: Vec<String>,
    /// Right-hand-side attribute name.
    pub rhs: String,
}

impl fmt::Display for DiscoveredFd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}", self.lhs.join(","), self.rhs)
    }
}

/// Levelwise discovery of *minimal* plain functional dependencies with `|lhs| ≤ max_lhs`.
///
/// A dependency is reported only if no proper subset of its left-hand side already determines
/// the same right-hand side (the usual minimality criterion of TANE-style miners).
pub fn discover_fds(relation: &Relation, max_lhs: usize) -> Vec<DiscoveredFd> {
    let arity = relation.schema().arity();
    let attrs = relation.schema().attributes();
    let mut found: Vec<(BTreeSet<usize>, usize)> = Vec::new();
    let mut out = Vec::new();
    for size in 1..=max_lhs.min(arity.saturating_sub(1)) {
        for lhs in combinations(arity, size) {
            for rhs in 0..arity {
                if lhs.contains(&rhs) {
                    continue;
                }
                let lhs_set: BTreeSet<usize> = lhs.iter().copied().collect();
                let redundant = found
                    .iter()
                    .any(|(prev_lhs, prev_rhs)| *prev_rhs == rhs && prev_lhs.is_subset(&lhs_set));
                if redundant {
                    continue;
                }
                if fd_holds(relation, &lhs, rhs) {
                    found.push((lhs_set, rhs));
                    out.push(DiscoveredFd {
                        lhs: lhs.iter().map(|&ix| attrs[ix].clone()).collect(),
                        rhs: attrs[rhs].clone(),
                    });
                }
            }
        }
    }
    out
}

/// Discovery of constant CFDs `(X=consts → A=const)` with support ≥ `min_support` and
/// `|X| ≤ max_lhs`, excluding those already implied by a discovered CFD with a smaller
/// left-hand side on the same right-hand attribute and pattern.
pub fn discover_constant_cfds(relation: &Relation, max_lhs: usize, min_support: usize) -> Vec<Cfd> {
    let arity = relation.schema().arity();
    let mut out: Vec<Cfd> = Vec::new();
    for size in 1..=max_lhs.min(arity.saturating_sub(1)) {
        for lhs_attrs in combinations(arity, size) {
            // Group tuples by their constant values on the chosen LHS attributes.
            let mut groups: BTreeMap<Vec<Value>, Vec<&Tuple>> = BTreeMap::new();
            for t in relation.tuples() {
                let key: Vec<Value> = lhs_attrs.iter().map(|&ix| t.get(ix).clone()).collect();
                groups.entry(key).or_default().push(t);
            }
            for (key, members) in groups {
                if members.len() < min_support {
                    continue;
                }
                for rhs in 0..arity {
                    if lhs_attrs.contains(&rhs) {
                        continue;
                    }
                    let first = members[0].get(rhs);
                    if !members.iter().all(|t| t.get(rhs) == first) {
                        continue;
                    }
                    let lhs: Vec<(usize, Pattern)> = lhs_attrs
                        .iter()
                        .zip(&key)
                        .map(|(&ix, v)| (ix, Pattern::Const(v.clone())))
                        .collect();
                    let cfd = Cfd::new(lhs, rhs, Pattern::Const(first.clone()));
                    let implied = out.iter().any(|prev| {
                        prev.rhs == rhs
                            && prev.rhs_pattern == cfd.rhs_pattern
                            && prev.lhs.iter().all(|entry| cfd.lhs.contains(entry))
                    });
                    if !implied {
                        out.push(cfd);
                    }
                }
            }
        }
    }
    out
}

/// All `size`-element subsets of `0..n`, in lexicographic order.
fn combinations(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(size);
    fn rec(
        n: usize,
        size: usize,
        start: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == size {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            current.push(i);
            rec(n, size, i + 1, current, out);
            current.pop();
        }
    }
    rec(n, size, 0, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RelationSchema;

    /// city → country holds; (country="FR") → currency="EUR" is a constant CFD.
    fn addresses() -> Relation {
        Relation::with_tuples(
            RelationSchema::new("addr", &["id", "city", "country", "currency"]),
            vec![
                Tuple::new(vec![1.into(), "Lille".into(), "FR".into(), "EUR".into()]),
                Tuple::new(vec![2.into(), "Paris".into(), "FR".into(), "EUR".into()]),
                Tuple::new(vec![3.into(), "Lille".into(), "FR".into(), "EUR".into()]),
                Tuple::new(vec![4.into(), "Geneva".into(), "CH".into(), "CHF".into()]),
                Tuple::new(vec![5.into(), "Zurich".into(), "CH".into(), "CHF".into()]),
            ],
        )
    }

    #[test]
    fn plain_fd_holds_and_fails_correctly() {
        let r = addresses();
        assert!(fd_holds(&r, &[1], 2), "city → country");
        assert!(fd_holds(&r, &[2], 3), "country → currency");
        assert!(!fd_holds(&r, &[2], 1), "country does not determine city");
    }

    #[test]
    fn fd_with_composite_lhs() {
        let r = addresses();
        assert!(fd_holds(&r, &[1, 2], 3));
    }

    #[test]
    fn discover_fds_reports_minimal_dependencies() {
        let r = addresses();
        let fds = discover_fds(&r, 2);
        let rendered: Vec<String> = fds.iter().map(|f| f.to_string()).collect();
        assert!(
            rendered.contains(&"city → country".to_string()),
            "{rendered:?}"
        );
        assert!(
            rendered.contains(&"country → currency".to_string()),
            "{rendered:?}"
        );
        // id is a key, so id → city must be reported with the singleton lhs only.
        assert!(rendered.contains(&"id → city".to_string()), "{rendered:?}");
        assert!(
            !rendered
                .iter()
                .any(|s| s.starts_with("id,") && s.ends_with("→ city")),
            "non-minimal FD reported: {rendered:?}"
        );
    }

    #[test]
    fn constant_cfd_holds_and_counts_violations() {
        let r = addresses();
        let cfd = Cfd::new(
            vec![(2, Pattern::Const(Value::text("FR")))],
            3,
            Pattern::Const(Value::text("EUR")),
        );
        assert!(cfd.holds(&r));
        assert_eq!(cfd.support(&r), 3);
        let bad = Cfd::new(
            vec![(2, Pattern::Const(Value::text("FR")))],
            3,
            Pattern::Const(Value::text("CHF")),
        );
        assert_eq!(bad.violations(&r), 3);
    }

    #[test]
    fn wildcard_rhs_counts_disagreeing_pairs() {
        let r = addresses();
        // ([country=_] → city=_) is the plain FD country → city, which fails.
        let cfd = Cfd::new(vec![(2, Pattern::Wildcard)], 1, Pattern::Wildcard);
        assert!(!cfd.holds(&r));
        assert!(cfd.violations(&r) > 0);
        // Conditioned on country=CH it still fails (Geneva vs Zurich).
        let ch = Cfd::new(
            vec![(2, Pattern::Const(Value::text("CH")))],
            1,
            Pattern::Wildcard,
        );
        assert_eq!(
            ch.violations(&ch_relation_projection(&r)),
            ch.violations(&r)
        );
        assert!(!ch.holds(&r));
    }

    fn ch_relation_projection(r: &Relation) -> Relation {
        // The violation count must not depend on non-matching tuples.
        Relation::with_tuples(
            r.schema().clone(),
            r.tuples()
                .iter()
                .filter(|t| t.get(2) == &Value::text("CH"))
                .cloned()
                .collect(),
        )
    }

    #[test]
    fn discover_constant_cfds_finds_country_currency_rule() {
        let r = addresses();
        let cfds = discover_constant_cfds(&r, 1, 2);
        let descriptions: Vec<String> = cfds.iter().map(|c| c.describe(&r)).collect();
        assert!(
            descriptions.contains(&"[country=FR] → currency=EUR".to_string()),
            "{descriptions:?}"
        );
        assert!(
            descriptions.contains(&"[country=CH] → currency=CHF".to_string()),
            "{descriptions:?}"
        );
    }

    #[test]
    fn discovery_respects_support_threshold() {
        let r = addresses();
        let cfds = discover_constant_cfds(&r, 1, 3);
        // Only the FR group has 3 tuples.
        assert!(cfds.iter().all(|c| c.support(&r) >= 3));
        assert!(cfds
            .iter()
            .any(|c| c.describe(&r) == "[country=FR] → currency=EUR"));
        assert!(!cfds
            .iter()
            .any(|c| c.describe(&r).starts_with("[country=CH]")));
    }

    #[test]
    fn discovery_skips_cfds_implied_by_smaller_lhs() {
        let r = addresses();
        let cfds = discover_constant_cfds(&r, 2, 2);
        // [country=FR] → currency=EUR is found at level 1, so [city=Lille, country=FR] → currency=EUR
        // must not be reported again.
        assert!(!cfds.iter().any(|c| {
            c.lhs.len() == 2
                && c.describe(&r).contains("country=FR")
                && c.describe(&r).ends_with("currency=EUR")
        }));
    }

    #[test]
    fn all_discovered_cfds_hold_on_the_instance() {
        let r = addresses();
        for cfd in discover_constant_cfds(&r, 2, 2) {
            assert!(cfd.holds(&r), "{} does not hold", cfd.describe(&r));
        }
    }

    #[test]
    fn combinations_enumerates_subsets() {
        assert_eq!(combinations(3, 2), vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert_eq!(combinations(3, 0), vec![Vec::<usize>::new()]);
        assert!(combinations(2, 3).is_empty());
    }

    #[test]
    fn pattern_display_and_matching() {
        assert!(Pattern::Wildcard.matches(&Value::Int(1)));
        assert!(Pattern::Const(Value::Int(1)).matches(&Value::Int(1)));
        assert!(!Pattern::Const(Value::Int(1)).matches(&Value::Int(2)));
        assert_eq!(Pattern::Wildcard.to_string(), "_");
        assert_eq!(Pattern::Const(Value::text("x")).to_string(), "x");
    }
}
