//! View definition synthesis: find the most succinct selection view producing a given instance.
//!
//! Reproduces the second relational baseline the paper cites (§3): *"Das Sarma et al.
//! investigated the view definitions problem: given a database instance and a corresponding view
//! instance, find the most succinct and accurate view definition."* (ICDT'10). Following that
//! work we consider conjunctive equality-selection views (optionally with a projection) over a
//! single base relation and optimise two objectives:
//!
//! * **exactness** — the definition must reproduce the view instance exactly; among exact
//!   definitions we return one with the fewest selection conditions (the succinctness measure),
//!   computed by a greedy set-cover over the negatives each condition excludes;
//! * **accuracy** — when no exact conjunctive definition exists, [`synthesize_view`] falls back
//!   to the most-specific conjunction (the intersection of all positive tuples' constants) and
//!   reports its precision/recall/F1 against the view, mirroring the approximate variant of the
//!   original problem.

use std::collections::BTreeSet;
use std::fmt;

use crate::model::{Instance, Relation, Tuple, Value};
use crate::query_by_output::infer_projection;
use crate::spj::{same_tuple_set, Condition, SpjQuery};

/// A synthesized view definition: a conjunctive selection plus projection over one base relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDefinition {
    /// Source relation name.
    pub source: String,
    /// Selection conditions (conjunctive).
    pub conditions: Vec<Condition>,
    /// Projected attributes, in view-column order.
    pub projection: Vec<String>,
}

impl ViewDefinition {
    /// The definition as an [`SpjQuery`].
    pub fn to_query(&self) -> SpjQuery {
        let attrs: Vec<&str> = self.projection.iter().map(String::as_str).collect();
        SpjQuery::scan(self.source.clone())
            .select(self.conditions.clone())
            .project(&attrs)
    }

    /// Succinctness: number of selection conditions.
    pub fn size(&self) -> usize {
        self.conditions.len()
    }
}

impl fmt::Display for ViewDefinition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_query())
    }
}

/// Accuracy of a candidate definition against the view instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewAccuracy {
    /// |Q(D) ∩ V| / |Q(D)|.
    pub precision: f64,
    /// |Q(D) ∩ V| / |V|.
    pub recall: f64,
}

impl ViewAccuracy {
    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }

    /// Whether the definition is exact.
    pub fn is_exact(&self) -> bool {
        (self.precision - 1.0).abs() < 1e-12 && (self.recall - 1.0).abs() < 1e-12
    }
}

/// Outcome of [`synthesize_view`].
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisOutcome {
    /// The best definition found.
    pub definition: ViewDefinition,
    /// Its accuracy on the given instance.
    pub accuracy: ViewAccuracy,
}

/// Errors raised by view synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewSynthesisError {
    /// No base relation's columns cover the view columns.
    NoCoveringSource,
    /// The view is empty; every empty selection is trivially exact, so the problem is ill-posed.
    EmptyView,
}

impl fmt::Display for ViewSynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewSynthesisError::NoCoveringSource => {
                write!(f, "no base relation projects onto the view columns")
            }
            ViewSynthesisError::EmptyView => write!(f, "the view instance is empty"),
        }
    }
}

impl std::error::Error for ViewSynthesisError {}

/// Compute the accuracy of `definition` against `view` on `db`.
pub fn accuracy(db: &Instance, definition: &ViewDefinition, view: &Relation) -> ViewAccuracy {
    let produced = match definition.to_query().evaluate(db) {
        Ok(r) => r,
        Err(_) => {
            return ViewAccuracy {
                precision: 0.0,
                recall: 0.0,
            }
        }
    };
    let view_set: BTreeSet<&Tuple> = view.tuples().iter().collect();
    let produced_set: BTreeSet<&Tuple> = produced.tuples().iter().collect();
    let inter = produced_set.intersection(&view_set).count();
    let precision = if produced_set.is_empty() {
        0.0
    } else {
        inter as f64 / produced_set.len() as f64
    };
    let recall = if view_set.is_empty() {
        0.0
    } else {
        inter as f64 / view_set.len() as f64
    };
    ViewAccuracy { precision, recall }
}

/// The most-specific conjunction for a set of positive tuples: one `attr = const` condition per
/// attribute on which *all* positives agree.
pub fn most_specific_conditions(source: &Relation, positives: &[&Tuple]) -> Vec<Condition> {
    let Some(first) = positives.first() else {
        return Vec::new();
    };
    let mut conditions = Vec::new();
    for (ix, attr) in source.schema().attributes().iter().enumerate() {
        let v: &Value = first.get(ix);
        if positives.iter().all(|t| t.get(ix) == v) {
            conditions.push(Condition::AttrConst(attr.clone(), v.clone()));
        }
    }
    conditions
}

/// Greedily minimise a conjunction that already excludes all negatives: keep picking the
/// condition excluding the most still-uncovered negatives (classical greedy set cover, giving an
/// `O(log n)`-approximate smallest exact definition).
pub fn minimise_conditions(
    source: &Relation,
    conditions: &[Condition],
    negatives: &[&Tuple],
) -> Vec<Condition> {
    if negatives.is_empty() {
        return Vec::new();
    }
    let schema = source.schema();
    // For each condition, the set of negative indices it excludes (i.e. the negative fails it).
    let excluded: Vec<BTreeSet<usize>> = conditions
        .iter()
        .map(|c| {
            negatives
                .iter()
                .enumerate()
                .filter(|(_, t)| !c.satisfied_by(schema, t))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    let mut uncovered: BTreeSet<usize> = (0..negatives.len()).collect();
    let mut chosen = Vec::new();
    let mut available: Vec<usize> = (0..conditions.len()).collect();
    while !uncovered.is_empty() {
        let Some((best_pos, &best_ix)) = available
            .iter()
            .enumerate()
            .max_by_key(|(_, &ix)| excluded[ix].intersection(&uncovered).count())
        else {
            break;
        };
        if excluded[best_ix].intersection(&uncovered).count() == 0 {
            break; // remaining negatives cannot be excluded by any condition
        }
        for i in &excluded[best_ix] {
            uncovered.remove(i);
        }
        chosen.push(conditions[best_ix].clone());
        available.remove(best_pos);
    }
    chosen
}

/// Synthesize the most succinct (and, failing exactness, most accurate) view definition.
pub fn synthesize_view(
    db: &Instance,
    view: &Relation,
) -> Result<SynthesisOutcome, ViewSynthesisError> {
    if view.is_empty() {
        return Err(ViewSynthesisError::EmptyView);
    }
    let mut best: Option<SynthesisOutcome> = None;
    let mut sources: Vec<&Relation> = db.relations().collect();
    sources.sort_by_key(|r| (r.schema().arity(), r.schema().name().to_string()));
    for source in sources {
        let Some(mapping) = infer_projection(source, view) else {
            continue;
        };
        let view_set: BTreeSet<Tuple> = view.tuples().iter().cloned().collect();
        let (positives, negatives): (Vec<&Tuple>, Vec<&Tuple>) = source
            .tuples()
            .iter()
            .partition(|t| view_set.contains(&t.project(&mapping)));
        let projection: Vec<String> = mapping
            .iter()
            .map(|&i| source.schema().attributes()[i].clone())
            .collect();
        let most_specific = most_specific_conditions(source, &positives);
        // Exact route: the most-specific conjunction must reject every negative whose projection
        // is outside the view; then minimise it.
        let schema = source.schema();
        let offending: Vec<&Tuple> = negatives
            .iter()
            .copied()
            .filter(|t| most_specific.iter().all(|c| c.satisfied_by(schema, t)))
            .collect();
        let candidate_conditions = if offending.is_empty() {
            minimise_conditions(source, &most_specific, &negatives)
        } else {
            most_specific.clone()
        };
        let definition = ViewDefinition {
            source: schema.name().to_string(),
            conditions: candidate_conditions,
            projection,
        };
        let acc = accuracy(db, &definition, view);
        let exact = definition
            .to_query()
            .evaluate(db)
            .map(|r| same_tuple_set(&r, view))
            .unwrap_or(false);
        let acc = if exact {
            ViewAccuracy {
                precision: 1.0,
                recall: 1.0,
            }
        } else {
            acc
        };
        let outcome = SynthesisOutcome {
            definition,
            accuracy: acc,
        };
        let replace = match &best {
            None => true,
            Some(b) => {
                let (be, oe) = (b.accuracy.is_exact(), outcome.accuracy.is_exact());
                match (be, oe) {
                    (false, true) => true,
                    (true, false) => false,
                    (true, true) => outcome.definition.size() < b.definition.size(),
                    (false, false) => outcome.accuracy.f1() > b.accuracy.f1(),
                }
            }
        };
        if replace {
            best = Some(outcome);
        }
    }
    best.ok_or(ViewSynthesisError::NoCoveringSource)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RelationSchema;

    fn products() -> Relation {
        Relation::with_tuples(
            RelationSchema::new("products", &["pid", "category", "in_stock", "warehouse"]),
            vec![
                Tuple::new(vec![1.into(), "book".into(), true.into(), "north".into()]),
                Tuple::new(vec![2.into(), "book".into(), true.into(), "south".into()]),
                Tuple::new(vec![3.into(), "book".into(), false.into(), "north".into()]),
                Tuple::new(vec![4.into(), "toy".into(), true.into(), "north".into()]),
                Tuple::new(vec![5.into(), "toy".into(), false.into(), "south".into()]),
            ],
        )
    }

    fn db() -> Instance {
        let mut db = Instance::new();
        db.add(products());
        db
    }

    fn view_of(query: &SpjQuery, db: &Instance) -> Relation {
        query.evaluate(db).unwrap()
    }

    #[test]
    fn exact_single_condition_view_is_recovered_minimally() {
        let goal = SpjQuery::scan("products")
            .select(vec![Condition::AttrConst(
                "category".into(),
                Value::text("toy"),
            )])
            .project(&["pid"]);
        let db = db();
        let view = view_of(&goal, &db);
        let outcome = synthesize_view(&db, &view).unwrap();
        assert!(outcome.accuracy.is_exact());
        assert_eq!(
            outcome.definition.size(),
            1,
            "one condition suffices: {}",
            outcome.definition
        );
    }

    #[test]
    fn exact_two_condition_view_is_recovered() {
        let goal = SpjQuery::scan("products")
            .select(vec![
                Condition::AttrConst("category".into(), Value::text("book")),
                Condition::AttrConst("in_stock".into(), Value::Bool(true)),
            ])
            .project(&["pid"]);
        let db = db();
        let view = view_of(&goal, &db);
        let outcome = synthesize_view(&db, &view).unwrap();
        assert!(outcome.accuracy.is_exact());
        assert!(outcome.definition.size() <= 2);
        assert!(outcome
            .definition
            .to_query()
            .reproduces(&db, &view)
            .unwrap());
    }

    #[test]
    fn inexact_view_falls_back_to_best_accuracy() {
        // pid ∈ {1, 5} is not definable by a conjunctive equality selection over this instance.
        let db = db();
        let view = Relation::with_tuples(
            RelationSchema::new("v", &["pid"]),
            vec![Tuple::new(vec![1.into()]), Tuple::new(vec![5.into()])],
        );
        let outcome = synthesize_view(&db, &view).unwrap();
        assert!(!outcome.accuracy.is_exact());
        assert!(outcome.accuracy.recall > 0.0);
    }

    #[test]
    fn empty_view_is_rejected() {
        let db = db();
        let view = Relation::new(RelationSchema::new("v", &["pid"]));
        assert_eq!(
            synthesize_view(&db, &view),
            Err(ViewSynthesisError::EmptyView)
        );
    }

    #[test]
    fn uncoverable_view_is_rejected() {
        let db = db();
        let view = Relation::with_tuples(
            RelationSchema::new("v", &["pid"]),
            vec![Tuple::new(vec![99.into()])],
        );
        assert_eq!(
            synthesize_view(&db, &view),
            Err(ViewSynthesisError::NoCoveringSource)
        );
    }

    #[test]
    fn most_specific_conditions_keep_agreeing_attributes_only() {
        let p = products();
        let positives: Vec<&Tuple> = p
            .tuples()
            .iter()
            .filter(|t| t.get(1) == &Value::text("book"))
            .collect();
        let conds = most_specific_conditions(&p, &positives);
        assert!(conds.contains(&Condition::AttrConst(
            "category".into(),
            Value::text("book")
        )));
        // in_stock and warehouse differ among books, pid differs too.
        assert_eq!(conds.len(), 1);
    }

    #[test]
    fn minimise_conditions_drops_redundant_ones() {
        let p = products();
        let negatives: Vec<&Tuple> = p
            .tuples()
            .iter()
            .filter(|t| t.get(1) == &Value::text("toy"))
            .collect();
        let conds = vec![
            Condition::AttrConst("category".into(), Value::text("book")),
            Condition::AttrConst("pid".into(), Value::Int(1)),
        ];
        let minimal = minimise_conditions(&p, &conds, &negatives);
        assert_eq!(minimal.len(), 1);
    }

    #[test]
    fn minimise_conditions_of_empty_negatives_is_empty() {
        let p = products();
        let conds = vec![Condition::AttrConst("category".into(), Value::text("book"))];
        assert!(minimise_conditions(&p, &conds, &[]).is_empty());
    }

    #[test]
    fn accuracy_is_zero_for_disjoint_result() {
        let db = db();
        let def = ViewDefinition {
            source: "products".into(),
            conditions: vec![Condition::AttrConst("category".into(), Value::text("toy"))],
            projection: vec!["pid".into()],
        };
        let view = Relation::with_tuples(
            RelationSchema::new("v", &["pid"]),
            vec![Tuple::new(vec![1.into()])],
        );
        let acc = accuracy(&db, &def, &view);
        assert_eq!(acc.precision, 0.0);
        assert_eq!(acc.recall, 0.0);
        assert_eq!(acc.f1(), 0.0);
    }

    #[test]
    fn view_definition_display_uses_algebra_notation() {
        let def = ViewDefinition {
            source: "products".into(),
            conditions: vec![Condition::AttrConst("category".into(), Value::text("toy"))],
            projection: vec!["pid".into()],
        };
        assert_eq!(def.to_string(), "π[pid](σ[category = toy](products))");
    }
}
