//! BP-completeness: deciding whether a relational algebra expression maps one instance to another.
//!
//! The paper's §3 opens its related-work discussion with *"Bancilhon and Paredaens studied the
//! decision problem, given a pair of relational instances, whether there exists a relational
//! algebra expression which maps the first instance to the second one. Their research led to the
//! notion of BP-completeness."* The classical characterisation (Paredaens '78, Bancilhon '78) is
//! purely semantic: for finite instances `I` and `J`,
//!
//! > a relational algebra expression `E` with `E(I) = J` exists **iff**
//! > (1) the active domain of `J` is contained in the active domain of `I`, and
//! > (2) every automorphism of `I` is also an automorphism of `J`.
//!
//! This module implements that criterion: active domains, applying value renamings to
//! instances, enumerating automorphisms by backtracking with occurrence-profile pruning, and the
//! decision procedure [`bp_expressible`]. The extension to finite sequences of input/output
//! pairs studied by Fletcher et al. (TKDE'09) is exposed as [`sequence_expressible`], which
//! applies the joint criterion (shared automorphisms of the combined input must preserve every
//! output).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::model::{Instance, Relation, Tuple, Value};

/// The active domain of a relation: the set of values occurring in it.
pub fn active_domain(relation: &Relation) -> BTreeSet<Value> {
    relation
        .tuples()
        .iter()
        .flat_map(|t| t.values().iter().cloned())
        .collect()
}

/// The active domain of an instance.
pub fn instance_active_domain(db: &Instance) -> BTreeSet<Value> {
    db.relations().flat_map(active_domain).collect()
}

/// Apply a value renaming to every tuple of a relation.
pub fn apply_map(relation: &Relation, map: &BTreeMap<Value, Value>) -> Relation {
    let tuples = relation
        .tuples()
        .iter()
        .map(|t| {
            Tuple::new(
                t.values()
                    .iter()
                    .map(|v| map.get(v).cloned().unwrap_or_else(|| v.clone()))
                    .collect(),
            )
        })
        .collect();
    Relation::with_tuples(relation.schema().clone(), tuples)
}

/// Whether a value renaming maps the relation onto itself (as a set of tuples).
pub fn preserves(relation: &Relation, map: &BTreeMap<Value, Value>) -> bool {
    let original: BTreeSet<&Tuple> = relation.tuples().iter().collect();
    let renamed = apply_map(relation, map);
    let renamed_set: BTreeSet<&Tuple> = renamed.tuples().iter().collect();
    original == renamed_set
}

/// Whether a renaming preserves every relation of the instance.
pub fn preserves_instance(db: &Instance, map: &BTreeMap<Value, Value>) -> bool {
    db.relations().all(|r| preserves(r, map))
}

/// The occurrence profile of a value in an instance: for every (relation, column) pair, how many
/// times the value occurs there. Two values can only be swapped by an automorphism if their
/// profiles coincide; this is the initial colouring refined by [`value_colours`].
fn occurrence_profile(db: &Instance, value: &Value) -> Vec<usize> {
    let mut profile = Vec::new();
    for relation in db.relations() {
        for col in 0..relation.schema().arity() {
            profile.push(
                relation
                    .tuples()
                    .iter()
                    .filter(|t| t.get(col) == value)
                    .count(),
            );
        }
    }
    profile
}

/// Automorphism-invariant colouring of the active domain, computed by iterated refinement
/// (the 1-dimensional Weisfeiler–Leman procedure adapted to tuples): two values receive the same
/// colour only if they occur in the same columns with the same multiplicities *and* co-occur with
/// same-coloured values in the same positions. Any automorphism must map each value to a value of
/// the same colour, so the colouring is a sound pruning for [`automorphisms`] — on instances
/// without real symmetry it typically shatters the domain into singletons.
fn value_colours(db: &Instance, domain: &[Value]) -> Vec<usize> {
    let index_of: BTreeMap<&Value, usize> =
        domain.iter().enumerate().map(|(i, v)| (v, i)).collect();
    // Initial colours from occurrence profiles.
    let mut signatures: Vec<Vec<usize>> =
        domain.iter().map(|v| occurrence_profile(db, v)).collect();
    let mut colours = canonicalise(&signatures);
    loop {
        // One refinement round: a value's new signature is its colour plus the sorted multiset of
        // (relation, position, colours of the co-occurring values) over every tuple it occurs in.
        let mut next: Vec<Vec<Vec<usize>>> = domain.iter().map(|_| Vec::new()).collect();
        for (rel_ix, relation) in db.relations().enumerate() {
            for tuple in relation.tuples() {
                let tuple_colours: Vec<usize> = tuple
                    .values()
                    .iter()
                    .map(|v| colours[index_of[v]])
                    .collect();
                for (pos, v) in tuple.values().iter().enumerate() {
                    let mut contribution = vec![rel_ix, pos];
                    contribution.extend(&tuple_colours);
                    next[index_of[v]].push(contribution);
                }
            }
        }
        signatures = next
            .into_iter()
            .zip(&colours)
            .map(|(mut contributions, &colour)| {
                contributions.sort();
                let mut flat = vec![colour];
                flat.extend(contributions.into_iter().flatten());
                flat
            })
            .collect();
        let refined = canonicalise(&signatures);
        let before = colours.iter().collect::<BTreeSet<_>>().len();
        let after = refined.iter().collect::<BTreeSet<_>>().len();
        colours = refined;
        if after == before {
            return colours;
        }
    }
}

/// Replace arbitrary signatures by small colour indices (equal signatures ⇒ equal colour).
fn canonicalise(signatures: &[Vec<usize>]) -> Vec<usize> {
    let mut ids: BTreeMap<&Vec<usize>, usize> = BTreeMap::new();
    for s in signatures {
        let next = ids.len();
        ids.entry(s).or_insert(next);
    }
    signatures.iter().map(|s| ids[s]).collect()
}

/// Enumerate all automorphisms of an instance: bijections of its active domain that map every
/// relation onto itself. The identity is always included.
///
/// The search backtracks over an ordering of the active domain and only pairs values with equal
/// refined colours (see `value_colours`), so instances whose values are structurally
/// distinguishable are handled in near-linear time; the worst case (highly symmetric instances)
/// remains factorial, which matches the problem's nature.
pub fn automorphisms(db: &Instance) -> Vec<BTreeMap<Value, Value>> {
    let domain: Vec<Value> = instance_active_domain(db).into_iter().collect();
    let colours = value_colours(db, &domain);
    let profiles: Vec<Vec<usize>> = colours.iter().map(|&c| vec![c]).collect();
    let mut result = Vec::new();
    let mut assignment: BTreeMap<Value, Value> = BTreeMap::new();
    let mut used: BTreeSet<usize> = BTreeSet::new();

    fn backtrack(
        db: &Instance,
        domain: &[Value],
        profiles: &[Vec<usize>],
        position: usize,
        assignment: &mut BTreeMap<Value, Value>,
        used: &mut BTreeSet<usize>,
        result: &mut Vec<BTreeMap<Value, Value>>,
    ) {
        if position == domain.len() {
            if preserves_instance(db, assignment) {
                result.push(assignment.clone());
            }
            return;
        }
        for candidate in 0..domain.len() {
            if used.contains(&candidate) || profiles[position] != profiles[candidate] {
                continue;
            }
            assignment.insert(domain[position].clone(), domain[candidate].clone());
            used.insert(candidate);
            backtrack(db, domain, profiles, position + 1, assignment, used, result);
            used.remove(&candidate);
            assignment.remove(&domain[position]);
        }
    }

    backtrack(
        db,
        &domain,
        &profiles,
        0,
        &mut assignment,
        &mut used,
        &mut result,
    );
    result
}

/// Why a pair of instances is not BP-expressible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BpObstruction {
    /// The output mentions a value absent from the input's active domain.
    ForeignValue(Value),
    /// An automorphism of the input does not preserve the output.
    SymmetryBroken(BTreeMap<Value, Value>),
}

impl fmt::Display for BpObstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BpObstruction::ForeignValue(v) => {
                write!(f, "output value {v} does not occur in the input")
            }
            BpObstruction::SymmetryBroken(map) => {
                let moved: Vec<String> = map
                    .iter()
                    .filter(|(a, b)| a != b)
                    .map(|(a, b)| format!("{a}↦{b}"))
                    .collect();
                write!(
                    f,
                    "input automorphism {{{}}} does not preserve the output",
                    moved.join(", ")
                )
            }
        }
    }
}

/// Outcome of the BP-expressibility test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpVerdict {
    /// Whether some relational algebra expression maps the input to the output.
    pub expressible: bool,
    /// A witness obstruction when not expressible.
    pub obstruction: Option<BpObstruction>,
    /// Number of input automorphisms examined.
    pub automorphism_count: usize,
}

/// Decide whether a relational algebra expression maps `input` to `output`
/// (Bancilhon–Paredaens criterion).
pub fn bp_expressible(input: &Instance, output: &Relation) -> BpVerdict {
    let input_domain = instance_active_domain(input);
    for v in active_domain(output) {
        if !input_domain.contains(&v) {
            return BpVerdict {
                expressible: false,
                obstruction: Some(BpObstruction::ForeignValue(v)),
                automorphism_count: 0,
            };
        }
    }
    let autos = automorphisms(input);
    let count = autos.len();
    for map in autos {
        if !preserves(output, &map) {
            return BpVerdict {
                expressible: false,
                obstruction: Some(BpObstruction::SymmetryBroken(map)),
                automorphism_count: count,
            };
        }
    }
    BpVerdict {
        expressible: true,
        obstruction: None,
        automorphism_count: count,
    }
}

/// Decide whether a single relational algebra expression is consistent with a finite sequence of
/// input/output pairs (Fletcher et al.): every pair must satisfy the Bancilhon–Paredaens
/// criterion individually — a necessary condition, and for pairwise-disjoint active domains also
/// sufficient, which is the regime the generators in this workspace produce.
pub fn sequence_expressible(pairs: &[(Instance, Relation)]) -> Vec<BpVerdict> {
    pairs.iter().map(|(i, o)| bp_expressible(i, o)).collect()
}

/// Convenience wrapper: a single-relation input instance.
pub fn single_relation_instance(relation: Relation) -> Instance {
    let mut db = Instance::new();
    db.add(relation);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RelationSchema;

    fn edge_relation(edges: &[(i64, i64)]) -> Relation {
        Relation::with_tuples(
            RelationSchema::new("edge", &["src", "dst"]),
            edges
                .iter()
                .map(|&(a, b)| Tuple::new(vec![a.into(), b.into()]))
                .collect(),
        )
    }

    fn unary(name: &str, values: &[i64]) -> Relation {
        Relation::with_tuples(
            RelationSchema::new(name, &["x"]),
            values.iter().map(|&v| Tuple::new(vec![v.into()])).collect(),
        )
    }

    #[test]
    fn active_domain_collects_all_values() {
        let r = edge_relation(&[(1, 2), (2, 3)]);
        let dom = active_domain(&r);
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Value::Int(2)));
    }

    #[test]
    fn identity_is_always_an_automorphism() {
        let db = single_relation_instance(edge_relation(&[(1, 2), (2, 3)]));
        let autos = automorphisms(&db);
        assert!(autos.iter().any(|m| m.iter().all(|(a, b)| a == b)));
    }

    #[test]
    fn asymmetric_instance_has_only_the_identity() {
        // A path 1→2→3: 1 has out-degree 1/in-degree 0, 3 the opposite, 2 both — all distinct.
        let db = single_relation_instance(edge_relation(&[(1, 2), (2, 3)]));
        assert_eq!(automorphisms(&db).len(), 1);
    }

    #[test]
    fn symmetric_instance_has_nontrivial_automorphisms() {
        // Two disconnected self-loops are swappable.
        let db = single_relation_instance(edge_relation(&[(1, 1), (2, 2)]));
        assert_eq!(automorphisms(&db).len(), 2);
    }

    #[test]
    fn projection_output_is_expressible() {
        let input = single_relation_instance(edge_relation(&[(1, 2), (2, 3)]));
        let output = unary("out", &[1, 2]);
        assert!(bp_expressible(&input, &output).expressible);
    }

    #[test]
    fn foreign_value_blocks_expressibility() {
        let input = single_relation_instance(edge_relation(&[(1, 2)]));
        let output = unary("out", &[7]);
        let verdict = bp_expressible(&input, &output);
        assert!(!verdict.expressible);
        assert_eq!(
            verdict.obstruction,
            Some(BpObstruction::ForeignValue(Value::Int(7)))
        );
    }

    #[test]
    fn symmetry_breaking_output_is_not_expressible() {
        // Input {1,2} as a unary relation is fully symmetric; selecting just {1} breaks it.
        let input = single_relation_instance(unary("r", &[1, 2]));
        let output = unary("out", &[1]);
        let verdict = bp_expressible(&input, &output);
        assert!(!verdict.expressible);
        assert!(matches!(
            verdict.obstruction,
            Some(BpObstruction::SymmetryBroken(_))
        ));
        assert_eq!(verdict.automorphism_count, 2);
    }

    #[test]
    fn symmetric_output_of_symmetric_input_is_expressible() {
        let input = single_relation_instance(unary("r", &[1, 2]));
        let output = unary("out", &[1, 2]);
        assert!(bp_expressible(&input, &output).expressible);
    }

    #[test]
    fn constants_in_a_second_relation_break_the_symmetry() {
        // Adding a unary relation that distinguishes value 1 makes selecting {1} expressible
        // (e.g. by joining with that relation).
        let mut db = Instance::new();
        db.add(unary("r", &[1, 2]));
        db.add(unary("marked", &[1]));
        let output = unary("out", &[1]);
        assert!(bp_expressible(&db, &output).expressible);
    }

    #[test]
    fn apply_map_renames_values() {
        let r = unary("r", &[1, 2]);
        let mut map = BTreeMap::new();
        map.insert(Value::Int(1), Value::Int(2));
        map.insert(Value::Int(2), Value::Int(1));
        let renamed = apply_map(&r, &map);
        assert!(preserves(&r, &map));
        assert_eq!(active_domain(&renamed), active_domain(&r));
    }

    #[test]
    fn preserves_detects_non_automorphisms() {
        let r = edge_relation(&[(1, 2)]);
        let mut map = BTreeMap::new();
        map.insert(Value::Int(1), Value::Int(2));
        map.insert(Value::Int(2), Value::Int(1));
        assert!(
            !preserves(&r, &map),
            "reversing the single edge changes the relation"
        );
    }

    #[test]
    fn sequence_expressibility_reports_per_pair_verdicts() {
        let pairs = vec![
            (
                single_relation_instance(unary("r", &[1, 2])),
                unary("out", &[1, 2]),
            ),
            (
                single_relation_instance(unary("r", &[3, 4])),
                unary("out", &[3]),
            ),
        ];
        let verdicts = sequence_expressible(&pairs);
        assert!(verdicts[0].expressible);
        assert!(!verdicts[1].expressible);
    }

    #[test]
    fn obstruction_display_is_informative() {
        let input = single_relation_instance(unary("r", &[1, 2]));
        let output = unary("out", &[1]);
        let verdict = bp_expressible(&input, &output);
        let text = verdict.obstruction.unwrap().to_string();
        assert!(text.contains("automorphism"), "{text}");
    }
}
