//! Interactive join-query learning: the paper's proposed protocol for very large instances.
//!
//! "We propose an interactive framework where our learning algorithms choose tuples and then ask
//! the user to label them as positive or negative examples. After each label given by the user,
//! our algorithms infer the tuples which become uninformative w.r.t. the previously labeled
//! tuples. The interactive process stops when all the tuples in the instance either have a label
//! explicitly given by the user, or they have become uninformative. [...] The goal is to
//! minimize the number of interactions with the user."
//!
//! The hypothesis space is the equi-join lattice of [`crate::join_learn`]. The version space
//! after some labels is `{θ ⊆ θ_max : θ rejects every labelled negative}` where `θ_max` is the
//! most specific predicate consistent with the labelled positives. A candidate pair `u` with
//! agreement set `A(u)` is then:
//!
//! * **certainly positive** when `θ_max ⊆ A(u)` — every remaining hypothesis accepts it;
//! * **certainly negative** when `A(u) ∩ θ_max` accepts some already-labelled negative — no
//!   remaining hypothesis can accept `u`;
//! * **informative** otherwise — asking the user about it shrinks the version space.

use crate::join_learn::agreement_set;
use crate::model::{Relation, Value};
use crate::operators::JoinPredicate;
use qbe_bitset::DenseSet;
use qbe_strategy::{
    pick_first_max_by, pick_last_max_by, Candidate, PoolView, Random, SessionConfig,
    Strategy as SelectStrategy,
};
use std::borrow::Borrow;
use std::collections::{BTreeSet, HashMap};

/// The paper-era pair-selection policies, now thin presets over the model-agnostic
/// [`qbe_strategy::Strategy`] API (see [`Strategy::strategy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Uniformly random informative pair — the baseline the paper wants to beat
    /// ([`qbe_strategy::Random`]).
    Random,
    /// Ask about the informative pair whose agreement set is largest (closest to the current
    /// most specific hypothesis) — resolves "is the join this specific?" questions first.
    MostSpecificFirst,
    /// Ask about the informative pair whose agreement set splits the candidate equalities most
    /// evenly (a version-space-halving heuristic).
    HalveLattice,
}

impl Strategy {
    /// The [`qbe_strategy::Strategy`] implementing this preset (`seed` feeds
    /// [`Strategy::Random`]).
    pub fn strategy(self, seed: u64) -> Box<dyn SelectStrategy> {
        match self {
            Strategy::Random => Box::new(Random::new(seed)),
            Strategy::MostSpecificFirst => Box::new(MostSpecificFirst),
            Strategy::HalveLattice => Box::new(HalveLattice),
        }
    }
}

/// Most-specific-first as a [`SelectStrategy`]: the pair with the largest agreement-set
/// overlap with the current most specific hypothesis (the specificity channel), latest
/// maximum on ties — the exact comparator the paper-era inlined loop used, so the regression
/// pins stay byte-identical.
#[derive(Debug, Clone, Copy, Default)]
struct MostSpecificFirst;

impl SelectStrategy for MostSpecificFirst {
    fn name(&self) -> &str {
        "most-specific-first"
    }

    fn pick(&mut self, pool: &PoolView<'_>) -> Option<usize> {
        pick_last_max_by(pool.candidates, |c| c.specificity)
    }
}

/// The session's flagship policy as a [`SelectStrategy`]: the pair whose agreement set splits
/// the surviving equality lattice most evenly (the informativeness channel), earliest such
/// pair on ties — byte-identical to the paper-era inlined comparator.
#[derive(Debug, Clone, Copy, Default)]
struct HalveLattice;

impl SelectStrategy for HalveLattice {
    fn name(&self) -> &str {
        "halve-lattice"
    }

    fn pick(&mut self, pool: &PoolView<'_>) -> Option<usize> {
        pick_first_max_by(pool.candidates, |c| c.informativeness)
    }
}

/// The answer source. Implemented by simulated users (a hidden goal predicate) in the
/// experiments; a real application would prompt a person.
pub trait LabelOracle {
    /// Label a pair of tuples (given by indices into the two relations).
    fn label(&mut self, left: usize, right: usize) -> bool;
}

/// Oracle answering according to a hidden goal predicate.
#[derive(Debug, Clone)]
pub struct GoalOracle<'a> {
    left: &'a Relation,
    right: &'a Relation,
    goal: JoinPredicate,
    questions: usize,
}

impl<'a> GoalOracle<'a> {
    /// Create an oracle for a hidden goal predicate.
    pub fn new(left: &'a Relation, right: &'a Relation, goal: JoinPredicate) -> GoalOracle<'a> {
        GoalOracle {
            left,
            right,
            goal,
            questions: 0,
        }
    }

    /// How many questions the oracle has answered.
    pub fn questions_asked(&self) -> usize {
        self.questions
    }
}

impl LabelOracle for GoalOracle<'_> {
    fn label(&mut self, left: usize, right: usize) -> bool {
        self.questions += 1;
        self.goal
            .satisfied_by(&self.left.tuples()[left], &self.right.tuples()[right])
    }
}

/// Status of a candidate pair w.r.t. the current version space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairStatus {
    /// Already labelled by the user.
    Labelled(bool),
    /// Every consistent hypothesis accepts it.
    CertainlyPositive,
    /// No consistent hypothesis accepts it.
    CertainlyNegative,
    /// Hypotheses disagree: asking about it is informative.
    Informative,
}

/// The dense bitmask engine behind [`InteractiveSession`]: every agreement set is a `u64` mask
/// over the attribute-pair lattice (bit `i·|right schema| + j` = equality of left attribute `i`
/// with right attribute `j`), and the still-informative region of the cartesian product is a
/// [`DenseSet`] over pair indices (row-major: `l·|right| + r`) maintained by set difference.
///
/// The masks are generated once, by **hash-partitioning** each column pair: right rows are
/// bucketed by value per column, then each left value looks its matches up instead of comparing
/// against every right row — `O(columns² · matches)` after hashing, not `O(|L|·|R|·columns²)`
/// per *round* like the paper-era sweep. Per-candidate agreement checks afterwards are a single
/// `AND` + popcount.
///
/// Only built when the attribute-pair lattice fits a `u64` (≤ 64 pairs — every instance in the
/// paper's experiments); larger schemas fall back to the per-round sweep, which stays in-tree
/// as the executable specification either way.
#[derive(Debug)]
struct PairEngine {
    right_len: usize,
    /// Agreement mask per pair of the cartesian product, row-major.
    masks: Vec<u64>,
    /// Mask of the current most specific hypothesis (`theta_max`).
    theta: u64,
    /// Agreement masks of the labelled negatives.
    negatives: Vec<u64>,
    /// Pairs neither labelled nor yet proven determined — the candidate pool.
    pool: DenseSet<usize>,
}

impl PairEngine {
    /// Build the engine, or `None` when the attribute-pair lattice does not fit a `u64`.
    fn build(left: &Relation, right: &Relation) -> Option<PairEngine> {
        let la = left.schema().arity();
        let ra = right.schema().arity();
        let bits = la.checked_mul(ra)?;
        if bits > 64 {
            return None;
        }
        let nl = left.len();
        let nr = right.len();
        let mut masks = vec![0u64; nl * nr];
        // Hash-partition: bucket right rows by value, per right column.
        let mut buckets: Vec<HashMap<&Value, Vec<usize>>> = vec![HashMap::new(); ra];
        for (r, rt) in right.tuples().iter().enumerate() {
            for (j, bucket) in buckets.iter_mut().enumerate() {
                bucket.entry(rt.get(j)).or_default().push(r);
            }
        }
        for (l, lt) in left.tuples().iter().enumerate() {
            let base = l * nr;
            for i in 0..la {
                let v = lt.get(i);
                for (j, bucket) in buckets.iter().enumerate() {
                    if let Some(rows) = bucket.get(v) {
                        let bit = 1u64 << (i * ra + j);
                        for &r in rows {
                            masks[base + r] |= bit;
                        }
                    }
                }
            }
        }
        let theta = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        Some(PairEngine {
            right_len: nr,
            masks,
            theta,
            negatives: Vec::new(),
            pool: DenseSet::full(nl * nr),
        })
    }
}

/// Interactive learning session over the cartesian product of two relations.
///
/// Generic over how the relations are owned: existing callers pass `&Relation` (zero-copy
/// borrows), long-lived registries (the `qbe-server` session registry) pass `Arc<Relation>` so
/// the session is `'static` and can outlive the scope that created it.
#[derive(Debug)]
pub struct InteractiveSession<D: Borrow<Relation>> {
    left: D,
    right: D,
    /// Most specific hypothesis consistent with the positive labels so far.
    theta_max: JoinPredicate,
    /// Agreement sets of the labelled negatives.
    negative_agreements: Vec<JoinPredicate>,
    labelled: Vec<((usize, usize), bool)>,
    /// The pluggable question-selection policy, consulted once per proposal round.
    strategy: Box<dyn SelectStrategy>,
    /// Question cap, if any: once reached, the session completes.
    budget: Option<usize>,
    /// The bitmask fast path (`None` only for schemas whose attribute-pair lattice exceeds 64
    /// pairs, which fall back to the sweep spec).
    engine: Option<PairEngine>,
}

/// Result of a completed interactive session.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The learned (most specific consistent) predicate.
    pub predicate: JoinPredicate,
    /// Number of labels the user was asked for.
    pub interactions: usize,
    /// Number of candidate pairs whose label was inferred rather than asked.
    pub inferred: usize,
    /// Whether the labels stayed consistent throughout (always true with a noise-free oracle).
    pub consistent: bool,
}

impl<D: Borrow<Relation>> InteractiveSession<D> {
    /// Start a session.
    pub fn new(left: D, right: D, strategy: Strategy, seed: u64) -> Self {
        InteractiveSession::with_config(
            left,
            right,
            SessionConfig::new()
                .seed(seed)
                .strategy(strategy.strategy(seed)),
        )
    }

    /// Start a session from a [`SessionConfig`] (strategy, question budget, seed) — the
    /// primary constructor; the [`Strategy`]-taking one is a preset over it. The default
    /// strategy is [`Strategy::HalveLattice`], the paper's flagship policy.
    pub fn with_config(left: D, right: D, config: SessionConfig) -> Self {
        let resolved = config.resolve(|seed| Strategy::HalveLattice.strategy(seed));
        let left_arity = left.borrow().schema().arity();
        let right_arity = right.borrow().schema().arity();
        let all_pairs = JoinPredicate::from_pairs(
            (0..left_arity).flat_map(|i| (0..right_arity).map(move |j| (i, j))),
        );
        let engine = PairEngine::build(left.borrow(), right.borrow());
        InteractiveSession {
            left,
            right,
            theta_max: all_pairs,
            negative_agreements: Vec::new(),
            labelled: Vec::new(),
            strategy: resolved.strategy,
            budget: resolved.budget,
            engine,
        }
    }

    /// The name of the session's question-selection strategy.
    pub fn strategy_name(&self) -> &str {
        self.strategy.name()
    }

    /// The current most specific consistent hypothesis.
    pub fn current_hypothesis(&self) -> &JoinPredicate {
        &self.theta_max
    }

    /// Status of a candidate pair under the current version space.
    pub fn status(&self, left_ix: usize, right_ix: usize) -> PairStatus {
        if let Some(&(_, positive)) = self
            .labelled
            .iter()
            .find(|((l, r), _)| *l == left_ix && *r == right_ix)
        {
            return PairStatus::Labelled(positive);
        }
        let agreement = agreement_set(self.left.borrow(), self.right.borrow(), left_ix, right_ix);
        if self.theta_max.subset_of(&agreement) {
            return PairStatus::CertainlyPositive;
        }
        let restricted = agreement.intersect(&self.theta_max);
        let some_hypothesis_accepts = self
            .negative_agreements
            .iter()
            .all(|neg| !restricted.subset_of(neg));
        if some_hypothesis_accepts {
            PairStatus::Informative
        } else {
            PairStatus::CertainlyNegative
        }
    }

    /// All currently informative pairs.
    pub fn informative_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for l in 0..self.left.borrow().len() {
            for r in 0..self.right.borrow().len() {
                if self.status(l, r) == PairStatus::Informative {
                    out.push((l, r));
                }
            }
        }
        out
    }

    /// Record a label (updates the version space).
    pub fn record(&mut self, left_ix: usize, right_ix: usize, positive: bool) {
        let agreement = agreement_set(self.left.borrow(), self.right.borrow(), left_ix, right_ix);
        if positive {
            self.theta_max = self.theta_max.intersect(&agreement);
        } else {
            self.negative_agreements.push(agreement);
        }
        if let Some(engine) = &mut self.engine {
            let pair = left_ix * engine.right_len + right_ix;
            let mask = engine.masks[pair];
            if positive {
                engine.theta &= mask;
            } else {
                engine.negatives.push(mask);
            }
            engine.pool.remove(pair);
        }
        self.labelled.push(((left_ix, right_ix), positive));
    }

    /// Whether the labels recorded so far are still jointly consistent.
    pub fn is_consistent(&self) -> bool {
        self.negative_agreements
            .iter()
            .all(|neg| !self.theta_max.subset_of(neg))
    }

    /// The informative pairs (row-major — the model's paper order) with one [`Candidate`]
    /// feature row each, from a *single* agreement-set sweep over the cartesian product (the
    /// per-pair [`status`](Self::status) path would compute every agreement set twice):
    ///
    /// * `informativeness` — the lattice-halving score (an agreement overlap closer to half
    ///   the surviving equalities is better), exactly the paper-era comparator;
    /// * `specificity` — the agreement-set overlap with the current most specific hypothesis;
    /// * `cost` — the agreement-set size (the attribute equalities a user checks to answer);
    /// * `coverage` — the equalities a positive answer would remove from the lattice.
    fn informative_candidates(&self) -> (Vec<(usize, usize)>, Vec<Candidate>) {
        let target = self.theta_max.len() / 2;
        let mut pairs = Vec::new();
        let mut features = Vec::new();
        for l in 0..self.left.borrow().len() {
            for r in 0..self.right.borrow().len() {
                if self
                    .labelled
                    .iter()
                    .any(|((pl, pr), _)| (*pl, *pr) == (l, r))
                {
                    continue;
                }
                let agreement = agreement_set(self.left.borrow(), self.right.borrow(), l, r);
                if self.theta_max.subset_of(&agreement) {
                    continue; // certainly positive
                }
                let restricted = agreement.intersect(&self.theta_max);
                if self
                    .negative_agreements
                    .iter()
                    .any(|neg| restricted.subset_of(neg))
                {
                    continue; // certainly negative
                }
                let overlap = restricted.len();
                pairs.push((l, r));
                features.push(Candidate {
                    informativeness: -(overlap.abs_diff(target) as f64),
                    cost: agreement.len() as f64,
                    coverage: (self.theta_max.len() - overlap) as f64,
                    specificity: overlap as f64,
                    prior: 0.0,
                });
            }
        }
        (pairs, features)
    }

    /// The bitmask fast path of [`Self::informative_candidates`]: iterate the incremental pool
    /// (ascending pair index = the sweep's row-major order), decide each pair with one
    /// `AND`+popcount against the `u64` hypothesis mask, and *remove* newly determined pairs
    /// from the pool — determination under this version space is monotone (the hypothesis mask
    /// only shrinks, the negative list only grows), so a determined pair can never become
    /// informative again and set-difference maintenance is exact.
    fn informative_candidates_bitmask(&mut self) -> (Vec<(usize, usize)>, Vec<Candidate>) {
        let engine = self.engine.as_mut().expect("caller checked the engine");
        let theta = engine.theta;
        let theta_len = theta.count_ones() as usize;
        let target = theta_len / 2;
        let mut pairs = Vec::new();
        let mut features = Vec::new();
        let mut determined: Vec<usize> = Vec::new();
        for p in engine.pool.iter() {
            let mask = engine.masks[p];
            if theta & !mask == 0 {
                determined.push(p); // certainly positive: theta ⊆ agreement
                continue;
            }
            let restricted = mask & theta;
            if engine.negatives.iter().any(|neg| restricted & !neg == 0) {
                determined.push(p); // certainly negative: restricted ⊆ some negative agreement
                continue;
            }
            let overlap = restricted.count_ones() as usize;
            pairs.push((p / engine.right_len, p % engine.right_len));
            features.push(Candidate {
                informativeness: -(overlap.abs_diff(target) as f64),
                cost: mask.count_ones() as f64,
                coverage: (theta_len - overlap) as f64,
                specificity: overlap as f64,
                prior: 0.0,
            });
        }
        for p in determined {
            engine.pool.remove(p);
        }
        (pairs, features)
    }

    /// Propose the next informative pair to ask the user about, or `None` when every pair's
    /// label is determined (or the question budget is spent). Callers alternate `propose` with
    /// [`Self::record`]; [`Self::run`] loops to completion.
    pub fn propose(&mut self) -> Option<(usize, usize)> {
        if self.budget.is_some_and(|cap| self.labelled.len() >= cap) {
            return None;
        }
        let (informative, candidates) = if self.engine.is_some() {
            self.informative_candidates_bitmask()
        } else {
            self.informative_candidates()
        };
        let view = PoolView {
            asked: self.labelled.len(),
            candidates: &candidates,
        };
        let pick = self.strategy.pick(&view)?;
        informative.get(pick).copied()
    }

    /// The incremental candidate pool as `(left, right)` pairs: what the bitmask engine would
    /// offer the strategy next round, i.e. [`Self::informative_pairs`] plus any pairs whose
    /// determination the lazy pool maintenance has not observed yet (it prunes during
    /// [`Self::propose`]). Exposed so the differential suites can pin the incremental pool
    /// against the from-scratch specification round by round. Falls back to the specification
    /// on schemas without a bitmask engine.
    pub fn informative_pool(&self) -> Vec<(usize, usize)> {
        match &self.engine {
            Some(engine) => engine
                .pool
                .iter()
                .map(|p| (p / engine.right_len, p % engine.right_len))
                .collect(),
            None => self.informative_pairs(),
        }
    }

    /// The left relation.
    pub fn left(&self) -> &Relation {
        self.left.borrow()
    }

    /// The right relation.
    pub fn right(&self) -> &Relation {
        self.right.borrow()
    }

    /// Number of pairs the user has labelled so far.
    pub fn labelled_count(&self) -> usize {
        self.labelled.len()
    }

    /// Run the interactive loop to completion against an oracle.
    pub fn run(mut self, oracle: &mut dyn LabelOracle) -> SessionOutcome {
        while let Some((l, r)) = self.propose() {
            let label = oracle.label(l, r);
            self.record(l, r, label);
        }
        let total_pairs = self.left.borrow().len() * self.right.borrow().len();
        let interactions = self.labelled.len();
        SessionOutcome {
            consistent: self.is_consistent(),
            predicate: self.theta_max,
            interactions,
            inferred: total_pairs - interactions,
        }
    }
}

/// Convenience wrapper: learn the goal predicate interactively and report the number of
/// interactions — the quantity experiments E9/E11 measure.
pub fn interactive_learn(
    left: &Relation,
    right: &Relation,
    goal: &JoinPredicate,
    strategy: Strategy,
    seed: u64,
) -> SessionOutcome {
    let mut oracle = GoalOracle::new(left, right, goal.clone());
    InteractiveSession::new(left, right, strategy, seed).run(&mut oracle)
}

/// The set of pairs selected by a predicate (used in tests and experiments to compare learned
/// and goal queries semantically).
pub fn selected_pairs(
    left: &Relation,
    right: &Relation,
    p: &JoinPredicate,
) -> BTreeSet<(usize, usize)> {
    let mut out = BTreeSet::new();
    for (l, lt) in left.tuples().iter().enumerate() {
        for (r, rt) in right.tuples().iter().enumerate() {
            if p.satisfied_by(lt, rt) {
                out.insert((l, r));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_join_instance, JoinInstanceConfig};
    use crate::model::{RelationSchema, Tuple};

    fn customers() -> Relation {
        Relation::with_tuples(
            RelationSchema::new("customers", &["cid", "city"]),
            vec![
                Tuple::new(vec![1.into(), "Lille".into()]),
                Tuple::new(vec![2.into(), "Paris".into()]),
                Tuple::new(vec![3.into(), "Lille".into()]),
            ],
        )
    }

    fn orders() -> Relation {
        Relation::with_tuples(
            RelationSchema::new("orders", &["oid", "cid", "city"]),
            vec![
                Tuple::new(vec![10.into(), 1.into(), "Lille".into()]),
                Tuple::new(vec![11.into(), 2.into(), "Lille".into()]),
                Tuple::new(vec![12.into(), 5.into(), "Paris".into()]),
            ],
        )
    }

    fn goal() -> JoinPredicate {
        JoinPredicate::from_names(customers().schema(), orders().schema(), &[("cid", "cid")])
            .unwrap()
    }

    #[test]
    fn interactive_learning_recovers_the_goal_semantically() {
        let (c, o) = (customers(), orders());
        for strategy in [
            Strategy::Random,
            Strategy::MostSpecificFirst,
            Strategy::HalveLattice,
        ] {
            let outcome = interactive_learn(&c, &o, &goal(), strategy, 7);
            assert!(outcome.consistent);
            assert_eq!(
                selected_pairs(&c, &o, &outcome.predicate),
                selected_pairs(&c, &o, &goal()),
                "strategy {strategy:?} learned a semantically different query"
            );
        }
    }

    #[test]
    fn interactions_never_exceed_the_number_of_pairs() {
        let (c, o) = (customers(), orders());
        let outcome = interactive_learn(&c, &o, &goal(), Strategy::Random, 3);
        assert!(outcome.interactions <= c.len() * o.len());
        assert_eq!(outcome.interactions + outcome.inferred, c.len() * o.len());
    }

    #[test]
    fn pruning_makes_some_pairs_uninformative() {
        let (c, o) = (customers(), orders());
        let outcome = interactive_learn(&c, &o, &goal(), Strategy::MostSpecificFirst, 1);
        assert!(
            outcome.inferred > 0,
            "expected at least one label to be inferred rather than asked"
        );
    }

    #[test]
    fn status_transitions_after_labels() {
        let (c, o) = (customers(), orders());
        let mut session = InteractiveSession::new(&c, &o, Strategy::Random, 0);
        // Initially everything with a non-full agreement set is informative.
        assert_eq!(session.status(0, 0), PairStatus::Informative);
        session.record(0, 0, true);
        assert_eq!(session.status(0, 0), PairStatus::Labelled(true));
        // (2, 0): customer 3/Lille with order of customer 1/Lille — cid differs, city matches.
        // After the positive above, theta_max ⊆ {cid=cid, city=city}; still informative.
        assert_eq!(session.status(2, 0), PairStatus::Informative);
        session.record(2, 0, false);
        assert!(session.is_consistent());
        // (1, 1) agrees only on cid: the hypothesis {cid=cid} accepts it while the hypothesis
        // {cid=cid, city=city} (still consistent) rejects it — informative.
        assert_eq!(session.status(1, 1), PairStatus::Informative);
        // (0, 2) agrees on nothing, and the agreement set of the recorded negative already
        // covers it: no consistent hypothesis accepts it.
        assert_eq!(session.status(0, 2), PairStatus::CertainlyNegative);
        // After the user also confirms (1, 1), the city equality is ruled out and the session
        // has pinned the goal down to {cid=cid}.
        session.record(1, 1, true);
        assert!(session.is_consistent());
        assert_eq!(
            session.current_hypothesis(),
            &JoinPredicate::from_pairs([(0, 1)])
        );
    }

    #[test]
    fn greedy_strategies_use_fewer_or_equal_interactions_than_random_on_average() {
        let config = JoinInstanceConfig {
            left_rows: 20,
            right_rows: 20,
            ..Default::default()
        };
        let (left, right, goal) = generate_join_instance(&config);
        let random: usize = (0..5)
            .map(|s| interactive_learn(&left, &right, &goal, Strategy::Random, s).interactions)
            .sum();
        let specific: usize = (0..5)
            .map(|s| {
                interactive_learn(&left, &right, &goal, Strategy::MostSpecificFirst, s).interactions
            })
            .sum();
        assert!(
            specific <= random + 5,
            "MostSpecificFirst ({specific}) should not be much worse than Random ({random})"
        );
    }

    #[test]
    fn all_strategies_terminate_and_agree_on_generated_instances() {
        let config = JoinInstanceConfig {
            left_rows: 15,
            right_rows: 12,
            ..Default::default()
        };
        let (left, right, goal) = generate_join_instance(&config);
        let reference = selected_pairs(&left, &right, &goal);
        for strategy in [
            Strategy::Random,
            Strategy::MostSpecificFirst,
            Strategy::HalveLattice,
        ] {
            let outcome = interactive_learn(&left, &right, &goal, strategy, 42);
            assert_eq!(selected_pairs(&left, &right, &outcome.predicate), reference);
        }
    }
}
