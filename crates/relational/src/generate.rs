//! Synthetic relational instance generators for the experiments and benchmarks.
//!
//! The paper assumes "a very large database instance" annotated by the user; these generators
//! produce instances whose size and join selectivity are controlled, plus a small
//! customers/orders database used by the cross-model exchange scenarios.

use crate::model::{Relation, RelationSchema, Tuple, Value};
use crate::operators::JoinPredicate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the two-relation join-learning instance generator.
#[derive(Debug, Clone)]
pub struct JoinInstanceConfig {
    /// Number of tuples in the left relation.
    pub left_rows: usize,
    /// Number of tuples in the right relation.
    pub right_rows: usize,
    /// Number of non-key attributes per relation (the key/foreign-key pair is always present).
    pub extra_attributes: usize,
    /// Size of the shared value domain for non-key attributes (smaller = more accidental
    /// agreements = harder learning).
    pub domain_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for JoinInstanceConfig {
    fn default() -> Self {
        JoinInstanceConfig {
            left_rows: 50,
            right_rows: 50,
            extra_attributes: 2,
            domain_size: 8,
            seed: 42,
        }
    }
}

/// Generate a `(left, right, goal)` triple: two relations and the hidden join predicate a
/// simulated user has in mind (the key/foreign-key equality).
pub fn generate_join_instance(config: &JoinInstanceConfig) -> (Relation, Relation, JoinPredicate) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let left_attrs: Vec<String> = std::iter::once("key".to_string())
        .chain((0..config.extra_attributes).map(|i| format!("l{i}")))
        .collect();
    let right_attrs: Vec<String> = std::iter::once("fkey".to_string())
        .chain((0..config.extra_attributes).map(|i| format!("r{i}")))
        .collect();
    let left_schema = RelationSchema::new(
        "left",
        &left_attrs.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let right_schema = RelationSchema::new(
        "right",
        &right_attrs.iter().map(String::as_str).collect::<Vec<_>>(),
    );

    let mut left = Relation::new(left_schema);
    for key in 0..config.left_rows {
        let mut values: Vec<Value> = vec![Value::Int(key as i64)];
        values.extend(
            (0..config.extra_attributes)
                .map(|_| Value::Int(rng.gen_range(0..config.domain_size) as i64)),
        );
        left.insert(Tuple::new(values));
    }
    let mut right = Relation::new(right_schema);
    for _ in 0..config.right_rows {
        // Foreign keys reference existing keys most of the time, with a few dangling references.
        let fkey = if rng.gen_bool(0.85) {
            rng.gen_range(0..config.left_rows) as i64
        } else {
            (config.left_rows + rng.gen_range(0..10)) as i64
        };
        let mut values: Vec<Value> = vec![Value::Int(fkey)];
        values.extend(
            (0..config.extra_attributes)
                .map(|_| Value::Int(rng.gen_range(0..config.domain_size) as i64)),
        );
        right.insert(Tuple::new(values));
    }
    let goal = JoinPredicate::from_pairs([(0, 0)]);
    (left, right, goal)
}

/// A small customers/orders/items database used by the publishing (relational → XML) scenario.
pub fn customers_orders_database(
    customers: usize,
    orders_per_customer: usize,
    seed: u64,
) -> crate::model::Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let cities = ["Lille", "Paris", "New York", "Tokyo", "Lima", "Berlin"];
    let products = ["lamp", "chair", "desk", "monitor", "keyboard", "notebook"];

    let mut customer_rel =
        Relation::new(RelationSchema::new("customers", &["cid", "name", "city"]));
    for cid in 0..customers {
        customer_rel.insert(Tuple::new(vec![
            Value::Int(cid as i64),
            Value::text(format!("customer{cid}")),
            Value::text(cities[rng.gen_range(0..cities.len())]),
        ]));
    }
    let mut orders_rel = Relation::new(RelationSchema::new(
        "orders",
        &["oid", "cid", "product", "amount"],
    ));
    let mut oid = 0;
    for cid in 0..customers {
        for _ in 0..orders_per_customer {
            orders_rel.insert(Tuple::new(vec![
                Value::Int(oid),
                Value::Int(cid as i64),
                Value::text(products[rng.gen_range(0..products.len())]),
                Value::Int(rng.gen_range(1..500)),
            ]));
            oid += 1;
        }
    }
    let mut db = crate::model::Instance::new();
    db.add(customer_rel);
    db.add(orders_rel);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::equi_join;

    #[test]
    fn generated_instance_has_requested_shape() {
        let cfg = JoinInstanceConfig {
            left_rows: 30,
            right_rows: 20,
            extra_attributes: 3,
            ..Default::default()
        };
        let (left, right, goal) = generate_join_instance(&cfg);
        assert_eq!(left.len(), 30);
        assert_eq!(right.len(), 20);
        assert_eq!(left.schema().arity(), 4);
        assert_eq!(right.schema().arity(), 4);
        assert_eq!(goal.len(), 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = JoinInstanceConfig::default();
        let a = generate_join_instance(&cfg);
        let b = generate_join_instance(&cfg);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn goal_join_is_selective_but_nonempty() {
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig::default());
        let joined = equi_join(&left, &right, &goal);
        assert!(!joined.is_empty());
        assert!(joined.len() < left.len() * right.len());
    }

    #[test]
    fn customers_orders_database_links_by_cid() {
        let db = customers_orders_database(5, 3, 1);
        let customers = db.relation("customers").unwrap();
        let orders = db.relation("orders").unwrap();
        assert_eq!(customers.len(), 5);
        assert_eq!(orders.len(), 15);
        // Every order's cid exists among the customers.
        let cid_ix = orders.schema().index_of("cid").unwrap();
        for t in orders.tuples() {
            if let Value::Int(cid) = t.get(cid_ix) {
                assert!(*cid >= 0 && (*cid as usize) < 5);
            } else {
                panic!("cid must be an integer");
            }
        }
    }
}
