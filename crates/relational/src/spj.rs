//! Select–project–join (SPJ) queries over a named instance.
//!
//! The related work the paper builds on — query-by-output [Tran et al., SIGMOD'09], view
//! definition synthesis [Das Sarma et al., ICDT'10] and the BP-completeness line of work
//! [Bancilhon'78, Paredaens'78] — all reverse-engineer *relational algebra expressions* from an
//! instance and an output. This module provides the hypothesis space those learners search: a
//! small SPJ algebra with equality selections (attribute = constant, attribute = attribute),
//! projections and equi-joins, together with a straightforward evaluator over
//! [`crate::model::Instance`].
//!
//! The algebra is deliberately value-based (no bag semantics beyond what the operators of
//! [`crate::operators`] produce) because the learning problems the paper considers are stated
//! over set semantics.

use std::fmt;

use crate::model::{Instance, Relation, RelationSchema, Tuple, Value};
use crate::operators::{equi_join, JoinPredicate};

/// An equality selection condition on a single relation (or intermediate result).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Condition {
    /// `attribute = constant`.
    AttrConst(String, Value),
    /// `attribute ≠ constant` (produced by the "else" branches of decision-tree learners).
    AttrNotConst(String, Value),
    /// `attribute = attribute` (both on the same input).
    AttrAttr(String, String),
}

impl Condition {
    /// Whether a tuple of the given schema satisfies the condition.
    ///
    /// Conditions naming attributes absent from the schema are unsatisfiable (return `false`)
    /// rather than an error: learners routinely probe candidate conditions against intermediate
    /// schemas that may not expose every attribute.
    pub fn satisfied_by(&self, schema: &RelationSchema, tuple: &Tuple) -> bool {
        match self {
            Condition::AttrConst(a, v) => schema.index_of(a).is_some_and(|ix| tuple.get(ix) == v),
            Condition::AttrNotConst(a, v) => {
                schema.index_of(a).is_some_and(|ix| tuple.get(ix) != v)
            }
            Condition::AttrAttr(a, b) => match (schema.index_of(a), schema.index_of(b)) {
                (Some(ia), Some(ib)) => tuple.get(ia) == tuple.get(ib),
                _ => false,
            },
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::AttrConst(a, v) => write!(f, "{a} = {v}"),
            Condition::AttrNotConst(a, v) => write!(f, "{a} ≠ {v}"),
            Condition::AttrAttr(a, b) => write!(f, "{a} = {b}"),
        }
    }
}

/// A select–project–join query.
///
/// The structure mirrors the textbook algebra: a base relation or an equi-join of two
/// sub-queries, wrapped by a conjunctive selection and an optional projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpjQuery {
    /// Scan of a named base relation.
    Scan(String),
    /// Conjunctive selection over a sub-query.
    Select {
        /// Input query.
        input: Box<SpjQuery>,
        /// Conditions, all of which must hold.
        conditions: Vec<Condition>,
    },
    /// Projection onto named attributes (in the given order).
    Project {
        /// Input query.
        input: Box<SpjQuery>,
        /// Attributes kept, by name.
        attributes: Vec<String>,
    },
    /// Equi-join of two sub-queries under an explicit positional predicate.
    Join {
        /// Left input.
        left: Box<SpjQuery>,
        /// Right input.
        right: Box<SpjQuery>,
        /// Positional equality predicate between left and right attributes.
        predicate: JoinPredicate,
    },
}

/// Errors raised while evaluating an [`SpjQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpjError {
    /// The query scans a relation absent from the instance.
    UnknownRelation(String),
    /// A projection names an attribute absent from its input schema.
    UnknownAttribute(String),
}

impl fmt::Display for SpjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpjError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            SpjError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
        }
    }
}

impl std::error::Error for SpjError {}

impl SpjQuery {
    /// Scan of a base relation.
    pub fn scan(name: impl Into<String>) -> SpjQuery {
        SpjQuery::Scan(name.into())
    }

    /// Wrap the query in a conjunctive selection; an empty condition list is the identity.
    pub fn select(self, conditions: Vec<Condition>) -> SpjQuery {
        if conditions.is_empty() {
            self
        } else {
            SpjQuery::Select {
                input: Box::new(self),
                conditions,
            }
        }
    }

    /// Wrap the query in a projection.
    pub fn project(self, attributes: &[&str]) -> SpjQuery {
        SpjQuery::Project {
            input: Box::new(self),
            attributes: attributes.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Equi-join with another query.
    pub fn join(self, right: SpjQuery, predicate: JoinPredicate) -> SpjQuery {
        SpjQuery::Join {
            left: Box::new(self),
            right: Box::new(right),
            predicate,
        }
    }

    /// Number of algebra operators in the query; used as the succinctness measure by the
    /// view-synthesis learner (smaller is better).
    pub fn size(&self) -> usize {
        match self {
            SpjQuery::Scan(_) => 1,
            SpjQuery::Select { input, conditions } => 1 + conditions.len() + input.size(),
            SpjQuery::Project { input, .. } => 1 + input.size(),
            SpjQuery::Join { left, right, .. } => 1 + left.size() + right.size(),
        }
    }

    /// Names of the base relations the query scans, in left-to-right order (with duplicates).
    pub fn base_relations(&self) -> Vec<String> {
        match self {
            SpjQuery::Scan(name) => vec![name.clone()],
            SpjQuery::Select { input, .. } | SpjQuery::Project { input, .. } => {
                input.base_relations()
            }
            SpjQuery::Join { left, right, .. } => {
                let mut v = left.base_relations();
                v.extend(right.base_relations());
                v
            }
        }
    }

    /// Evaluate the query over an instance (set semantics: the result is deduplicated).
    pub fn evaluate(&self, db: &Instance) -> Result<Relation, SpjError> {
        let raw = self.evaluate_bag(db)?;
        Ok(raw.distinct())
    }

    fn evaluate_bag(&self, db: &Instance) -> Result<Relation, SpjError> {
        match self {
            SpjQuery::Scan(name) => db
                .relation(name)
                .cloned()
                .ok_or_else(|| SpjError::UnknownRelation(name.clone())),
            SpjQuery::Select { input, conditions } => {
                let rel = input.evaluate_bag(db)?;
                let schema = rel.schema().clone();
                let mut out = Relation::new(schema.clone());
                for t in rel.tuples() {
                    if conditions.iter().all(|c| c.satisfied_by(&schema, t)) {
                        out.insert(t.clone());
                    }
                }
                Ok(out)
            }
            SpjQuery::Project { input, attributes } => {
                let rel = input.evaluate_bag(db)?;
                let mut positions = Vec::with_capacity(attributes.len());
                for a in attributes {
                    positions.push(
                        rel.schema()
                            .index_of(a)
                            .ok_or_else(|| SpjError::UnknownAttribute(a.clone()))?,
                    );
                }
                let attr_refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
                let schema = RelationSchema::new(rel.schema().name(), &attr_refs);
                let mut out = Relation::new(schema);
                for t in rel.tuples() {
                    out.insert(t.project(&positions));
                }
                Ok(out)
            }
            SpjQuery::Join {
                left,
                right,
                predicate,
            } => {
                let l = left.evaluate_bag(db)?;
                let r = right.evaluate_bag(db)?;
                Ok(equi_join(&l, &r, predicate))
            }
        }
    }

    /// Whether the query produces exactly the same set of tuples as `expected` on `db`
    /// (attribute names are ignored; only the tuple sets are compared).
    pub fn reproduces(&self, db: &Instance, expected: &Relation) -> Result<bool, SpjError> {
        let got = self.evaluate(db)?;
        Ok(same_tuple_set(&got, expected))
    }
}

impl fmt::Display for SpjQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpjQuery::Scan(name) => write!(f, "{name}"),
            SpjQuery::Select { input, conditions } => {
                let parts: Vec<String> = conditions.iter().map(|c| c.to_string()).collect();
                write!(f, "σ[{}]({input})", parts.join(" ∧ "))
            }
            SpjQuery::Project { input, attributes } => {
                write!(f, "π[{}]({input})", attributes.join(", "))
            }
            SpjQuery::Join {
                left,
                right,
                predicate,
            } => {
                write!(f, "({left} ⋈[{predicate}] {right})")
            }
        }
    }
}

/// Whether two relations hold the same *set* of tuples (schema names are ignored; duplicate
/// tuples count once, as in the `BTreeSet` comparison this replaces).
///
/// Sorts each side's tuple references once and compares the deduplicated runs — no per-call
/// tree allocation, which matters to the consistency checkers that call this for every
/// candidate query.
pub fn same_tuple_set(a: &Relation, b: &Relation) -> bool {
    if a.schema().arity() != b.schema().arity() {
        return false;
    }
    let mut sa: Vec<&Tuple> = a.tuples().iter().collect();
    let mut sb: Vec<&Tuple> = b.tuples().iter().collect();
    sa.sort_unstable();
    sa.dedup();
    sb.sort_unstable();
    sb.dedup();
    sa == sb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Value;

    fn db() -> Instance {
        let mut db = Instance::new();
        db.add(Relation::with_tuples(
            RelationSchema::new("emp", &["eid", "name", "dept"]),
            vec![
                Tuple::new(vec![1.into(), "Ana".into(), 10.into()]),
                Tuple::new(vec![2.into(), "Bob".into(), 10.into()]),
                Tuple::new(vec![3.into(), "Cleo".into(), 20.into()]),
            ],
        ));
        db.add(Relation::with_tuples(
            RelationSchema::new("dept", &["did", "city"]),
            vec![
                Tuple::new(vec![10.into(), "Lille".into()]),
                Tuple::new(vec![20.into(), "Paris".into()]),
            ],
        ));
        db
    }

    #[test]
    fn same_tuple_set_ignores_duplicates_and_order() {
        let schema = RelationSchema::new("r", &["a", "b"]);
        let with_dupes = Relation::with_tuples(
            schema.clone(),
            vec![
                Tuple::new(vec![1.into(), "x".into()]),
                Tuple::new(vec![1.into(), "x".into()]),
                Tuple::new(vec![2.into(), "y".into()]),
            ],
        );
        let deduped_reordered = Relation::with_tuples(
            RelationSchema::new("s", &["c", "d"]),
            vec![
                Tuple::new(vec![2.into(), "y".into()]),
                Tuple::new(vec![1.into(), "x".into()]),
            ],
        );
        // Set semantics: duplicates count once, tuple order and schema names are irrelevant.
        assert!(same_tuple_set(&with_dupes, &deduped_reordered));
        assert!(same_tuple_set(&deduped_reordered, &with_dupes));
        let different = Relation::with_tuples(
            schema.clone(),
            vec![
                Tuple::new(vec![1.into(), "x".into()]),
                Tuple::new(vec![3.into(), "z".into()]),
            ],
        );
        assert!(!same_tuple_set(&with_dupes, &different));
        // Arity mismatches never compare equal.
        let narrower = Relation::with_tuples(
            RelationSchema::new("t", &["a"]),
            vec![Tuple::new(vec![1.into()])],
        );
        assert!(!same_tuple_set(&with_dupes, &narrower));
    }

    #[test]
    fn scan_returns_the_base_relation() {
        let q = SpjQuery::scan("emp");
        let r = q.evaluate(&db()).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let q = SpjQuery::scan("ghost");
        assert_eq!(
            q.evaluate(&db()),
            Err(SpjError::UnknownRelation("ghost".into()))
        );
    }

    #[test]
    fn selection_filters_on_constants() {
        let q =
            SpjQuery::scan("emp").select(vec![Condition::AttrConst("dept".into(), Value::Int(10))]);
        let r = q.evaluate(&db()).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn empty_selection_is_identity() {
        let q = SpjQuery::scan("emp").select(vec![]);
        assert_eq!(q, SpjQuery::scan("emp"));
    }

    #[test]
    fn selection_on_missing_attribute_selects_nothing() {
        let q = SpjQuery::scan("emp")
            .select(vec![Condition::AttrConst("salary".into(), Value::Int(1))]);
        assert!(q.evaluate(&db()).unwrap().is_empty());
    }

    #[test]
    fn attr_attr_selection_compares_columns() {
        let mut db = Instance::new();
        db.add(Relation::with_tuples(
            RelationSchema::new("r", &["a", "b"]),
            vec![
                Tuple::new(vec![1.into(), 1.into()]),
                Tuple::new(vec![1.into(), 2.into()]),
            ],
        ));
        let q = SpjQuery::scan("r").select(vec![Condition::AttrAttr("a".into(), "b".into())]);
        assert_eq!(q.evaluate(&db).unwrap().len(), 1);
    }

    #[test]
    fn projection_reorders_and_deduplicates() {
        let q = SpjQuery::scan("emp").project(&["dept"]);
        let r = q.evaluate(&db()).unwrap();
        assert_eq!(
            r.len(),
            2,
            "set semantics deduplicates the two dept-10 rows"
        );
        assert_eq!(r.schema().attributes(), &["dept".to_string()]);
    }

    #[test]
    fn projection_onto_unknown_attribute_is_an_error() {
        let q = SpjQuery::scan("emp").project(&["salary"]);
        assert_eq!(
            q.evaluate(&db()),
            Err(SpjError::UnknownAttribute("salary".into()))
        );
    }

    #[test]
    fn join_combines_relations() {
        let q =
            SpjQuery::scan("emp").join(SpjQuery::scan("dept"), JoinPredicate::from_pairs([(2, 0)]));
        let r = q.evaluate(&db()).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.schema().arity(), 5);
    }

    #[test]
    fn query_size_counts_operators_and_conditions() {
        let q = SpjQuery::scan("emp")
            .select(vec![Condition::AttrConst("dept".into(), Value::Int(10))])
            .project(&["name"]);
        assert_eq!(q.size(), 4); // scan + select + 1 condition + project
    }

    #[test]
    fn base_relations_are_reported_in_order() {
        let q = SpjQuery::scan("emp")
            .join(SpjQuery::scan("dept"), JoinPredicate::from_pairs([(2, 0)]))
            .project(&["emp.name"]);
        assert_eq!(
            q.base_relations(),
            vec!["emp".to_string(), "dept".to_string()]
        );
    }

    #[test]
    fn reproduces_compares_tuple_sets_ignoring_names() {
        let q = SpjQuery::scan("emp").project(&["eid"]);
        let expected = Relation::with_tuples(
            RelationSchema::new("out", &["x"]),
            vec![
                Tuple::new(vec![1.into()]),
                Tuple::new(vec![2.into()]),
                Tuple::new(vec![3.into()]),
            ],
        );
        assert!(q.reproduces(&db(), &expected).unwrap());
    }

    #[test]
    fn reproduces_detects_arity_mismatch() {
        let q = SpjQuery::scan("emp").project(&["eid"]);
        let expected = Relation::with_tuples(
            RelationSchema::new("out", &["x", "y"]),
            vec![Tuple::new(vec![1.into(), 2.into()])],
        );
        assert!(!q.reproduces(&db(), &expected).unwrap());
    }

    #[test]
    fn display_renders_algebra_notation() {
        let q = SpjQuery::scan("emp")
            .select(vec![Condition::AttrConst("dept".into(), Value::Int(10))])
            .project(&["name"]);
        assert_eq!(q.to_string(), "π[name](σ[dept = 10](emp))");
    }
}
