//! Relational data model: typed values, schemas, tuples, relations and instances.
//!
//! The paper's relational setting is deliberately simple — "we plan to concentrate on simple
//! operators, such as join-like operators" over a very large instance annotated by a user — so
//! the model keeps only what the join/semijoin learners and the cross-model exchange scenarios
//! need: named relations with named attributes and first-normal-form tuples of scalar values.

use std::collections::BTreeMap;
use std::fmt;

/// A scalar attribute value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Text value.
    Text(String),
    /// Boolean value.
    Bool(bool),
    /// Missing value.
    Null,
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Whether the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// Schema of a relation: its name and ordered attribute names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    attributes: Vec<String>,
}

impl RelationSchema {
    /// Create a schema; attribute names must be distinct.
    pub fn new(name: impl Into<String>, attributes: &[&str]) -> RelationSchema {
        let attributes: Vec<String> = attributes.iter().map(|s| s.to_string()).collect();
        let mut sorted = attributes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            attributes.len(),
            "attribute names must be distinct"
        );
        RelationSchema {
            name: name.into(),
            attributes,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute names in declaration order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Index of an attribute by name.
    pub fn index_of(&self, attribute: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == attribute)
    }

    /// Attributes shared (by name) with another schema.
    pub fn common_attributes(&self, other: &RelationSchema) -> Vec<String> {
        self.attributes
            .iter()
            .filter(|a| other.index_of(a).is_some())
            .cloned()
            .collect()
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attributes.join(", "))
    }
}

/// A tuple: an ordered list of values conforming to some schema's arity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at a position.
    pub fn get(&self, index: usize) -> &Value {
        &self.values[index]
    }

    /// Arity of the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Concatenate two tuples (used by products and joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Tuple::new(values)
    }

    /// Project onto the given positions.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(positions.iter().map(|&p| self.values[p].clone()).collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.values.iter().map(|v| v.to_string()).collect();
        write!(f, "({})", parts.join(", "))
    }
}

/// Convenience macro-free tuple constructor from anything convertible to [`Value`].
pub fn tuple<const N: usize>(values: [Value; N]) -> Tuple {
    Tuple::new(values.to_vec())
}

/// A relation: a schema plus a list of tuples (duplicates allowed, as in the annotated-instance
/// setting; deduplication is available via [`Relation::distinct`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: RelationSchema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Create an empty relation.
    pub fn new(schema: RelationSchema) -> Relation {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Create a relation with tuples, checking arity.
    pub fn with_tuples(schema: RelationSchema, tuples: Vec<Tuple>) -> Relation {
        for t in &tuples {
            assert_eq!(
                t.arity(),
                schema.arity(),
                "tuple arity must match the schema"
            );
        }
        Relation { schema, tuples }
    }

    /// The schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Add a tuple.
    pub fn insert(&mut self, tuple: Tuple) {
        assert_eq!(
            tuple.arity(),
            self.schema.arity(),
            "tuple arity must match the schema"
        );
        self.tuples.push(tuple);
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The same relation with duplicate tuples removed (set semantics).
    pub fn distinct(&self) -> Relation {
        let mut seen = std::collections::BTreeSet::new();
        let tuples: Vec<Tuple> = self
            .tuples
            .iter()
            .filter(|t| seen.insert((*t).clone()))
            .cloned()
            .collect();
        Relation {
            schema: self.schema.clone(),
            tuples,
        }
    }

    /// Value of a named attribute in a given tuple.
    pub fn value<'t>(&self, tuple: &'t Tuple, attribute: &str) -> Option<&'t Value> {
        self.schema.index_of(attribute).map(|ix| tuple.get(ix))
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

/// A database instance: a collection of named relations.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    relations: BTreeMap<String, Relation>,
}

impl Instance {
    /// Create an empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Add (or replace) a relation.
    pub fn add(&mut self, relation: Relation) {
        self.relations
            .insert(relation.schema().name().to_string(), relation);
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// All relations.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the instance has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Relation {
        Relation::with_tuples(
            RelationSchema::new("people", &["pid", "name", "city"]),
            vec![
                Tuple::new(vec![1.into(), "Alice".into(), "Lille".into()]),
                Tuple::new(vec![2.into(), "Bob".into(), "Paris".into()]),
            ],
        )
    }

    #[test]
    fn schema_resolves_attribute_positions() {
        let s = RelationSchema::new("r", &["a", "b", "c"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
    }

    #[test]
    #[should_panic]
    fn duplicate_attributes_are_rejected() {
        RelationSchema::new("r", &["a", "a"]);
    }

    #[test]
    fn common_attributes_are_by_name() {
        let r = RelationSchema::new("r", &["id", "name"]);
        let s = RelationSchema::new("s", &["id", "price"]);
        assert_eq!(r.common_attributes(&s), vec!["id"]);
    }

    #[test]
    fn tuple_concat_and_project() {
        let t = Tuple::new(vec![1.into(), "x".into()]);
        let u = Tuple::new(vec![true.into()]);
        let c = t.concat(&u);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.project(&[2, 0]), Tuple::new(vec![true.into(), 1.into()]));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_is_rejected() {
        let mut r = people();
        r.insert(Tuple::new(vec![3.into()]));
    }

    #[test]
    fn relation_value_lookup_by_attribute_name() {
        let r = people();
        let first = &r.tuples()[0];
        assert_eq!(r.value(first, "name"), Some(&Value::text("Alice")));
        assert_eq!(r.value(first, "missing"), None);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let mut r = people();
        let dup = r.tuples()[0].clone();
        r.insert(dup);
        assert_eq!(r.len(), 3);
        assert_eq!(r.distinct().len(), 2);
    }

    #[test]
    fn instance_stores_relations_by_name() {
        let mut db = Instance::new();
        db.add(people());
        assert_eq!(db.len(), 1);
        assert_eq!(db.total_tuples(), 2);
        assert!(db.relation("people").is_some());
        assert!(db.relation("orders").is_none());
    }

    #[test]
    fn value_display_and_conversions() {
        assert_eq!(Value::from(3).to_string(), "3");
        assert_eq!(Value::text("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert!(Value::Null.is_null());
        assert!(!Value::from(false).is_null());
    }
}
