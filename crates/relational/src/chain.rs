//! Chains of joins between many relations.
//!
//! The paper's §3 proposes extending join learning "to chains of joins between many relations":
//! the instance is a sequence `R1, …, Rk` and the hypothesis is one equi-join predicate per
//! consecutive pair, so that the query is `R1 ⋈θ1 R2 ⋈θ2 … ⋈θ(k-1) Rk`. Examples are
//! combinations of tuple indices (one per relation) labelled positive ("this combination belongs
//! to the result") or negative.
//!
//! The tractability argument of the binary case carries over: the most specific consistent
//! hypothesis is, per adjacent pair, the intersection of the agreement sets of the positive
//! combinations; it is consistent iff it rejects every negative, which decides consistency in
//! polynomial time.

use crate::join_learn::agreement_set;
use crate::model::{Relation, Tuple};
use crate::operators::{equi_join, JoinPredicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A conjunction of equi-join predicates along a chain of relations: `preds[i]` relates
/// `relations[i]` to `relations[i + 1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainPredicate {
    preds: Vec<JoinPredicate>,
}

impl ChainPredicate {
    /// Build from one predicate per adjacent pair.
    pub fn new(preds: Vec<JoinPredicate>) -> ChainPredicate {
        ChainPredicate { preds }
    }

    /// The most general chain predicate over `k` relations (no equalities anywhere).
    pub fn top(k: usize) -> ChainPredicate {
        assert!(k >= 2, "a chain needs at least two relations");
        ChainPredicate {
            preds: vec![JoinPredicate::empty(); k - 1],
        }
    }

    /// Predicates of the chain, in order.
    pub fn predicates(&self) -> &[JoinPredicate] {
        &self.preds
    }

    /// Number of relations the chain spans.
    pub fn relations(&self) -> usize {
        self.preds.len() + 1
    }

    /// Total number of equalities across the chain.
    pub fn len(&self) -> usize {
        self.preds.iter().map(JoinPredicate::len).sum()
    }

    /// Whether the chain has no equality at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a combination of tuples (one per relation) satisfies every adjacent predicate.
    pub fn satisfied_by(&self, tuples: &[&Tuple]) -> bool {
        assert_eq!(
            tuples.len(),
            self.relations(),
            "one tuple per relation expected"
        );
        self.preds
            .iter()
            .enumerate()
            .all(|(i, p)| p.satisfied_by(tuples[i], tuples[i + 1]))
    }

    /// Pairwise subset test: `self` is at least as general as `other` (every equality of `self`
    /// appears in `other` at the same position).
    pub fn subset_of(&self, other: &ChainPredicate) -> bool {
        self.preds.len() == other.preds.len()
            && self
                .preds
                .iter()
                .zip(&other.preds)
                .all(|(a, b)| a.subset_of(b))
    }

    /// Human-readable rendering against the relation schemas.
    pub fn describe(&self, relations: &[Relation]) -> String {
        let parts: Vec<String> = self
            .preds
            .iter()
            .enumerate()
            .map(|(i, p)| p.describe(relations[i].schema(), relations[i + 1].schema()))
            .collect();
        parts.join("  AND  ")
    }
}

/// A labelled combination of tuple indices, one per relation of the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelledCombination {
    /// One tuple index per relation, in chain order.
    pub indices: Vec<usize>,
    /// Whether the combination belongs to the chain-join result.
    pub positive: bool,
}

impl LabelledCombination {
    /// Convenience constructor.
    pub fn new(indices: Vec<usize>, positive: bool) -> LabelledCombination {
        LabelledCombination { indices, positive }
    }
}

/// Result of the chain consistency check.
#[derive(Debug, Clone)]
pub enum ChainConsistency {
    /// A consistent chain predicate (the most specific one).
    Consistent(ChainPredicate),
    /// No conjunction of adjacent equi-joins separates the examples.
    Inconsistent,
}

impl ChainConsistency {
    /// The witness predicate, when consistent.
    pub fn predicate(&self) -> Option<&ChainPredicate> {
        match self {
            ChainConsistency::Consistent(p) => Some(p),
            ChainConsistency::Inconsistent => None,
        }
    }

    /// Whether the examples are consistent.
    pub fn is_consistent(&self) -> bool {
        matches!(self, ChainConsistency::Consistent(_))
    }
}

/// The most specific chain predicate consistent with the positive combinations: for every
/// adjacent pair, the intersection of the agreement sets of the positives. With no positives the
/// result equates every pair of attributes that agrees on... nothing, i.e. the full predicate is
/// unconstrained; we return the all-pairs predicate (most specific overall).
pub fn most_specific_chain(
    relations: &[Relation],
    labels: &[LabelledCombination],
) -> ChainPredicate {
    assert!(relations.len() >= 2);
    let mut preds: Vec<JoinPredicate> = Vec::with_capacity(relations.len() - 1);
    for i in 0..relations.len() - 1 {
        let all_pairs = JoinPredicate::from_pairs(
            (0..relations[i].schema().arity())
                .flat_map(|a| (0..relations[i + 1].schema().arity()).map(move |b| (a, b))),
        );
        let mut pred = all_pairs;
        for label in labels.iter().filter(|l| l.positive) {
            let agreement = agreement_set(
                &relations[i],
                &relations[i + 1],
                label.indices[i],
                label.indices[i + 1],
            );
            pred = pred.intersect(&agreement);
        }
        preds.push(pred);
    }
    ChainPredicate::new(preds)
}

/// Decide consistency of a labelled set of combinations (polynomial time): compute the most
/// specific chain predicate from the positives and check it rejects every negative.
pub fn chain_consistent(
    relations: &[Relation],
    labels: &[LabelledCombination],
) -> ChainConsistency {
    for label in labels {
        assert_eq!(
            label.indices.len(),
            relations.len(),
            "one index per relation expected"
        );
        for (ix, &t) in label.indices.iter().enumerate() {
            assert!(t < relations[ix].len(), "tuple index out of range");
        }
    }
    let candidate = most_specific_chain(relations, labels);
    let consistent = labels.iter().all(|label| {
        let tuples: Vec<&Tuple> = label
            .indices
            .iter()
            .enumerate()
            .map(|(ix, &t)| &relations[ix].tuples()[t])
            .collect();
        candidate.satisfied_by(&tuples) == label.positive
    });
    if consistent {
        ChainConsistency::Consistent(candidate)
    } else {
        ChainConsistency::Inconsistent
    }
}

/// Materialise the chain join `R1 ⋈ … ⋈ Rk` under the given chain predicate. The result schema
/// is the concatenation of the relation schemas (as produced by repeated [`equi_join`]).
pub fn chain_join(relations: &[Relation], predicate: &ChainPredicate) -> Relation {
    assert!(relations.len() >= 2);
    assert_eq!(predicate.relations(), relations.len());
    let mut acc = relations[0].clone();
    let mut left_arity = relations[0].schema().arity();
    for (i, right) in relations.iter().enumerate().skip(1) {
        // The predicate's left positions refer to relation i-1, which occupies the last
        // `relations[i-1].arity()` columns of the accumulated result — shift accordingly.
        let offset = left_arity - relations[i - 1].schema().arity();
        let shifted = JoinPredicate::from_pairs(
            predicate.predicates()[i - 1]
                .pairs()
                .map(|(a, b)| (a + offset, b)),
        );
        acc = equi_join(&acc, right, &shifted);
        left_arity += right.schema().arity();
    }
    acc
}

/// Outcome of an interactive chain-learning session.
#[derive(Debug, Clone)]
pub struct ChainSessionOutcome {
    /// The learned chain predicate.
    pub predicate: ChainPredicate,
    /// Total number of labels requested across all adjacent pairs.
    pub interactions: usize,
    /// Labels inferred without asking.
    pub inferred: usize,
}

/// Interactive learning of a chain of joins: run the pairwise interactive protocol on each
/// adjacent pair of relations (the user labels pairs of tuples, not whole combinations, which is
/// both easier for her and strictly more informative) and assemble the learned predicates.
pub fn interactive_chain_learn(
    relations: &[Relation],
    goal: &ChainPredicate,
    strategy: crate::interactive::Strategy,
    seed: u64,
) -> ChainSessionOutcome {
    assert!(relations.len() >= 2);
    assert_eq!(goal.relations(), relations.len());
    let mut preds = Vec::with_capacity(relations.len() - 1);
    let mut interactions = 0;
    let mut inferred = 0;
    for i in 0..relations.len() - 1 {
        let outcome = crate::interactive::interactive_learn(
            &relations[i],
            &relations[i + 1],
            &goal.predicates()[i],
            strategy,
            seed.wrapping_add(i as u64),
        );
        interactions += outcome.interactions;
        inferred += outcome.inferred;
        preds.push(outcome.predicate);
    }
    ChainSessionOutcome {
        predicate: ChainPredicate::new(preds),
        interactions,
        inferred,
    }
}

/// Configuration of the synthetic chain-instance generator.
#[derive(Debug, Clone)]
pub struct ChainInstanceConfig {
    /// Number of relations in the chain (≥ 2).
    pub relations: usize,
    /// Tuples per relation.
    pub rows: usize,
    /// Non-key attributes per relation.
    pub extra_attributes: usize,
    /// Domain size of non-key attributes.
    pub domain_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChainInstanceConfig {
    fn default() -> Self {
        ChainInstanceConfig {
            relations: 3,
            rows: 30,
            extra_attributes: 1,
            domain_size: 6,
            seed: 42,
        }
    }
}

/// Generate a chain `R1, …, Rk` where consecutive relations share a key/foreign-key pair, plus
/// the goal chain predicate (the key equalities a simulated user has in mind).
pub fn generate_chain_instance(config: &ChainInstanceConfig) -> (Vec<Relation>, ChainPredicate) {
    assert!(config.relations >= 2);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut relations = Vec::with_capacity(config.relations);
    for r in 0..config.relations {
        let mut attrs: Vec<String> = vec!["id".to_string()];
        if r > 0 {
            attrs.push("prev".to_string());
        }
        attrs.extend((0..config.extra_attributes).map(|i| format!("x{i}")));
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let schema = crate::model::RelationSchema::new(format!("r{r}"), &attr_refs);
        let mut rel = Relation::new(schema);
        for row in 0..config.rows {
            let mut values = vec![crate::model::Value::Int(row as i64)];
            if r > 0 {
                values.push(crate::model::Value::Int(
                    rng.gen_range(0..config.rows) as i64
                ));
            }
            values
                .extend((0..config.extra_attributes).map(|_| {
                    crate::model::Value::Int(rng.gen_range(0..config.domain_size) as i64)
                }));
            rel.insert(Tuple::new(values));
        }
        relations.push(rel);
    }
    let preds: Vec<JoinPredicate> = (0..config.relations - 1)
        .map(|i| {
            JoinPredicate::from_names(
                relations[i].schema(),
                relations[i + 1].schema(),
                &[("id", "prev")],
            )
            .expect("generated schemas have id/prev")
        })
        .collect();
    (relations, ChainPredicate::new(preds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interactive::Strategy;

    fn chain(seed: u64) -> (Vec<Relation>, ChainPredicate) {
        generate_chain_instance(&ChainInstanceConfig {
            rows: 12,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn top_predicate_accepts_everything() {
        let (relations, _) = chain(1);
        let top = ChainPredicate::top(relations.len());
        let tuples: Vec<&Tuple> = relations.iter().map(|r| &r.tuples()[0]).collect();
        assert!(top.satisfied_by(&tuples));
        assert!(top.is_empty());
    }

    #[test]
    fn goal_labels_are_always_consistent() {
        let (relations, goal) = chain(2);
        let mut labels = Vec::new();
        for i in 0..relations[0].len().min(8) {
            let indices = vec![i, i % relations[1].len(), (i * 3 + 1) % relations[2].len()];
            let tuples: Vec<&Tuple> = indices
                .iter()
                .enumerate()
                .map(|(ix, &t)| &relations[ix].tuples()[t])
                .collect();
            labels.push(LabelledCombination::new(
                indices,
                goal.satisfied_by(&tuples),
            ));
        }
        let outcome = chain_consistent(&relations, &labels);
        assert!(outcome.is_consistent());
        let learned = outcome.predicate().unwrap();
        // The goal is a (pairwise) superset of the learned most specific predicate only when a
        // positive was observed; in all cases the learned predicate classifies the labels right.
        for label in &labels {
            let tuples: Vec<&Tuple> = label
                .indices
                .iter()
                .enumerate()
                .map(|(ix, &t)| &relations[ix].tuples()[t])
                .collect();
            assert_eq!(learned.satisfied_by(&tuples), label.positive);
        }
    }

    #[test]
    fn contradictory_labels_are_inconsistent() {
        let (relations, _) = chain(3);
        let labels = vec![
            LabelledCombination::new(vec![0, 0, 0], true),
            LabelledCombination::new(vec![0, 0, 0], false),
        ];
        assert!(!chain_consistent(&relations, &labels).is_consistent());
    }

    #[test]
    fn chain_join_respects_the_goal_predicate() {
        let (relations, goal) = chain(4);
        let result = chain_join(&relations, &goal);
        // Every result tuple satisfies both key equalities (id = prev along the chain).
        let a0 = relations[0].schema().arity();
        let a1 = relations[1].schema().arity();
        for t in result.tuples() {
            assert_eq!(t.get(0), t.get(a0 + 1), "first link broken");
            assert_eq!(t.get(a0), t.get(a0 + a1 + 1), "second link broken");
        }
        // And the count matches the nested binary joins done by hand.
        let first = equi_join(&relations[0], &relations[1], &goal.predicates()[0]);
        assert!(result.len() <= first.len() * relations[2].len());
    }

    #[test]
    fn interactive_chain_learning_recovers_goal_semantics() {
        let (relations, goal) = chain(5);
        let outcome = interactive_chain_learn(&relations, &goal, Strategy::MostSpecificFirst, 11);
        // Learned and goal chains select the same combinations (checked on a sample).
        for i in 0..relations[0].len() {
            for j in 0..relations[1].len().min(6) {
                for k in 0..relations[2].len().min(6) {
                    let tuples = vec![
                        &relations[0].tuples()[i],
                        &relations[1].tuples()[j],
                        &relations[2].tuples()[k],
                    ];
                    assert_eq!(
                        outcome.predicate.satisfied_by(&tuples),
                        goal.satisfied_by(&tuples)
                    );
                }
            }
        }
        assert!(outcome.interactions > 0);
    }

    #[test]
    fn describe_mentions_every_link() {
        let (relations, goal) = chain(6);
        let text = goal.describe(&relations);
        assert!(text.contains("r0.id = r1.prev"));
        assert!(text.contains("r1.id = r2.prev"));
    }

    #[test]
    fn subset_of_is_reflexive_and_detects_generalisation() {
        let (relations, goal) = chain(7);
        assert!(goal.subset_of(&goal));
        let top = ChainPredicate::top(relations.len());
        assert!(top.subset_of(&goal));
        assert!(!goal.subset_of(&top));
    }
}
