//! Learning semijoin predicates from labelled left-hand tuples.
//!
//! Setting (paper §3): the goal query is a semijoin `R ⋉θ S` — the user labels tuples **of `R`
//! alone** as positive ("keep: it has a partner in S under the join I have in mind") or negative
//! ("drop"). This is the class for which the paper notes consistency checking is *intractable*:
//! a positive tuple only needs **some** witness in `S`, so the simple agreement-set argument of
//! the equi-join case no longer applies and one must search which witness each positive uses.
//!
//! Provided algorithms:
//!
//! * [`semijoin_consistent_exact`] — exact exponential search over predicate candidates (used to
//!   exhibit the blow-up in the benchmarks and as ground truth in tests);
//! * [`semijoin_learn_greedy`] — a polynomial heuristic that starts from the union of the
//!   positives' best agreement sets and greedily repairs violated negatives; may fail even when
//!   a consistent predicate exists (that is the price of tractability the paper's "approximate
//!   learning" discussion accepts).

use crate::model::Relation;
use crate::operators::{semijoin, JoinPredicate};
use std::collections::BTreeSet;

/// A labelled tuple of the left relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelledTuple {
    /// Index into the left relation.
    pub index: usize,
    /// Whether the tuple must appear in the semijoin result.
    pub positive: bool,
}

impl LabelledTuple {
    /// Convenience constructor.
    pub fn new(index: usize, positive: bool) -> LabelledTuple {
        LabelledTuple { index, positive }
    }
}

/// Whether a predicate is consistent with the labels: every positive left tuple has a partner
/// and no negative one does.
pub fn predicate_consistent(
    left: &Relation,
    right: &Relation,
    labels: &[LabelledTuple],
    predicate: &JoinPredicate,
) -> bool {
    let selected: BTreeSet<usize> = {
        let result = semijoin(left, right, predicate);
        // Recover indices by identity of tuples (duplicates handled by counting positions).
        let mut out = BTreeSet::new();
        for (ix, t) in left.tuples().iter().enumerate() {
            if result.tuples().contains(t) {
                out.insert(ix);
            }
        }
        out
    };
    labels
        .iter()
        .all(|l| selected.contains(&l.index) == l.positive)
}

/// All attribute pairs of the two schemas.
fn all_pairs(left: &Relation, right: &Relation) -> Vec<(usize, usize)> {
    (0..left.schema().arity())
        .flat_map(|i| (0..right.schema().arity()).map(move |j| (i, j)))
        .collect()
}

/// Exact consistency check by exhaustive search over all subsets of attribute pairs
/// (`2^(arity(L)·arity(R))` candidates — exponential, as expected for an intractable problem).
/// Returns a consistent predicate with the largest number of equalities, if any exists.
pub fn semijoin_consistent_exact(
    left: &Relation,
    right: &Relation,
    labels: &[LabelledTuple],
) -> Option<JoinPredicate> {
    let pairs = all_pairs(left, right);
    let n = pairs.len();
    assert!(
        n <= 24,
        "exhaustive semijoin search is limited to 24 attribute pairs"
    );
    let mut best: Option<JoinPredicate> = None;
    for mask in 0u32..(1u32 << n) {
        let predicate = JoinPredicate::from_pairs(
            pairs
                .iter()
                .enumerate()
                .filter(|(ix, _)| mask & (1 << ix) != 0)
                .map(|(_, &p)| p),
        );
        if predicate_consistent(left, right, labels, &predicate) {
            let better = match &best {
                None => true,
                Some(b) => predicate.len() > b.len(),
            };
            if better {
                best = Some(predicate);
            }
        }
    }
    best
}

/// Greedy polynomial heuristic.
///
/// Start from the intersection of the positives' *maximal* agreement sets (each positive picks
/// the right tuple it agrees with on the most attributes), then, while some negative still has a
/// partner, add the equality that removes the most offending negatives without orphaning any
/// positive. Gives up (returns `None`) when no such repair exists.
pub fn semijoin_learn_greedy(
    left: &Relation,
    right: &Relation,
    labels: &[LabelledTuple],
) -> Option<JoinPredicate> {
    let positives: Vec<usize> = labels
        .iter()
        .filter(|l| l.positive)
        .map(|l| l.index)
        .collect();
    let pairs = all_pairs(left, right);

    // Initial candidate: pairs on which every positive agrees with at least one right tuple
    // simultaneously — approximated by keeping pairs satisfied by each positive's best witness.
    let mut candidate: BTreeSet<(usize, usize)> = pairs.iter().copied().collect();
    for &p in &positives {
        let lt = &left.tuples()[p];
        let best_witness = right.tuples().iter().max_by_key(|rt| {
            pairs
                .iter()
                .filter(|&&(i, j)| lt.get(i) == rt.get(j))
                .count()
        })?;
        candidate.retain(|&(i, j)| lt.get(i) == best_witness.get(j));
    }
    let mut predicate = JoinPredicate::from_pairs(candidate.iter().copied());

    // If the candidate orphans a positive (its best witness choice was wrong for the shared
    // predicate), drop equalities until every positive has a partner again.
    loop {
        let orphan = positives.iter().find(|&&p| {
            let lt = &left.tuples()[p];
            !right
                .tuples()
                .iter()
                .any(|rt| predicate.satisfied_by(lt, rt))
        });
        match orphan {
            None => break,
            Some(&p) => {
                // Remove the equality that, once dropped, lets this positive find a partner and
                // keeps the most equalities overall.
                let lt = &left.tuples()[p];
                let current: Vec<(usize, usize)> = predicate.pairs().collect();
                let mut repaired = false;
                for drop_ix in 0..current.len() {
                    let attempt = JoinPredicate::from_pairs(
                        current
                            .iter()
                            .enumerate()
                            .filter(|(ix, _)| *ix != drop_ix)
                            .map(|(_, &p)| p),
                    );
                    if right.tuples().iter().any(|rt| attempt.satisfied_by(lt, rt)) {
                        predicate = attempt;
                        repaired = true;
                        break;
                    }
                }
                if !repaired {
                    if current.is_empty() {
                        // The empty predicate pairs everything with everything; if the right
                        // relation is empty no semijoin keeps this positive.
                        return None;
                    }
                    predicate = JoinPredicate::empty();
                }
            }
        }
    }

    if predicate_consistent(left, right, labels, &predicate) {
        Some(predicate)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RelationSchema, Tuple};

    fn employees() -> Relation {
        Relation::with_tuples(
            RelationSchema::new("employees", &["eid", "dept", "city"]),
            vec![
                Tuple::new(vec![1.into(), "sales".into(), "Lille".into()]),
                Tuple::new(vec![2.into(), "hr".into(), "Paris".into()]),
                Tuple::new(vec![3.into(), "sales".into(), "Paris".into()]),
                Tuple::new(vec![4.into(), "it".into(), "Lyon".into()]),
            ],
        )
    }

    fn offices() -> Relation {
        Relation::with_tuples(
            RelationSchema::new("offices", &["dept", "city"]),
            vec![
                Tuple::new(vec!["sales".into(), "Lille".into()]),
                Tuple::new(vec!["hr".into(), "Paris".into()]),
            ],
        )
    }

    #[test]
    fn exact_search_finds_a_separating_predicate() {
        // Goal: employees whose department has an office (dept = dept).
        let labels = vec![
            LabelledTuple::new(0, true),  // sales
            LabelledTuple::new(1, true),  // hr
            LabelledTuple::new(3, false), // it has no office
        ];
        let p = semijoin_consistent_exact(&employees(), &offices(), &labels).expect("consistent");
        assert!(predicate_consistent(&employees(), &offices(), &labels, &p));
        assert!(p.contains((1, 0)), "expected dept=dept in {p}");
    }

    #[test]
    fn exact_search_detects_inconsistency() {
        // Same tuple labelled both ways.
        let labels = vec![LabelledTuple::new(0, true), LabelledTuple::new(0, false)];
        assert!(semijoin_consistent_exact(&employees(), &offices(), &labels).is_none());
    }

    #[test]
    fn exact_search_needs_witness_flexibility() {
        // Employee 2 (hr, Paris) and employee 0 (sales, Lille) both positive, employee 2 matches
        // the hr office and employee 0 the sales office — different witnesses, same predicate.
        let labels = vec![
            LabelledTuple::new(0, true),
            LabelledTuple::new(1, true),
            LabelledTuple::new(2, false), // sales/Paris: dept matches but city does not
        ];
        let p = semijoin_consistent_exact(&employees(), &offices(), &labels).expect("consistent");
        // Separating sales/Paris from sales/Lille requires both dept and city equalities.
        assert!(p.contains((1, 0)) && p.contains((2, 1)), "got {p}");
    }

    #[test]
    fn greedy_heuristic_solves_the_easy_cases() {
        let labels = vec![
            LabelledTuple::new(0, true),
            LabelledTuple::new(1, true),
            LabelledTuple::new(3, false),
        ];
        let p =
            semijoin_learn_greedy(&employees(), &offices(), &labels).expect("greedy solves this");
        assert!(predicate_consistent(&employees(), &offices(), &labels, &p));
    }

    #[test]
    fn greedy_heuristic_agrees_with_exact_when_it_succeeds() {
        let labels = vec![
            LabelledTuple::new(0, true),
            LabelledTuple::new(1, true),
            LabelledTuple::new(2, false),
        ];
        if let Some(p) = semijoin_learn_greedy(&employees(), &offices(), &labels) {
            assert!(predicate_consistent(&employees(), &offices(), &labels, &p));
        }
        // The exact search must succeed regardless.
        assert!(semijoin_consistent_exact(&employees(), &offices(), &labels).is_some());
    }

    #[test]
    fn greedy_returns_none_on_contradiction() {
        let labels = vec![LabelledTuple::new(0, true), LabelledTuple::new(0, false)];
        assert!(semijoin_learn_greedy(&employees(), &offices(), &labels).is_none());
    }

    #[test]
    fn positives_only_are_always_consistent() {
        let labels = vec![LabelledTuple::new(0, true), LabelledTuple::new(1, true)];
        assert!(semijoin_consistent_exact(&employees(), &offices(), &labels).is_some());
        assert!(semijoin_learn_greedy(&employees(), &offices(), &labels).is_some());
    }

    #[test]
    fn predicate_consistency_checks_both_directions() {
        let labels = vec![LabelledTuple::new(0, true), LabelledTuple::new(3, false)];
        let dept_eq = JoinPredicate::from_pairs([(1, 0)]);
        assert!(predicate_consistent(
            &employees(),
            &offices(),
            &labels,
            &dept_eq
        ));
        let empty = JoinPredicate::empty();
        // The empty predicate keeps everyone, violating the negative label.
        assert!(!predicate_consistent(
            &employees(),
            &offices(),
            &labels,
            &empty
        ));
    }
}
