//! Learning equi-join (and natural-join) predicates from labelled tuple pairs.
//!
//! Setting (paper §3): the instance contains two relations; the user labels elements of their
//! cartesian product as positive ("should be in the result of the join I have in mind") or
//! negative. The hypothesis space is the set of equi-join predicates — sets of attribute pairs
//! required to be equal. The paper reports that for this class "testing consistency of a set of
//! positive and negative examples" is tractable; the witness is the **most specific consistent
//! predicate**, i.e. the set of all attribute pairs on which every positive pair agrees:
//!
//! * every consistent predicate is a subset of it (an equality violated by some positive cannot
//!   be required), and
//! * a predicate rejects a negative only if a *superset* of it does, so if the most specific
//!   predicate accepts some negative, every consistent candidate does too.

use crate::model::Relation;
use crate::operators::JoinPredicate;
use std::fmt;

/// A labelled element of the cartesian product, identified by tuple indices in the two
/// relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelledPair {
    /// Index into the left relation's tuple list.
    pub left: usize,
    /// Index into the right relation's tuple list.
    pub right: usize,
    /// `true` if the user wants this pair in the join result.
    pub positive: bool,
}

impl LabelledPair {
    /// Convenience constructor.
    pub fn new(left: usize, right: usize, positive: bool) -> LabelledPair {
        LabelledPair {
            left,
            right,
            positive,
        }
    }
}

/// Error raised when labels reference non-existent tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexError {
    /// Which side was out of range.
    pub side: &'static str,
    /// The offending index.
    pub index: usize,
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} tuple index {} out of range", self.side, self.index)
    }
}

impl std::error::Error for IndexError {}

fn check_indices(
    left: &Relation,
    right: &Relation,
    labels: &[LabelledPair],
) -> Result<(), IndexError> {
    for l in labels {
        if l.left >= left.len() {
            return Err(IndexError {
                side: "left",
                index: l.left,
            });
        }
        if l.right >= right.len() {
            return Err(IndexError {
                side: "right",
                index: l.right,
            });
        }
    }
    Ok(())
}

/// The set of attribute pairs on which a single tuple pair agrees.
pub fn agreement_set(left: &Relation, right: &Relation, l: usize, r: usize) -> JoinPredicate {
    let lt = &left.tuples()[l];
    let rt = &right.tuples()[r];
    let pairs = (0..left.schema().arity()).flat_map(|i| {
        (0..right.schema().arity()).filter_map(move |j| (lt.get(i) == rt.get(j)).then_some((i, j)))
    });
    JoinPredicate::from_pairs(pairs)
}

/// The most specific predicate consistent with the positive examples: every attribute pair on
/// which *all* positive pairs agree. With no positive examples this is the full pair set
/// (the most specific hypothesis of the lattice).
pub fn most_specific_predicate(
    left: &Relation,
    right: &Relation,
    labels: &[LabelledPair],
) -> Result<JoinPredicate, IndexError> {
    check_indices(left, right, labels)?;
    let all_pairs = JoinPredicate::from_pairs(
        (0..left.schema().arity()).flat_map(|i| (0..right.schema().arity()).map(move |j| (i, j))),
    );
    let mut current = all_pairs;
    for l in labels.iter().filter(|l| l.positive) {
        current = current.intersect(&agreement_set(left, right, l.left, l.right));
    }
    Ok(current)
}

/// Outcome of a consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinConsistency {
    /// The examples are consistent; the witness is the most specific consistent predicate.
    Consistent(JoinPredicate),
    /// No equi-join predicate separates the positives from the negatives; the reported pair is a
    /// negative example that every candidate accepts.
    Inconsistent {
        /// Index of an offending negative example in the label list.
        offending_label: usize,
    },
}

impl JoinConsistency {
    /// The witnessing predicate, if consistent.
    pub fn predicate(&self) -> Option<&JoinPredicate> {
        match self {
            JoinConsistency::Consistent(p) => Some(p),
            JoinConsistency::Inconsistent { .. } => None,
        }
    }

    /// Whether the examples are consistent.
    pub fn is_consistent(&self) -> bool {
        matches!(self, JoinConsistency::Consistent(_))
    }
}

/// Polynomial consistency check for equi-join predicates (paper §3: tractable for natural
/// joins).
pub fn join_consistent(
    left: &Relation,
    right: &Relation,
    labels: &[LabelledPair],
) -> Result<JoinConsistency, IndexError> {
    let candidate = most_specific_predicate(left, right, labels)?;
    for (ix, l) in labels.iter().enumerate() {
        if l.positive {
            continue;
        }
        let lt = &left.tuples()[l.left];
        let rt = &right.tuples()[l.right];
        if candidate.satisfied_by(lt, rt) {
            return Ok(JoinConsistency::Inconsistent {
                offending_label: ix,
            });
        }
    }
    Ok(JoinConsistency::Consistent(candidate))
}

/// Learn a join predicate from labels, preferring the most specific consistent one.
pub fn learn_join(
    left: &Relation,
    right: &Relation,
    labels: &[LabelledPair],
) -> Result<Option<JoinPredicate>, IndexError> {
    Ok(join_consistent(left, right, labels)?.predicate().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RelationSchema, Tuple};
    use crate::operators::equi_join;

    fn customers() -> Relation {
        Relation::with_tuples(
            RelationSchema::new("customers", &["cid", "city"]),
            vec![
                Tuple::new(vec![1.into(), "Lille".into()]),
                Tuple::new(vec![2.into(), "Paris".into()]),
                Tuple::new(vec![3.into(), "Lille".into()]),
            ],
        )
    }

    fn orders() -> Relation {
        Relation::with_tuples(
            RelationSchema::new("orders", &["oid", "cid", "city"]),
            vec![
                Tuple::new(vec![10.into(), 1.into(), "Lille".into()]),
                Tuple::new(vec![11.into(), 2.into(), "Lille".into()]),
                Tuple::new(vec![12.into(), 3.into(), "Paris".into()]),
            ],
        )
    }

    #[test]
    fn agreement_set_lists_equal_positions() {
        let a = agreement_set(&customers(), &orders(), 0, 0);
        // cid=1 matches orders.cid=1, and city Lille matches orders.city Lille.
        assert!(a.contains((0, 1)));
        assert!(a.contains((1, 2)));
        assert!(!a.contains((0, 0)));
    }

    #[test]
    fn positives_shrink_the_most_specific_predicate() {
        let labels = vec![LabelledPair::new(0, 0, true), LabelledPair::new(1, 1, true)];
        // Pair (0,0): cid agrees and city agrees. Pair (1,1): cid agrees (2=2) but city differs
        // (Paris vs Lille) -> only the cid equality survives.
        let p = most_specific_predicate(&customers(), &orders(), &labels).unwrap();
        assert!(p.contains((0, 1)));
        assert!(!p.contains((1, 2)));
    }

    #[test]
    fn consistent_labels_yield_a_separating_predicate() {
        let labels = vec![
            LabelledPair::new(0, 0, true),
            LabelledPair::new(1, 1, true),
            LabelledPair::new(2, 0, false), // cid 3 vs orders.cid 1
        ];
        let result = join_consistent(&customers(), &orders(), &labels).unwrap();
        assert!(result.is_consistent());
        let p = result.predicate().unwrap();
        // The learned predicate reproduces the intended cid join on the whole instance.
        let joined = equi_join(&customers(), &orders(), p);
        assert_eq!(joined.len(), 3);
    }

    #[test]
    fn inconsistent_labels_are_detected() {
        // The same pair labelled positive and negative.
        let labels = vec![
            LabelledPair::new(0, 0, true),
            LabelledPair::new(0, 0, false),
        ];
        let result = join_consistent(&customers(), &orders(), &labels).unwrap();
        assert!(!result.is_consistent());
        if let JoinConsistency::Inconsistent { offending_label } = result {
            assert_eq!(offending_label, 1);
        }
    }

    #[test]
    fn negatives_alone_are_always_consistent() {
        let labels = vec![LabelledPair::new(0, 2, false)];
        let result = join_consistent(&customers(), &orders(), &labels).unwrap();
        // With no positives the most specific hypothesis (all pairs) rejects the negative as
        // long as some attribute pair disagrees on it.
        assert!(result.is_consistent());
    }

    #[test]
    fn no_labels_yield_full_predicate() {
        let p = most_specific_predicate(&customers(), &orders(), &[]).unwrap();
        assert_eq!(
            p.len(),
            customers().schema().arity() * orders().schema().arity()
        );
    }

    #[test]
    fn out_of_range_labels_are_reported() {
        let labels = vec![LabelledPair::new(9, 0, true)];
        let err = join_consistent(&customers(), &orders(), &labels).unwrap_err();
        assert_eq!(err.side, "left");
        assert_eq!(err.index, 9);
    }

    #[test]
    fn learned_predicate_is_most_specific() {
        // Only one positive: both the cid and the city equalities hold on it, so the most
        // specific hypothesis keeps both; a single extra positive breaking the city equality
        // removes it.
        let one = vec![LabelledPair::new(0, 0, true)];
        let p1 = learn_join(&customers(), &orders(), &one).unwrap().unwrap();
        assert!(p1.contains((1, 2)));
        let two = vec![LabelledPair::new(0, 0, true), LabelledPair::new(1, 1, true)];
        let p2 = learn_join(&customers(), &orders(), &two).unwrap().unwrap();
        assert!(!p2.contains((1, 2)));
        assert!(p2.subset_of(&p1));
    }
}
