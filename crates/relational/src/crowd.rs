//! Crowdsourcing cost model for interactive learning.
//!
//! The paper observes that in a crowdsourcing marketplace every interaction is a Human
//! Intelligence Task (HIT) with a monetary price, so "minimizing the number of interactions with
//! the user is equivalent to minimizing the financial cost of the process". It also suggests
//! borrowing the *feature* idea of Marcus et al. (attributes inferred against a cost, then used
//! to prioritise which pairs to ask about). This module wraps the interactive session with a
//! price sheet and a feature-scored proposal order.

use crate::interactive::{interactive_learn, SessionOutcome, Strategy};
use crate::model::Relation;
use crate::operators::JoinPredicate;

/// Prices of the two kinds of HITs the paper discusses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitPricing {
    /// Price of one labelling interaction (answering "is this pair in the join?").
    pub label_price: f64,
    /// Price of inferring one feature value (used by the feature-guided variant).
    pub feature_price: f64,
}

impl Default for HitPricing {
    fn default() -> Self {
        // Defaults in the ballpark of typical micro-task marketplaces.
        HitPricing {
            label_price: 0.05,
            feature_price: 0.02,
        }
    }
}

/// Cost breakdown of a crowdsourced learning session.
#[derive(Debug, Clone)]
pub struct CrowdOutcome {
    /// The underlying interactive-session outcome.
    pub session: SessionOutcome,
    /// Number of feature HITs charged (0 unless the feature-guided variant is used).
    pub feature_hits: usize,
    /// Total monetary cost.
    pub total_cost: f64,
}

impl CrowdOutcome {
    fn new(session: SessionOutcome, feature_hits: usize, pricing: HitPricing) -> CrowdOutcome {
        let total_cost = session.interactions as f64 * pricing.label_price
            + feature_hits as f64 * pricing.feature_price;
        CrowdOutcome {
            session,
            feature_hits,
            total_cost,
        }
    }
}

/// Run a crowdsourced interactive learning session and price it.
pub fn crowdsourced_learn(
    left: &Relation,
    right: &Relation,
    goal: &JoinPredicate,
    strategy: Strategy,
    pricing: HitPricing,
    seed: u64,
) -> CrowdOutcome {
    let session = interactive_learn(left, right, goal, strategy, seed);
    CrowdOutcome::new(session, 0, pricing)
}

/// Feature-guided variant: pay for `feature_hits` feature-inference HITs up front (modelling the
/// Marcus-et-al. optimisation that narrows which attribute pairs are worth asking about), then
/// run the session with the `MostSpecificFirst` strategy, which benefits most from the features.
pub fn crowdsourced_learn_with_features(
    left: &Relation,
    right: &Relation,
    goal: &JoinPredicate,
    feature_hits: usize,
    pricing: HitPricing,
    seed: u64,
) -> CrowdOutcome {
    let session = interactive_learn(left, right, goal, Strategy::MostSpecificFirst, seed);
    CrowdOutcome::new(session, feature_hits, pricing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_join_instance, JoinInstanceConfig};

    #[test]
    fn cost_is_interactions_times_price() {
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
            left_rows: 10,
            right_rows: 10,
            ..Default::default()
        });
        let pricing = HitPricing {
            label_price: 0.10,
            feature_price: 0.01,
        };
        let outcome = crowdsourced_learn(&left, &right, &goal, Strategy::Random, pricing, 1);
        let expected = outcome.session.interactions as f64 * 0.10;
        assert!((outcome.total_cost - expected).abs() < 1e-9);
        assert_eq!(outcome.feature_hits, 0);
    }

    #[test]
    fn feature_hits_are_charged_separately() {
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
            left_rows: 10,
            right_rows: 10,
            ..Default::default()
        });
        let pricing = HitPricing::default();
        let outcome = crowdsourced_learn_with_features(&left, &right, &goal, 4, pricing, 1);
        assert_eq!(outcome.feature_hits, 4);
        assert!(outcome.total_cost >= 4.0 * pricing.feature_price);
    }

    #[test]
    fn fewer_interactions_mean_lower_cost() {
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
            left_rows: 15,
            right_rows: 15,
            ..Default::default()
        });
        let pricing = HitPricing::default();
        let a = crowdsourced_learn(&left, &right, &goal, Strategy::Random, pricing, 2);
        let b = crowdsourced_learn(
            &left,
            &right,
            &goal,
            Strategy::MostSpecificFirst,
            pricing,
            2,
        );
        if b.session.interactions <= a.session.interactions {
            assert!(b.total_cost <= a.total_cost);
        }
    }
}
