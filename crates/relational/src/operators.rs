//! Relational operators: cartesian product, equi-join under an explicit predicate, natural join
//! and semijoin — the "join-like operators" whose learnability §3 of the paper studies.

use crate::model::{Relation, RelationSchema, Tuple};
use std::collections::BTreeSet;
use std::fmt;

/// An equi-join predicate: a set of attribute pairs `(left index, right index)` that must be
/// equal. The empty predicate is the cartesian product.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JoinPredicate {
    pairs: BTreeSet<(usize, usize)>,
}

impl JoinPredicate {
    /// The empty predicate (cartesian product).
    pub fn empty() -> JoinPredicate {
        JoinPredicate::default()
    }

    /// Build a predicate from attribute-index pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (usize, usize)>) -> JoinPredicate {
        JoinPredicate {
            pairs: pairs.into_iter().collect(),
        }
    }

    /// Build a predicate from attribute names.
    pub fn from_names(
        left: &RelationSchema,
        right: &RelationSchema,
        pairs: &[(&str, &str)],
    ) -> Option<JoinPredicate> {
        let mut out = BTreeSet::new();
        for (l, r) in pairs {
            out.insert((left.index_of(l)?, right.index_of(r)?));
        }
        Some(JoinPredicate { pairs: out })
    }

    /// The natural-join predicate of two schemas: one pair per common attribute name.
    pub fn natural(left: &RelationSchema, right: &RelationSchema) -> JoinPredicate {
        let pairs = left
            .common_attributes(right)
            .into_iter()
            .map(|a| (left.index_of(&a).unwrap(), right.index_of(&a).unwrap()));
        JoinPredicate::from_pairs(pairs)
    }

    /// The attribute-index pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pairs.iter().copied()
    }

    /// Number of equality constraints.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the predicate is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether the predicate contains a specific pair.
    pub fn contains(&self, pair: (usize, usize)) -> bool {
        self.pairs.contains(&pair)
    }

    /// Whether a pair of tuples satisfies every equality of the predicate.
    pub fn satisfied_by(&self, left: &Tuple, right: &Tuple) -> bool {
        self.pairs.iter().all(|&(l, r)| left.get(l) == right.get(r))
    }

    /// Whether `self ⊆ other` (every equality of `self` is also required by `other`).
    pub fn subset_of(&self, other: &JoinPredicate) -> bool {
        self.pairs.is_subset(&other.pairs)
    }

    /// Intersection of two predicates.
    pub fn intersect(&self, other: &JoinPredicate) -> JoinPredicate {
        JoinPredicate {
            pairs: self.pairs.intersection(&other.pairs).copied().collect(),
        }
    }

    /// Render with attribute names for reporting.
    pub fn describe(&self, left: &RelationSchema, right: &RelationSchema) -> String {
        if self.pairs.is_empty() {
            return "true (cartesian product)".to_string();
        }
        let parts: Vec<String> = self
            .pairs
            .iter()
            .map(|&(l, r)| {
                format!(
                    "{}.{} = {}.{}",
                    left.name(),
                    left.attributes()[l],
                    right.name(),
                    right.attributes()[r]
                )
            })
            .collect();
        parts.join(" AND ")
    }
}

impl fmt::Display for JoinPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pairs.is_empty() {
            return write!(f, "true");
        }
        let parts: Vec<String> = self
            .pairs
            .iter()
            .map(|(l, r)| format!("L.{l} = R.{r}"))
            .collect();
        write!(f, "{}", parts.join(" ∧ "))
    }
}

/// Cartesian product of two relations.
pub fn cartesian_product(left: &Relation, right: &Relation) -> Relation {
    equi_join(left, right, &JoinPredicate::empty())
}

/// Equi-join under an explicit predicate; the result schema concatenates the attribute lists,
/// prefixing each attribute with its relation name to keep names distinct.
pub fn equi_join(left: &Relation, right: &Relation, predicate: &JoinPredicate) -> Relation {
    let attributes: Vec<String> = left
        .schema()
        .attributes()
        .iter()
        .map(|a| format!("{}.{}", left.schema().name(), a))
        .chain(
            right
                .schema()
                .attributes()
                .iter()
                .map(|a| format!("{}.{}", right.schema().name(), a)),
        )
        .collect();
    let attr_refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
    let schema = RelationSchema::new(
        format!("{}_{}", left.schema().name(), right.schema().name()),
        &attr_refs,
    );
    let mut out = Relation::new(schema);
    for l in left.tuples() {
        for r in right.tuples() {
            if predicate.satisfied_by(l, r) {
                out.insert(l.concat(r));
            }
        }
    }
    out
}

/// Natural join: equi-join on all common attribute names, keeping the classical merged schema
/// (shared attributes appear once).
pub fn natural_join(left: &Relation, right: &Relation) -> Relation {
    let predicate = JoinPredicate::natural(left.schema(), right.schema());
    let common: BTreeSet<usize> = predicate.pairs().map(|(_, r)| r).collect();
    let attributes: Vec<String> = left
        .schema()
        .attributes()
        .iter()
        .cloned()
        .chain(
            right
                .schema()
                .attributes()
                .iter()
                .enumerate()
                .filter(|(ix, _)| !common.contains(ix))
                .map(|(_, a)| a.clone()),
        )
        .collect();
    let attr_refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
    let schema = RelationSchema::new(
        format!("{}_{}", left.schema().name(), right.schema().name()),
        &attr_refs,
    );
    let kept_right: Vec<usize> = (0..right.schema().arity())
        .filter(|ix| !common.contains(ix))
        .collect();
    let mut out = Relation::new(schema);
    for l in left.tuples() {
        for r in right.tuples() {
            if predicate.satisfied_by(l, r) {
                out.insert(l.concat(&r.project(&kept_right)));
            }
        }
    }
    out
}

/// Semijoin `left ⋉θ right`: the tuples of `left` that have at least one θ-partner in `right`.
pub fn semijoin(left: &Relation, right: &Relation, predicate: &JoinPredicate) -> Relation {
    let mut out = Relation::new(left.schema().clone());
    for l in left.tuples() {
        if right.tuples().iter().any(|r| predicate.satisfied_by(l, r)) {
            out.insert(l.clone());
        }
    }
    out
}

/// Selection by an arbitrary tuple predicate.
pub fn select<F: Fn(&Tuple) -> bool>(relation: &Relation, keep: F) -> Relation {
    let mut out = Relation::new(relation.schema().clone());
    for t in relation.tuples() {
        if keep(t) {
            out.insert(t.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Value;

    fn customers() -> Relation {
        Relation::with_tuples(
            RelationSchema::new("customers", &["cid", "name", "city"]),
            vec![
                Tuple::new(vec![1.into(), "Alice".into(), "Lille".into()]),
                Tuple::new(vec![2.into(), "Bob".into(), "Paris".into()]),
                Tuple::new(vec![3.into(), "Carla".into(), "Lille".into()]),
            ],
        )
    }

    fn orders() -> Relation {
        Relation::with_tuples(
            RelationSchema::new("orders", &["oid", "cid", "amount"]),
            vec![
                Tuple::new(vec![10.into(), 1.into(), 99.into()]),
                Tuple::new(vec![11.into(), 1.into(), 5.into()]),
                Tuple::new(vec![12.into(), 3.into(), 42.into()]),
            ],
        )
    }

    #[test]
    fn cartesian_product_has_all_pairs() {
        let p = cartesian_product(&customers(), &orders());
        assert_eq!(p.len(), 9);
        assert_eq!(p.schema().arity(), 6);
    }

    #[test]
    fn equi_join_respects_predicate() {
        let pred =
            JoinPredicate::from_names(customers().schema(), orders().schema(), &[("cid", "cid")])
                .unwrap();
        let j = equi_join(&customers(), &orders(), &pred);
        assert_eq!(j.len(), 3);
        for t in j.tuples() {
            assert_eq!(t.get(0), t.get(4), "cid columns must agree");
        }
    }

    #[test]
    fn natural_join_merges_common_attributes() {
        let j = natural_join(&customers(), &orders());
        // cid is shared: schema is cid,name,city,oid,amount
        assert_eq!(j.schema().arity(), 5);
        assert_eq!(j.len(), 3);
        assert!(j.schema().index_of("amount").is_some());
    }

    #[test]
    fn natural_join_without_common_attributes_is_a_product() {
        let colours = Relation::with_tuples(
            RelationSchema::new("colours", &["colour"]),
            vec![
                Tuple::new(vec!["red".into()]),
                Tuple::new(vec!["blue".into()]),
            ],
        );
        let j = natural_join(&customers(), &colours);
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn semijoin_keeps_matching_left_tuples_once() {
        let pred =
            JoinPredicate::from_names(customers().schema(), orders().schema(), &[("cid", "cid")])
                .unwrap();
        let s = semijoin(&customers(), &orders(), &pred);
        // Alice has two orders but appears once; Bob has none.
        assert_eq!(s.len(), 2);
        assert!(s.tuples().iter().all(|t| t.get(1) != &Value::text("Bob")));
        assert_eq!(s.schema(), customers().schema());
    }

    #[test]
    fn empty_predicate_semijoin_keeps_everything_when_right_nonempty() {
        let s = semijoin(&customers(), &orders(), &JoinPredicate::empty());
        assert_eq!(s.len(), customers().len());
        let empty_right = Relation::new(orders().schema().clone());
        let s2 = semijoin(&customers(), &empty_right, &JoinPredicate::empty());
        assert!(s2.is_empty());
    }

    #[test]
    fn predicate_subset_and_intersection() {
        let a = JoinPredicate::from_pairs([(0, 1), (1, 2)]);
        let b = JoinPredicate::from_pairs([(0, 1)]);
        assert!(b.subset_of(&a));
        assert!(!a.subset_of(&b));
        assert_eq!(a.intersect(&b), b);
    }

    #[test]
    fn predicate_describe_uses_attribute_names() {
        let pred =
            JoinPredicate::from_names(customers().schema(), orders().schema(), &[("cid", "cid")])
                .unwrap();
        assert_eq!(
            pred.describe(customers().schema(), orders().schema()),
            "customers.cid = orders.cid"
        );
    }

    #[test]
    fn selection_filters_tuples() {
        let lille = select(&customers(), |t| t.get(2) == &Value::text("Lille"));
        assert_eq!(lille.len(), 2);
    }

    #[test]
    fn natural_predicate_detects_shared_names() {
        let pred = JoinPredicate::natural(customers().schema(), orders().schema());
        assert_eq!(pred.len(), 1);
        assert!(pred.contains((0, 1)));
    }
}
