//! placeholder
