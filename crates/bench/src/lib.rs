//! Shared plumbing for the `exp_*` experiment binaries and criterion benches.
//!
//! Every experiment binary supports `--smoke` (or the `QBE_BENCH_SMOKE=1`
//! environment variable): a drastically shrunk workload that exercises the
//! same code paths in well under a second, so CI can run the whole experiment
//! suite on every push and the binaries cannot silently rot.

/// Whether the current invocation asked for the smoke (CI-sized) workload,
/// either via a `--smoke` argument or the `QBE_BENCH_SMOKE` environment
/// variable (any value but `0`).
pub fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var_os("QBE_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Picks the experiment's full-size parameter normally and the shrunk one
/// under [`smoke`]. Works for scalars, arrays and vecs alike:
///
/// ```
/// let rows = qbe_bench::param(vec![50usize, 100, 200], vec![10]);
/// let scale = qbe_bench::param(0.1, 0.02);
/// ```
pub fn param<T>(full: T, smoke_sized: T) -> T {
    if smoke() {
        smoke_sized
    } else {
        full
    }
}

#[cfg(test)]
mod tests {
    // `smoke()` reads process-global state (env + args), so the two regimes
    // are exercised in a spawned child rather than by mutating the test's own
    // environment.
    #[test]
    fn smoke_env_controls_param_choice() {
        // libtest rejects unknown `--` flags, so the child is driven through
        // the environment variable rather than the `--smoke` argument.
        let out = std::process::Command::new(std::env::current_exe().unwrap())
            .args(["tests::child_sees_smoke", "--exact", "--nocapture"])
            .env("QBE_BENCH_SMOKE", "1")
            .output()
            .expect("re-running the test binary works");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    #[test]
    fn child_sees_smoke() {
        // Only meaningful when spawned with QBE_BENCH_SMOKE=1 by
        // smoke_env_controls_param_choice; standalone (no flag, no env) it
        // checks the full-size branch instead.
        if super::smoke() {
            assert_eq!(super::param(1, 2), 2);
        } else {
            assert_eq!(super::param(1, 2), 1);
        }
    }
}
