//! Experiment E13 — why the paper rejects full SPARQL as a learning target: pattern evaluation
//! cost grows with OPTIONAL nesting (PSPACE-complete in general, coNP-complete for well-designed
//! patterns), while the learnable path-query fragment stays cheap.
//!
//! The table evaluates, on geographical graphs of growing size: (i) a regular path query, (ii) a
//! well-designed BGP+OPTIONAL pattern, and (iii) a non-well-designed pattern of the Pérez et al.
//! shape, reporting answer counts and evaluation time. The well-designedness check itself is also
//! reported for each pattern.
//!
//! Regenerate with `cargo run -p qbe-bench --bin exp_sparql`.

use std::time::Instant;

use qbe_graph::{
    evaluate, generate_geo_graph, is_well_designed, Constraint, GeoConfig, GraphPattern, PathRegex,
    PredTerm, Term,
};

fn road(from: &str, to: &str) -> GraphPattern {
    GraphPattern::triple(Term::var(from), PredTerm::label("road"), Term::var(to))
}

fn main() {
    println!("E13 — SPARQL-style pattern evaluation vs the learnable path-query fragment\n");

    // The three queries under comparison.
    let rpq = PathRegex::Concat(vec![
        PathRegex::label("road"),
        PathRegex::Star(Box::new(PathRegex::label("road"))),
    ]);
    let well_designed = road("x", "y")
        .optional(road("y", "z"))
        .filter(Constraint::Bound("x".to_string()));
    let non_well_designed = {
        // (P1 OPT P2) AND P3 with a variable shared by P2 and P3 but absent from P1.
        let p1 = road("x", "y");
        let p2 = road("x", "z");
        let p3 = road("z", "w");
        p1.optional(p2).and(p3)
    };
    println!(
        "well-designed? pattern A (BGP+OPT+FILTER): {}",
        is_well_designed(&well_designed)
    );
    println!(
        "well-designed? pattern B (Pérez et al. counterexample): {}\n",
        is_well_designed(&non_well_designed)
    );

    println!(
        "{:<8} {:>7} {:>14} {:>12} {:>16} {:>12} {:>18} {:>12}",
        "cities",
        "edges",
        "RPQ answers",
        "RPQ (µs)",
        "pattern A sols",
        "A (µs)",
        "pattern B sols",
        "B (µs)"
    );
    for cities in qbe_bench::param(vec![10usize, 20, 30, 40], vec![10]) {
        let graph = generate_geo_graph(&GeoConfig {
            cities,
            ..Default::default()
        });

        let t0 = Instant::now();
        let rpq_answers = evaluate(&graph, &rpq).len();
        let rpq_us = t0.elapsed().as_micros();

        let t1 = Instant::now();
        let a_solutions = qbe_graph::evaluate_pattern(&graph, &well_designed).len();
        let a_us = t1.elapsed().as_micros();

        let t2 = Instant::now();
        let b_solutions = qbe_graph::evaluate_pattern(&graph, &non_well_designed).len();
        let b_us = t2.elapsed().as_micros();

        println!(
            "{:<8} {:>7} {:>14} {:>12} {:>16} {:>12} {:>18} {:>12}",
            cities,
            graph.edge_count(),
            rpq_answers,
            rpq_us,
            a_solutions,
            a_us,
            b_solutions,
            b_us
        );
    }

    println!(
        "\nreading: the RPQ fragment (what the path-query learner of E10 targets) stays cheap and \
         its answers are endpoint pairs a user can label; the general pattern algebra grows much \
         faster with graph size and OPTIONAL nesting, matching the complexity gap the paper cites \
         (PSPACE-complete in general, coNP-complete when well-designed)."
    );
}
