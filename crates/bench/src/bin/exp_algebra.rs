//! exp_algebra — the algebra-engine snapshot behind `BENCH_PR6.json`.
//!
//! Measures the three claims the PR 6 query algebra makes, over the typed road view of a
//! geographical graph:
//!
//! * **per-class session wall p50/p95** — full goal-driven interactive [`QuerySession`]s for
//!   each query class (RPQ / 2RPQ / CRPQ), halving strategy;
//! * **cross-candidate CSE** — evaluating the whole candidate pool through one shared
//!   [`EvalCache`] versus a fresh cache per candidate (what hash-consing buys: shared
//!   subexpressions are computed once per pool, not once per candidate);
//! * **optimizer effect** — smart-constructor/rewrite normalisation versus raw interning on
//!   deliberately redundant expressions (size and evaluation wall).
//!
//! The numbers go to stdout as tables and to a JSON snapshot (default `BENCH_PR6.json`,
//! override with `--out <path>`). `--smoke` (or `QBE_BENCH_SMOKE=1`) shrinks everything to CI
//! size — same code paths, seconds of runtime — and is exercised by `exp_smoke` and CI.

use qbe_core::algebra::{eval_expr, EvalCache, Expr, ExprId, QueryStore};
use qbe_core::graph::{
    enumerate_candidates, eval_conj_tuples, eval_expr_pairs, generate_geo_graph, typed_road_view,
    GNodeId, GeoConfig, GoalPairsOracle, GraphIndex, PropertyGraph, QueryClass, QuerySession,
};
use qbe_core::workload::percentile_sorted;
use std::collections::BTreeSet;
use std::time::Instant;

/// One query class's session-workload row.
struct ClassRow {
    class: QueryClass,
    candidates: usize,
    p50_ms: f64,
    p95_ms: f64,
    questions_p50: usize,
}

fn percentiles_ms(mut wall_us: Vec<usize>) -> (f64, f64) {
    wall_us.sort_unstable();
    let p50 = percentile_sorted(&wall_us, 50.0).unwrap_or(0) as f64 / 1000.0;
    let p95 = percentile_sorted(&wall_us, 95.0).unwrap_or(0) as f64 / 1000.0;
    (p50, p95)
}

/// The demo goal for a class: a query inside the class's candidate pool, so every session can
/// converge exactly (mirrors `qbe-server`'s simulated clients).
fn goal_pairs(
    typed: &PropertyGraph,
    index: &GraphIndex,
    class: QueryClass,
) -> BTreeSet<(GNodeId, GNodeId)> {
    let alphabet = typed.edge_alphabet();
    let mut store = QueryStore::new();
    let mut cache = EvalCache::new();
    match class {
        QueryClass::Rpq => {
            let l = store.label(&alphabet[0]);
            let q = store.plus(l);
            eval_expr_pairs(index, &store, &mut cache, q)
        }
        QueryClass::TwoRpq => {
            let l = store.label(&alphabet[0]);
            let inv = store.inv_label(&alphabet[0]);
            let q = store.concat([l, inv]);
            eval_expr_pairs(index, &store, &mut cache, q)
        }
        QueryClass::Crpq => {
            let a = store.label(&alphabet[0]);
            let b = store.label(&alphabet[1 % alphabet.len()]);
            let x = store.sym("x");
            let y = store.sym("y");
            let q = qbe_core::algebra::ConjQuery::new(
                vec![
                    qbe_core::algebra::PathAtom {
                        subject: qbe_core::algebra::Term::Var(x),
                        expr: a,
                        object: qbe_core::algebra::Term::Var(y),
                    },
                    qbe_core::algebra::PathAtom {
                        subject: qbe_core::algebra::Term::Var(x),
                        expr: b,
                        object: qbe_core::algebra::Term::Var(y),
                    },
                ],
                vec![x, y],
            );
            eval_conj_tuples(index, &store, &mut cache, &q)
                .into_iter()
                .map(|t| (t[0], t[1]))
                .collect()
        }
    }
}

fn class_row(
    typed: &PropertyGraph,
    index: &GraphIndex,
    class: QueryClass,
    sessions: usize,
) -> ClassRow {
    let goal = goal_pairs(typed, index, class);
    assert!(
        !goal.is_empty(),
        "{}: demo goal is non-trivial",
        class.wire_name()
    );
    let mut wall_us = Vec::with_capacity(sessions);
    let mut questions = Vec::with_capacity(sessions);
    let mut candidates = 0;
    for seed in 0..sessions as u64 {
        let session = QuerySession::new(typed, class, seed);
        candidates = session.candidate_count();
        let mut oracle = GoalPairsOracle::new(goal.clone());
        let start = Instant::now();
        let outcome = session.run(&mut oracle);
        wall_us.push(start.elapsed().as_micros() as usize);
        questions.push(outcome.interactions);
        assert_eq!(
            outcome.learned_pairs,
            goal,
            "{}: the session converges to the goal",
            class.wire_name()
        );
    }
    questions.sort_unstable();
    let questions_p50 = percentile_sorted(&questions, 50.0).unwrap_or(0);
    let (p50_ms, p95_ms) = percentiles_ms(wall_us);
    ClassRow {
        class,
        candidates,
        p50_ms,
        p95_ms,
        questions_p50,
    }
}

/// Cross-candidate CSE: the 2RPQ pool — plus its depth-2 frontier `(a)+/(b)+`, where the
/// expensive transitive closures recur across many candidates — evaluated through the bitset
/// kernels with one shared cache versus a fresh cache per candidate.
/// Returns (pooled_ms, fresh_ms, pooled_misses, fresh_misses, pool_size).
fn cse_comparison(
    typed: &PropertyGraph,
    index: &GraphIndex,
    iters: usize,
) -> (f64, f64, usize, usize, usize) {
    let alphabet = typed.edge_alphabet();
    let mut store = QueryStore::new();
    let base = enumerate_candidates(&mut store, QueryClass::TwoRpq, &alphabet);
    let mut pool: Vec<ExprId> = base
        .iter()
        .filter_map(|c| match c {
            qbe_core::graph::CandidateQuery::Path(e) => Some(*e),
            qbe_core::graph::CandidateQuery::Conj(_) => None,
        })
        .collect();
    let mut atoms: Vec<_> = alphabet.iter().map(|l| store.label(l)).collect();
    for l in &alphabet {
        let inv = store.inv_label(l);
        atoms.push(inv);
    }
    for &a in &atoms {
        for &b in &atoms {
            let plus_a = store.plus(a);
            let plus_b = store.plus(b);
            pool.push(store.concat([plus_a, plus_b]));
        }
    }

    let mut pooled_misses = 0;
    let mut pooled_pairs = 0;
    let start = Instant::now();
    for _ in 0..iters {
        let mut shared: EvalCache<GNodeId> = EvalCache::new();
        pooled_pairs = pool
            .iter()
            .map(|&e| eval_expr(&store, index, &mut shared, e).len())
            .sum();
        pooled_misses = shared.misses();
    }
    let pooled_ms = start.elapsed().as_secs_f64() * 1000.0 / iters as f64;

    let mut fresh_misses = 0;
    let mut fresh_pairs = 0;
    let start = Instant::now();
    for _ in 0..iters {
        fresh_misses = 0;
        fresh_pairs = 0;
        for &e in &pool {
            let mut fresh: EvalCache<GNodeId> = EvalCache::new();
            fresh_pairs += eval_expr(&store, index, &mut fresh, e).len();
            fresh_misses += fresh.misses();
        }
    }
    let fresh_ms = start.elapsed().as_secs_f64() * 1000.0 / iters as f64;
    assert_eq!(pooled_pairs, fresh_pairs, "sharing must not change answers");

    (pooled_ms, fresh_ms, pooled_misses, fresh_misses, pool.len())
}

/// Optimizer effect: deliberately redundant expressions, interned raw (no rewrites) versus
/// through the smart constructors + `optimize`. Returns
/// (raw_size, optimized_size, raw_ms, optimized_ms).
fn optimizer_comparison(
    typed: &PropertyGraph,
    index: &GraphIndex,
    iters: usize,
) -> (usize, usize, f64, f64) {
    let alphabet = typed.edge_alphabet();
    let mut store = QueryStore::new();
    // `((a*)*)/((b|b))/((c)?)?` per label rotation: nested stars collapse, duplicate
    // alternatives fold, nested optionals flatten.
    let mut raw_exprs = Vec::new();
    for (ix, label) in alphabet.iter().enumerate() {
        let a = store.label(label);
        let b = store.label(&alphabet[(ix + 1) % alphabet.len()]);
        let c = store.label(&alphabet[(ix + 2) % alphabet.len()]);
        let star_a = store.intern_raw(Expr::Star(a));
        let star_star_a = store.intern_raw(Expr::Star(star_a));
        let dup_alt = store.intern_raw(Expr::Alt(vec![b, b]));
        let opt_c = store.intern_raw(Expr::Opt(c));
        let opt_opt_c = store.intern_raw(Expr::Opt(opt_c));
        raw_exprs.push(store.intern_raw(Expr::Concat(vec![star_star_a, dup_alt, opt_opt_c])));
    }
    let optimized: Vec<_> = raw_exprs.iter().map(|&e| store.optimize(e)).collect();
    let raw_size: usize = raw_exprs.iter().map(|&e| store.size(e)).sum();
    let optimized_size: usize = optimized.iter().map(|&e| store.size(e)).sum();

    let wall = |exprs: &[qbe_core::algebra::ExprId]| {
        let start = Instant::now();
        for _ in 0..iters {
            let mut cache: EvalCache<GNodeId> = EvalCache::new();
            for &e in exprs {
                let pairs = eval_expr_pairs(index, &store, &mut cache, e);
                assert!(!pairs.is_empty(), "redundant queries still reach pairs");
            }
        }
        start.elapsed().as_secs_f64() * 1000.0 / iters as f64
    };
    let raw_ms = wall(&raw_exprs);
    let optimized_ms = wall(&optimized);
    for (&r, &o) in raw_exprs.iter().zip(&optimized) {
        let mut c1: EvalCache<GNodeId> = EvalCache::new();
        let mut c2: EvalCache<GNodeId> = EvalCache::new();
        assert_eq!(
            eval_expr_pairs(index, &store, &mut c1, r),
            eval_expr_pairs(index, &store, &mut c2, o),
            "the optimizer preserves semantics"
        );
    }
    (raw_size, optimized_size, raw_ms, optimized_ms)
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    cities: usize,
    sessions: usize,
    rows: &[ClassRow],
    cse: (f64, f64, usize, usize, usize),
    opt: (usize, usize, f64, f64),
) -> String {
    // Hand-rolled JSON: keys are fixed identifiers, values numeric — nothing needs escaping.
    let (pooled_ms, fresh_ms, pooled_misses, fresh_misses, pool_size) = cse;
    let (raw_size, optimized_size, raw_ms, optimized_ms) = opt;
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"cities\": {cities},\n"));
    out.push_str(&format!("  \"sessions_per_class\": {sessions},\n"));
    out.push_str("  \"classes\": {\n");
    for (ix, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"candidates\": {}, \"session_wall_ms_p50\": {:.3}, \"session_wall_ms_p95\": {:.3}, \"questions_p50\": {}}}{}\n",
            row.class.wire_name(),
            row.candidates,
            row.p50_ms,
            row.p95_ms,
            row.questions_p50,
            if ix + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"cse\": {{\"pool\": {}, \"pooled_wall_ms\": {:.3}, \"fresh_wall_ms\": {:.3}, \"speedup\": {:.2}, \"pooled_misses\": {}, \"fresh_misses\": {}}},\n",
        pool_size,
        pooled_ms,
        fresh_ms,
        fresh_ms / pooled_ms,
        pooled_misses,
        fresh_misses
    ));
    out.push_str(&format!(
        "  \"optimizer\": {{\"raw_size\": {}, \"optimized_size\": {}, \"raw_wall_ms\": {:.3}, \"optimized_wall_ms\": {:.3}}}\n",
        raw_size, optimized_size, raw_ms, optimized_ms
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let smoke = qbe_bench::smoke();
    let cities = qbe_bench::param(128usize, 12);
    let sessions = qbe_bench::param(20usize, 3);
    let iters = qbe_bench::param(50usize, 3);

    let graph = generate_geo_graph(&GeoConfig {
        cities,
        connectivity: 3,
        ..Default::default()
    });
    let typed = typed_road_view(&graph);
    let index = GraphIndex::build(&typed);

    let rows: Vec<ClassRow> = QueryClass::ALL
        .into_iter()
        .map(|class| class_row(&typed, &index, class, sessions))
        .collect();

    println!("# exp_algebra — query-class sessions, cross-candidate CSE, optimizer effect");
    println!(
        "# {cities} cities, {sessions} sessions/class, {iters} pool iterations{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<6} {:>10} {:>16} {:>16} {:>14}",
        "class", "pool", "wall p50 (ms)", "wall p95 (ms)", "questions p50"
    );
    for row in &rows {
        println!(
            "{:<6} {:>10} {:>16.3} {:>16.3} {:>14}",
            row.class.wire_name(),
            row.candidates,
            row.p50_ms,
            row.p95_ms,
            row.questions_p50
        );
    }

    let cse = cse_comparison(&typed, &index, iters);
    let (pooled_ms, fresh_ms, pooled_misses, fresh_misses, pool_size) = cse;
    println!();
    println!("# cross-candidate CSE over the 2RPQ pool ({pool_size} candidates)");
    println!("{:<24} {:>14} {:>10}", "evaluation", "wall (ms)", "misses");
    println!(
        "{:<24} {:>14.3} {:>10}",
        "shared cache (pooled)", pooled_ms, pooled_misses
    );
    println!(
        "{:<24} {:>14.3} {:>10}",
        "fresh cache/candidate", fresh_ms, fresh_misses
    );
    println!("speedup: {:.2}x", fresh_ms / pooled_ms);
    assert!(
        fresh_ms > pooled_ms,
        "sharing the cache must not be slower than recomputing"
    );

    let opt = optimizer_comparison(&typed, &index, iters);
    let (raw_size, optimized_size, raw_ms, optimized_ms) = opt;
    println!();
    println!("# optimizer effect on deliberately redundant expressions");
    println!("{:<12} {:>10} {:>14}", "pipeline", "size", "wall (ms)");
    println!("{:<12} {:>10} {:>14.3}", "raw", raw_size, raw_ms);
    println!(
        "{:<12} {:>10} {:>14.3}",
        "optimized", optimized_size, optimized_ms
    );
    assert!(
        optimized_size < raw_size,
        "rewrites must shrink the redundant expressions"
    );

    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|ix| args.get(ix + 1).cloned())
            .unwrap_or_else(|| "BENCH_PR6.json".to_string())
    };
    let json = render_json(smoke, cities, sessions, &rows, cse, opt);
    std::fs::write(&out_path, json).expect("snapshot file is writable");
    println!("snapshot written to {out_path}");
}
