//! Experiment E8 — consistency checking for relational query learning: natural/equi-joins are
//! tractable (PTIME), semijoins are not (the exact check enumerates predicate subsets).
//!
//! The table measures both checks on instances of growing arity (the exponent of the semijoin
//! search space) and growing size, using labels produced by a hidden goal. The greedy
//! polynomial semijoin heuristic is included to show the practical escape hatch.
//!
//! Regenerate with `cargo run -p qbe-bench --bin exp_relational_consistency`.

use std::time::Instant;

use qbe_relational::{
    generate_join_instance, join_consistent, semijoin_consistent_exact, semijoin_learn_greedy,
    JoinInstanceConfig, LabelledPair, LabelledTuple,
};

fn main() {
    println!("E8 — join vs semijoin consistency checking");
    println!(
        "{:<8} {:<8} {:>12} {:>16} {:>20} {:>18}",
        "arity", "rows", "pairs 2^n", "join (µs)", "semijoin exact (µs)", "semijoin greedy (µs)"
    );
    // The exact semijoin search enumerates subsets of the attribute-pair lattice and is capped at
    // 24 pairs (arity 4 × 4 here); the growth from arity 1 to 4 already spans five orders of
    // magnitude, which is the paper's tractable-vs-intractable contrast.
    for extra in qbe_bench::param(vec![0usize, 1, 2, 3], vec![0, 1]) {
        let rows = 30;
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
            left_rows: rows,
            right_rows: rows,
            extra_attributes: extra,
            domain_size: 6,
            seed: extra as u64 + 1,
        });
        let arity = left.schema().arity();
        let pair_space = 1u64 << (left.schema().arity() * right.schema().arity());

        // Join labels: a sample of tuple pairs labelled by the goal.
        let pair_labels: Vec<LabelledPair> = (0..rows)
            .map(|i| {
                let l = i % left.len();
                let r = (i * 3 + 1) % right.len();
                LabelledPair::new(
                    l,
                    r,
                    goal.satisfied_by(&left.tuples()[l], &right.tuples()[r]),
                )
            })
            .collect();
        let t0 = Instant::now();
        let join_result = join_consistent(&left, &right, &pair_labels).unwrap();
        let join_time = t0.elapsed().as_micros();
        assert!(join_result.is_consistent());

        // Semijoin labels: each left tuple labelled by whether the goal gives it a partner.
        let tuple_labels: Vec<LabelledTuple> = (0..left.len())
            .map(|i| {
                let has_partner = right
                    .tuples()
                    .iter()
                    .any(|r| goal.satisfied_by(&left.tuples()[i], r));
                LabelledTuple::new(i, has_partner)
            })
            .collect();
        let t1 = Instant::now();
        let exact = semijoin_consistent_exact(&left, &right, &tuple_labels);
        let exact_time = t1.elapsed().as_micros();
        assert!(exact.is_some());

        let t2 = Instant::now();
        let _ = semijoin_learn_greedy(&left, &right, &tuple_labels);
        let greedy_time = t2.elapsed().as_micros();

        println!(
            "{:<8} {:<8} {:>12} {:>16} {:>20} {:>18}",
            arity, rows, pair_space, join_time, exact_time, greedy_time
        );
    }

    println!("\njoin consistency as the instance grows (arity fixed at 3):");
    println!("{:<10} {:>16}", "rows", "join (µs)");
    for rows in qbe_bench::param(vec![50usize, 100, 200, 400, 800], vec![50, 100]) {
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
            left_rows: rows,
            right_rows: rows,
            extra_attributes: 2,
            domain_size: 8,
            seed: 11,
        });
        let labels: Vec<LabelledPair> = (0..rows)
            .map(|i| {
                let l = i % left.len();
                let r = (i * 7 + 3) % right.len();
                LabelledPair::new(
                    l,
                    r,
                    goal.satisfied_by(&left.tuples()[l], &right.tuples()[r]),
                )
            })
            .collect();
        let t = Instant::now();
        let _ = join_consistent(&left, &right, &labels).unwrap();
        println!("{:<10} {:>16}", rows, t.elapsed().as_micros());
    }
}
