//! Experiment W1 — concurrent multi-user session workload over shared indexes.
//!
//! The paper's experiments measure one interactive session at a time; this experiment drives a
//! mixed fleet of sessions — twig learning on a shared XMark document, path learning on a
//! shared geographical graph, join learning on a shared relational instance — concurrently
//! through `qbe_core::workload::SessionPool`. Every session is an
//! `qbe_core::session::InteractiveLearner` with an embedded goal oracle, driven by the pool's
//! one generic loop (`qbe_core::session::drive`) — the same trait objects the `qbe-server`
//! registry serves over TCP. All twig sessions share a single `Arc`'d corpus and `NodeIndex`;
//! scheduling is shortest-expected-questions first.
//!
//! The table reports one row per session (questions asked, labels inferred, per-session wall
//! time) plus the aggregate workload metrics (throughput, p50/p95 questions). The run aborts if
//! the aggregates do not reconcile with the per-session rows, so CI's `--smoke` invocation
//! doubles as a correctness check of the metrics plumbing.
//!
//! Regenerate with `cargo run --release -p qbe-bench --bin exp_workload`.

use std::sync::Arc;

use qbe_core::graph::{
    generate_geo_graph, interactive::PathConstraint, interactive::PathStrategy, GeoConfig,
    PropertyGraph,
};
use qbe_core::relational::{generate_join_instance, JoinInstanceConfig, Strategy};
use qbe_core::twig::{parse_xpath, NodeStrategy};
use qbe_core::workload::SessionPool;
use qbe_core::xml::xmark::{generate, XmarkConfig};
use qbe_core::xml::{NodeIndex, XmlTree};
use qbe_core::{JoinInteractive, PathInteractive, TwigInteractive};

fn push_twig(
    pool: &mut SessionPool,
    docs: &Arc<Vec<XmlTree>>,
    indexes: &Arc<Vec<NodeIndex>>,
    goal: &str,
    strategy: NodeStrategy,
    seed: u64,
) {
    let goal_query = parse_xpath(goal).expect("goal parses");
    // Estimate: the goal's selectivity drives how many positives the session must see.
    let expected = docs
        .iter()
        .zip(indexes.iter())
        .map(|(d, ix)| qbe_core::twig::eval_indexed::count(&goal_query, d, ix))
        .sum::<usize>()
        * 2
        + 8;
    let (docs, indexes) = (docs.clone(), indexes.clone());
    pool.push_learner(format!("twig {goal} {strategy:?}"), expected, move || {
        Box::new(TwigInteractive::with_shared(docs, indexes, strategy, seed).with_goal(goal_query))
    });
}

fn push_path(pool: &mut SessionPool, graph: &Arc<PropertyGraph>, goal_type: &str, seed: u64) {
    let goal = PathConstraint {
        road_type: Some(goal_type.to_string()),
        max_distance: None,
        via: None,
    };
    let graph = graph.clone();
    pool.push_learner(
        format!("path type={goal_type} seed={seed}"),
        24,
        move || {
            let from = graph
                .find_node_by_property("name", "city0")
                .expect("generator names cities");
            let to = graph
                .find_node_by_property("name", "city5")
                .expect("generator names cities");
            Box::new(
                PathInteractive::new(graph, from, to, 8, PathStrategy::Halving, seed)
                    .with_goal(goal),
            )
        },
    );
}

fn push_join(pool: &mut SessionPool, rows: usize, seed: u64) {
    pool.push_learner(format!("join rows={rows} seed={seed}"), 30, move || {
        // Generated on the worker thread, like a tenant loading their own instance.
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
            left_rows: rows,
            right_rows: rows,
            extra_attributes: 2,
            domain_size: 6,
            seed,
        });
        Box::new(
            JoinInteractive::new(
                Arc::new(left),
                Arc::new(right),
                Strategy::HalveLattice,
                seed,
            )
            .with_goal(goal),
        )
    });
}

fn main() {
    let scale = qbe_bench::param(0.05, 0.008);
    let twig_seeds: Vec<u64> = qbe_bench::param(vec![1, 2, 3], vec![1]);
    let docs = Arc::new(vec![generate(&XmarkConfig::new(scale, 7))]);
    let indexes: Arc<Vec<NodeIndex>> = Arc::new(docs.iter().map(NodeIndex::build).collect());
    let graph = Arc::new(generate_geo_graph(&GeoConfig {
        cities: qbe_bench::param(16, 10),
        connectivity: 3,
        ..Default::default()
    }));

    let mut pool = SessionPool::new();
    for &seed in &twig_seeds {
        for (goal, strategy) in [
            ("//person/name", NodeStrategy::LabelAffinity),
            ("//item/name", NodeStrategy::LabelAffinity),
            ("//open_auction", NodeStrategy::ShallowFirst),
        ] {
            push_twig(&mut pool, &docs, &indexes, goal, strategy, seed);
        }
    }
    for seed in qbe_bench::param(vec![11u64, 12, 13, 14], vec![11, 12, 13]) {
        push_path(&mut pool, &graph, "highway", seed);
    }
    for seed in qbe_bench::param(vec![21u64, 22, 23], vec![21, 22]) {
        push_join(&mut pool, qbe_bench::param(30, 12), seed);
    }

    let queued = pool.len();
    assert!(queued >= 8, "the workload must exercise real concurrency");
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(queued);
    println!(
        "W1 — {queued} concurrent sessions over shared indexes ({workers} workers, XMark {} nodes)",
        docs[0].size()
    );
    println!(
        "{:<44} {:>10} {:>10} {:>8} {:>10}",
        "session", "questions", "inferred", "ok", "wall"
    );

    let metrics = pool.run(workers);

    for r in &metrics.reports {
        println!(
            "{:<44} {:>10} {:>10} {:>8} {:>9.1}ms",
            r.label,
            r.questions,
            r.inferred,
            if r.success { "yes" } else { "NO" },
            r.wall.as_secs_f64() * 1e3
        );
    }
    println!("\naggregate: {metrics}");

    // Per-strategy aggregates: the same reports, grouped by the selection strategy each
    // session consulted (the mixed fleet exercises label-affinity, cheapest-first — the
    // ShallowFirst preset — and halving policies side by side).
    println!(
        "\n{:<20} {:>8} {:>8} {:>8} {:>8}",
        "strategy", "sessions", "q_p50", "q_p95", "q_mean"
    );
    let by_strategy = metrics.by_strategy();
    for s in &by_strategy {
        println!(
            "{:<20} {:>8} {:>8} {:>8} {:>8.1}",
            s.strategy,
            s.sessions,
            s.p50_questions.unwrap_or(0),
            s.p95_questions.unwrap_or(0),
            s.mean_questions().unwrap_or(0.0),
        );
    }
    assert!(
        by_strategy.iter().all(|s| !s.strategy.is_empty()),
        "every session reports its strategy"
    );
    assert_eq!(
        by_strategy.iter().map(|s| s.sessions).sum::<usize>(),
        metrics.sessions(),
        "strategy groups partition the fleet"
    );

    // The smoke run doubles as a metrics-correctness check: the aggregates must reconcile
    // exactly with the per-session rows.
    assert_eq!(metrics.sessions(), queued, "every session must complete");
    assert_eq!(
        metrics.total_questions(),
        metrics.reports.iter().map(|r| r.questions).sum::<usize>()
    );
    let p50 = metrics.p50_questions().expect("non-empty run");
    let p95 = metrics.p95_questions().expect("non-empty run");
    assert!(p50 <= p95, "percentiles must be monotone");
    assert!(
        metrics.reports.iter().any(|r| r.questions <= p50)
            && metrics.reports.iter().any(|r| r.questions >= p95),
        "percentiles must bracket the observed counts"
    );
    assert_eq!(metrics.successes(), queued, "all sessions learn their goal");
    println!("aggregates reconcile: {queued} sessions, p50 {p50} ≤ p95 {p95}");
}
