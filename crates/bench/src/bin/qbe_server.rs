//! The `qbe-server` binary: the networked query-by-example learning service.
//!
//! Thin entry point — all logic lives in `qbe_server::cli` (and below it in the `qbe-server`
//! crate). It sits in `qbe-bench`'s `src/bin/` next to the `exp_*` binaries so the shared
//! smoke harness (`tests/exp_smoke.rs`) exercises `--smoke` on every CI push.
//!
//! * `qbe-server [--addr HOST:PORT]` — serve until killed (default `127.0.0.1:7878`);
//! * `qbe-server --smoke` — bind an ephemeral port, run one simulated client session per
//!   model over loopback, print learned queries and metrics, exit 0 on success.

fn main() {
    std::process::exit(qbe_server::cli::run(std::env::args().skip(1)));
}
