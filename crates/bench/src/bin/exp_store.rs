//! exp_store — the persistence-layer snapshot behind `BENCH_PR9.json`.
//!
//! Measures, per named corpus (tiny / small):
//!
//! * **cold build** — wall time of `build_corpus` (XMark generation + every index);
//! * **snapshot write** — encode + atomic write of the corpus snapshot;
//! * **snapshot open** — file-backed read + decode + re-wrap into a served `Corpus`, i.e. the
//!   exact path `--data-dir` takes on boot, and the speedup it buys over the cold build;
//!
//! plus WAL throughput: records appended per second (write-through, batched fsync) and
//! records per second through `wal::recover` (the checksum-validating boot replay read).
//!
//! Results go to stdout as a table and to a JSON snapshot (default `BENCH_PR9.json`,
//! override with `--out <path>`). `--smoke` shrinks the iteration counts to CI size and is
//! exercised on every push by `exp_smoke` and the CI workflow.

use std::time::Instant;

use qbe_core::store::{wal, CorpusSnapshot, FileBackend, SnapshotReader, WalRecord};
use qbe_server::corpus::{build_corpus, corpus_to_snapshot, snapshot_path, snapshot_to_corpus};

/// One corpus's snapshot row.
struct CorpusRow {
    corpus: &'static str,
    xml_nodes: usize,
    cold_build_ms: f64,
    snapshot_write_ms: f64,
    snapshot_open_ms: f64,
    speedup: f64,
}

/// WAL throughput row.
struct WalRow {
    records: usize,
    append_per_sec: f64,
    replay_per_sec: f64,
}

fn median_ms(mut wall: Vec<f64>) -> f64 {
    wall.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    wall[wall.len() / 2]
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1000.0)
}

fn corpus_row(name: &'static str, dir: &std::path::Path, iters: usize) -> CorpusRow {
    let mut build_ms = Vec::with_capacity(iters);
    let mut corpus = None;
    for _ in 0..iters {
        let (built, ms) = timed(|| build_corpus(name).expect("known corpus"));
        build_ms.push(ms);
        corpus = Some(built);
    }
    let corpus = corpus.expect("at least one build");
    let xml_nodes = corpus.xml_nodes();

    let path = snapshot_path(dir, name);
    let (_, snapshot_write_ms) = timed(|| {
        let bytes = corpus_to_snapshot(&corpus).encode();
        qbe_core::store::snapshot::write_atomic(&path, &bytes).expect("snapshot writes");
    });

    let mut open_ms = Vec::with_capacity(iters);
    for _ in 0..iters {
        let (reopened, ms) = timed(|| {
            let backend = FileBackend::open(&path).expect("snapshot opens");
            let reader = SnapshotReader::open(backend).expect("header verifies");
            snapshot_to_corpus(CorpusSnapshot::decode(&reader).expect("snapshot decodes"))
        });
        assert_eq!(
            reopened.xml_nodes(),
            xml_nodes,
            "reopened corpus must match the built one"
        );
        open_ms.push(ms);
    }

    let cold_build_ms = median_ms(build_ms);
    let snapshot_open_ms = median_ms(open_ms);
    CorpusRow {
        corpus: name,
        xml_nodes,
        cold_build_ms,
        snapshot_write_ms,
        snapshot_open_ms,
        speedup: cold_build_ms / snapshot_open_ms,
    }
}

fn wal_row(dir: &std::path::Path, records: usize) -> WalRow {
    let path = dir.join("bench.qbew");
    std::fs::remove_file(&path).ok();
    let (_, mut writer) = wal::recover(&path).expect("fresh WAL opens");
    let start = Instant::now();
    for session in 0..records as u64 / 8 {
        writer
            .append(&WalRecord::Start {
                session,
                corpus: "tiny".to_string(),
                model: "twig".to_string(),
                params: vec![("seed".to_string(), session.to_string())],
            })
            .expect("append succeeds");
        for n in 0..7u64 {
            writer
                .append(&WalRecord::Answer {
                    session,
                    positive: (session + n) % 3 != 0,
                })
                .expect("append succeeds");
        }
    }
    writer.sync().expect("final fsync");
    let appended = (records / 8) * 8;
    let append_per_sec = appended as f64 / start.elapsed().as_secs_f64();
    drop(writer);

    let start = Instant::now();
    let (recovered, _) = wal::recover(&path).expect("WAL recovers");
    let replay_per_sec = recovered.len() as f64 / start.elapsed().as_secs_f64();
    assert_eq!(
        recovered.len(),
        appended,
        "every appended record comes back"
    );
    WalRow {
        records: appended,
        append_per_sec,
        replay_per_sec,
    }
}

fn json_escape_free(rows: &[CorpusRow], wal: &WalRow, smoke: bool, iters: usize) -> String {
    // Hand-rolled JSON: keys are fixed identifiers, values numeric — nothing needs escaping.
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"iterations\": {iters},\n"));
    out.push_str("  \"corpora\": {\n");
    for (ix, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"xml_nodes\": {}, \"cold_build_ms\": {:.3}, \"snapshot_write_ms\": {:.3}, \"snapshot_open_ms\": {:.3}, \"open_speedup\": {:.2}}}{}\n",
            row.corpus,
            row.xml_nodes,
            row.cold_build_ms,
            row.snapshot_write_ms,
            row.snapshot_open_ms,
            row.speedup,
            if ix + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"wal\": {{\"records\": {}, \"append_per_sec\": {:.1}, \"replay_per_sec\": {:.1}}}\n",
        wal.records, wal.append_per_sec, wal.replay_per_sec
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let smoke = qbe_bench::smoke();
    let iters = qbe_bench::param(9usize, 3);
    let wal_records = qbe_bench::param(80_000usize, 2_000);

    let dir = std::env::temp_dir().join(format!("qbe-exp-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir exists");

    // The full run covers every served corpus; smoke keeps CI to the small ones (same code
    // paths) and the table says so rather than truncating silently.
    let corpora = qbe_bench::param(vec!["tiny", "small", "medium"], vec!["tiny", "small"]);
    let rows: Vec<CorpusRow> = corpora
        .into_iter()
        .map(|name| corpus_row(name, &dir, iters))
        .collect();
    let wal = wal_row(&dir, wal_records);

    println!("# exp_store — corpus snapshot open vs cold build, WAL throughput");
    println!(
        "# {iters} iterations/corpus, {} WAL records{}",
        wal.records,
        if smoke {
            " (smoke; corpus `medium` covered by full runs only)"
        } else {
            ""
        }
    );
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>14} {:>9}",
        "corpus", "xml nodes", "cold (ms)", "write (ms)", "open (ms)", "speedup"
    );
    for row in &rows {
        println!(
            "{:<8} {:>10} {:>14.3} {:>14.3} {:>14.3} {:>8.2}x",
            row.corpus,
            row.xml_nodes,
            row.cold_build_ms,
            row.snapshot_write_ms,
            row.snapshot_open_ms,
            row.speedup
        );
    }
    println!(
        "wal      {:>10} appends/s {:>14.0} replays/s {:>13.0}",
        wal.records, wal.append_per_sec, wal.replay_per_sec
    );

    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|ix| args.get(ix + 1).cloned())
            .unwrap_or_else(|| "BENCH_PR9.json".to_string())
    };
    let json = json_escape_free(&rows, &wal, smoke, iters);
    std::fs::write(&out_path, json).expect("snapshot file is writable");
    println!("snapshot written to {out_path}");
    std::fs::remove_dir_all(&dir).ok();
}
