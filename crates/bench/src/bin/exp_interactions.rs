//! Experiment E9 — minimising the number of user interactions in interactive join learning.
//!
//! The table compares the proposal strategies (random baseline vs the informed ones) on
//! instances of growing size, reporting the number of labels requested, the number of pairs
//! whose label was inferred (pruned as uninformative), and whether the learned join is
//! semantically equal to the hidden goal.
//!
//! Regenerate with `cargo run -p qbe-bench --bin exp_interactions`.

use qbe_relational::interactive::selected_pairs;
use qbe_relational::{generate_join_instance, interactive_learn, JoinInstanceConfig, Strategy};

fn main() {
    println!("E9 — interactive join learning: interactions per strategy");
    println!(
        "{:<8} {:<12} {:<20} {:>13} {:>10} {:>12}",
        "rows", "pairs", "strategy", "interactions", "inferred", "goal exact"
    );
    let seeds = qbe_bench::param(vec![1u64, 2, 3, 4, 5], vec![1, 2]);
    for rows in qbe_bench::param(vec![10usize, 20, 40, 80], vec![10, 20]) {
        for strategy in [
            Strategy::Random,
            Strategy::MostSpecificFirst,
            Strategy::HalveLattice,
        ] {
            let mut interactions = 0usize;
            let mut inferred = 0usize;
            let mut exact = 0usize;
            for &seed in &seeds {
                let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
                    left_rows: rows,
                    right_rows: rows,
                    extra_attributes: 2,
                    domain_size: 6,
                    seed,
                });
                let outcome = interactive_learn(&left, &right, &goal, strategy, seed);
                interactions += outcome.interactions;
                inferred += outcome.inferred;
                if selected_pairs(&left, &right, &outcome.predicate)
                    == selected_pairs(&left, &right, &goal)
                {
                    exact += 1;
                }
            }
            let n = seeds.len();
            println!(
                "{:<8} {:<12} {:<20} {:>13.1} {:>10.1} {:>9}/{}",
                rows,
                rows * rows,
                format!("{strategy:?}"),
                interactions as f64 / n as f64,
                inferred as f64 / n as f64,
                exact,
                n
            );
        }
    }
    println!("\n(interactions stay near-constant while the pair count grows quadratically: the");
    println!(" protocol prunes uninformative pairs, which is the paper's minimisation goal)");
}
