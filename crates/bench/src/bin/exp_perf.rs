//! exp_perf — the performance snapshot behind `BENCH_PR5.json`.
//!
//! Runs the interactive-session workloads of the `interactive`/`workload`/`strategies` benches
//! in one binary and records, per model (twig / path / join):
//!
//! * **session wall p50/p95** — full goal-driven interactive sessions, flagship strategy;
//! * **select throughput** — indexed evaluations per second over a warm cache.
//!
//! The numbers go to stdout as a table and to a JSON snapshot (default `BENCH_PR5.json`,
//! override with `--out <path>`), so the bench trajectory has a machine-readable artifact per
//! PR. `--smoke` (or `QBE_BENCH_SMOKE=1`) shrinks everything to CI size — same code paths,
//! seconds of runtime — and is exercised on every push by `exp_smoke` and the CI workflow.

use qbe_core::graph::interactive::{GoalPathOracle, PathConstraint, PathSession, PathStrategy};
use qbe_core::graph::rpq::{evaluate_indexed, PathRegex};
use qbe_core::graph::{generate_geo_graph, GeoConfig, GraphIndex};
use qbe_core::relational::interactive::{GoalOracle, InteractiveSession, Strategy};
use qbe_core::relational::{equi_join, generate_join_instance, JoinInstanceConfig};
use qbe_core::twig::eval_indexed::{select_bits_with, EvalCache};
use qbe_core::twig::{parse_xpath, GoalNodeOracle, NodeStrategy, TwigQuery, TwigSession};
use qbe_core::workload::percentile_sorted;
use qbe_core::xml::xmark::{generate, XmarkConfig};
use qbe_core::xml::NodeIndex;
use std::sync::Arc;
use std::time::Instant;

/// One model's snapshot row.
struct ModelRow {
    model: &'static str,
    p50_ms: f64,
    p95_ms: f64,
    select_per_sec: f64,
}

fn percentiles_ms(mut wall_us: Vec<usize>) -> (f64, f64) {
    wall_us.sort_unstable();
    let p50 = percentile_sorted(&wall_us, 50.0).unwrap_or(0) as f64 / 1000.0;
    let p95 = percentile_sorted(&wall_us, 95.0).unwrap_or(0) as f64 / 1000.0;
    (p50, p95)
}

fn twig_row(sessions: usize, select_iters: usize) -> ModelRow {
    let docs = Arc::new(vec![generate(&XmarkConfig::new(0.01, 7))]);
    let indexes: Arc<Vec<NodeIndex>> = Arc::new(docs.iter().map(NodeIndex::build).collect());
    let goal = parse_xpath("//person/name").expect("goal parses");
    let mut wall_us = Vec::with_capacity(sessions);
    for seed in 0..sessions as u64 {
        let session = TwigSession::with_shared(
            docs.clone(),
            indexes.clone(),
            NodeStrategy::LabelAffinity,
            seed,
        );
        let mut oracle = GoalNodeOracle::new(&docs, goal.clone());
        let start = Instant::now();
        let outcome = session.run(&mut oracle);
        wall_us.push(start.elapsed().as_micros() as usize);
        assert!(outcome.consistent, "twig session must stay consistent");
    }
    // Steady-state indexed evaluation over one warm memo, round-robin over distinct queries so
    // the measurement covers the spine pass, not just pure cache hits.
    let queries: Vec<TwigQuery> = [
        "//person/name",
        "//open_auction",
        "/site/people/person[emailaddress]",
        "//item[name]",
        "/site//age",
        "//person[profile]/name",
    ]
    .iter()
    .map(|q| parse_xpath(q).expect("query parses"))
    .collect();
    let mut cache = EvalCache::new();
    let start = Instant::now();
    let mut selected = 0usize;
    for i in 0..select_iters {
        let q = &queries[i % queries.len()];
        selected += select_bits_with(q, &docs[0], &indexes[0], &mut cache).len();
    }
    let per_sec = select_iters as f64 / start.elapsed().as_secs_f64();
    assert!(selected > 0, "selects must match something");
    let (p50_ms, p95_ms) = percentiles_ms(wall_us);
    ModelRow {
        model: "twig",
        p50_ms,
        p95_ms,
        select_per_sec: per_sec,
    }
}

fn path_row(sessions: usize, select_iters: usize) -> ModelRow {
    let graph = generate_geo_graph(&GeoConfig {
        cities: 16,
        connectivity: 3,
        ..Default::default()
    });
    let goal = PathConstraint {
        road_type: Some("highway".to_string()),
        max_distance: None,
        via: None,
    };
    let from = graph
        .find_node_by_property("name", "city0")
        .expect("city0 exists");
    let mut wall_us = Vec::with_capacity(sessions);
    for seed in 0..sessions as u64 {
        // Vary the destination so the candidate sets differ across sessions.
        let to_name = format!("city{}", 1 + (seed as usize % 10));
        let to = graph
            .find_node_by_property("name", &to_name)
            .expect("destination exists");
        let session = PathSession::new(&graph, from, to, 8, PathStrategy::Halving, seed);
        let mut oracle = GoalPathOracle::new(goal.clone());
        let start = Instant::now();
        let outcome = session.run(&mut oracle);
        wall_us.push(start.elapsed().as_micros() as usize);
        assert!(outcome.interactions > 0 || outcome.candidates.is_empty());
    }
    // Geo edges are all labelled "road" (the road *type* is a property); `(road)+` is the
    // reachability query the RPQ engine answers over this graph.
    let index = GraphIndex::build(&graph);
    let regex = PathRegex::Plus(Box::new(PathRegex::label("road")));
    let start = Instant::now();
    let mut pairs = 0usize;
    for _ in 0..select_iters {
        pairs += evaluate_indexed(&graph, &index, &regex).len();
    }
    let per_sec = select_iters as f64 / start.elapsed().as_secs_f64();
    assert!(pairs > 0, "the RPQ must match something");
    let (p50_ms, p95_ms) = percentiles_ms(wall_us);
    ModelRow {
        model: "path",
        p50_ms,
        p95_ms,
        select_per_sec: per_sec,
    }
}

fn join_row(sessions: usize, select_iters: usize) -> ModelRow {
    let mut wall_us = Vec::with_capacity(sessions);
    let mut last = None;
    for seed in 0..sessions as u64 {
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
            left_rows: 40,
            right_rows: 40,
            extra_attributes: 2,
            domain_size: 6,
            seed,
        });
        let session = InteractiveSession::new(&left, &right, Strategy::HalveLattice, seed);
        let mut oracle = GoalOracle::new(&left, &right, goal.clone());
        let start = Instant::now();
        let outcome = session.run(&mut oracle);
        wall_us.push(start.elapsed().as_micros() as usize);
        assert!(outcome.consistent, "join session must stay consistent");
        last = Some((left, right, goal));
    }
    let (left, right, goal) = last.expect("at least one session ran");
    let start = Instant::now();
    let mut tuples = 0usize;
    for _ in 0..select_iters {
        tuples += equi_join(&left, &right, &goal).len();
    }
    let per_sec = select_iters as f64 / start.elapsed().as_secs_f64();
    let _ = tuples;
    let (p50_ms, p95_ms) = percentiles_ms(wall_us);
    ModelRow {
        model: "join",
        p50_ms,
        p95_ms,
        select_per_sec: per_sec,
    }
}

fn json_escape_free(
    rows: &[ModelRow],
    smoke: bool,
    sessions: usize,
    select_iters: usize,
) -> String {
    // Hand-rolled JSON: keys are fixed identifiers, values numeric — nothing needs escaping.
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"sessions_per_model\": {sessions},\n"));
    out.push_str(&format!("  \"select_iterations\": {select_iters},\n"));
    out.push_str("  \"models\": {\n");
    for (ix, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"session_wall_ms_p50\": {:.3}, \"session_wall_ms_p95\": {:.3}, \"select_per_sec\": {:.1}}}{}\n",
            row.model,
            row.p50_ms,
            row.p95_ms,
            row.select_per_sec,
            if ix + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let smoke = qbe_bench::smoke();
    let sessions = qbe_bench::param(30usize, 3);
    let select_iters = qbe_bench::param(500usize, 10);

    let rows = vec![
        twig_row(sessions, select_iters),
        path_row(sessions, select_iters),
        join_row(sessions, select_iters),
    ];

    println!("# exp_perf — interactive session wall clock + select throughput");
    println!(
        "# {sessions} sessions/model, {select_iters} select iterations{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<8} {:>16} {:>16} {:>16}",
        "model", "wall p50 (ms)", "wall p95 (ms)", "select/s"
    );
    for row in &rows {
        println!(
            "{:<8} {:>16.3} {:>16.3} {:>16.1}",
            row.model, row.p50_ms, row.p95_ms, row.select_per_sec
        );
    }

    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|ix| args.get(ix + 1).cloned())
            .unwrap_or_else(|| "BENCH_PR5.json".to_string())
    };
    let json = json_escape_free(&rows, smoke, sessions, select_iters);
    std::fs::write(&out_path, json).expect("snapshot file is writable");
    println!("snapshot written to {out_path}");
}
