//! Experiment E7 — coverage of the XPathMark-like query suite.
//!
//! The paper: 10 of the 20 XMark queries are XPath-expressible, and the positive-only twig
//! learner handles 15% of XPathMark. The table classifies every query of our 20-query suite
//! (twig-expressible / path-only / beyond twigs), and for the twig-expressible ones reports
//! whether the learner recovers the goal from annotated examples and how many it needs.
//!
//! Regenerate with `cargo run -p qbe-bench --bin exp_xpathmark`.

use qbe_twig::xpathmark::suite;
use qbe_twig::{learn_from_positives, select};
use qbe_xml::xmark::{generate, XmarkConfig};

fn main() {
    println!("E7 — XPathMark-like suite: expressibility and learnability");
    println!(
        "{:<6} {:<18} {:<40} {:>10} {:>10}",
        "query", "class", "xpath", "selected", "learned"
    );
    let doc = generate(&XmarkConfig::new(qbe_bench::param(0.1, 0.02), 9));
    let queries = suite();
    let mut twig_expressible = 0usize;
    let mut learned_ok = 0usize;
    for q in &queries {
        let class = format!("{:?}", q.expressibility);
        let (selected, learned) = match q.as_twig() {
            Some(goal) => {
                twig_expressible += 1;
                let nodes: Vec<_> = select(&goal, &doc).into_iter().collect();
                if nodes.len() < 2 {
                    (nodes.len(), "too few nodes".to_string())
                } else {
                    let examples: Vec<_> = nodes.iter().take(2).map(|&n| (&doc, n)).collect();
                    match learn_from_positives(&examples) {
                        Ok(candidate) if select(&candidate, &doc) == select(&goal, &doc) => {
                            learned_ok += 1;
                            (nodes.len(), "yes (2 ex.)".to_string())
                        }
                        Ok(_) => (nodes.len(), "approx".to_string()),
                        Err(_) => (nodes.len(), "no".to_string()),
                    }
                }
            }
            None => (0, "-".to_string()),
        };
        println!(
            "{:<6} {:<18} {:<40} {:>10} {:>10}",
            q.id, class, q.xpath, selected, learned
        );
    }
    println!(
        "\nsuite size: {}; twig-expressible: {}; learned exactly from 2 examples: {} ({:.0}% of the suite)",
        queries.len(),
        twig_expressible,
        learned_ok,
        100.0 * learned_ok as f64 / queries.len() as f64
    );
    println!("paper's reference point: 15% of XPathMark learned by the positive-only algorithms");
}
