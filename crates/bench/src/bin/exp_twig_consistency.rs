//! Experiment E4 — consistency of twig queries with positive *and* negative examples.
//!
//! The general problem is NP-complete; the polynomial most-specific check is exact only within
//! the anchored hypothesis space, and the exhaustive search blows up with the example set. The
//! table contrasts the running time of the polynomial check against the exhaustive search as the
//! number of negative examples grows, and shows the tractable bounded-size case.
//!
//! Regenerate with `cargo run -p qbe-bench --bin exp_twig_consistency`.

use std::time::Instant;

use qbe_twig::consistency::exhaustive_consistent;
use qbe_twig::{most_specific_consistent, parse_xpath, ExampleSet};
use qbe_xml::random::{RandomTreeConfig, RandomTreeGenerator};
use qbe_xml::XmlTree;

fn random_docs(n: usize, seed: u64) -> Vec<XmlTree> {
    let cfg = RandomTreeConfig {
        alphabet: ('a'..='e').map(|c| c.to_string()).collect(),
        max_depth: 4,
        max_children: 3,
        ..Default::default()
    };
    let mut gen = RandomTreeGenerator::new(cfg, seed);
    let mut docs = gen.generate_many(n);
    for d in &mut docs {
        d.set_label(XmlTree::ROOT, "root");
    }
    docs
}

fn main() {
    println!("E4 — consistency with positives and negatives: polynomial vs exhaustive");
    println!(
        "{:<12} {:<12} {:>16} {:>12} {:>16} {:>12}",
        "#positives",
        "#negatives",
        "poly time (µs)",
        "poly result",
        "exhaustive (µs)",
        "exact result"
    );
    let goal = parse_xpath("//a[b]").unwrap();
    for negatives in qbe_bench::param(vec![1usize, 2, 4, 8, 16, 32], vec![1, 2, 4]) {
        let docs = random_docs(4, negatives as u64);
        let set = ExampleSet::from_goal(&goal, docs, 2, negatives, 7);

        let t0 = Instant::now();
        let poly = most_specific_consistent(&set);
        let poly_time = t0.elapsed().as_micros();

        let t1 = Instant::now();
        let exact = exhaustive_consistent(&set, 3);
        let exact_time = t1.elapsed().as_micros();

        println!(
            "{:<12} {:<12} {:>16} {:>12} {:>16} {:>12}",
            set.positives().len(),
            set.negatives().len(),
            poly_time,
            poly.is_consistent(),
            exact_time,
            exact.is_consistent()
        );
    }

    println!("\nbounded-size case (≤ k examples in total) stays polynomial:");
    println!("{:<8} {:>16}", "k", "exhaustive (µs)");
    for k in qbe_bench::param(vec![2usize, 3, 4, 5, 6], vec![2, 3]) {
        let docs = random_docs(2, 99);
        let set = ExampleSet::from_goal(&goal, docs, k / 2 + 1, k / 2, 3);
        let t = Instant::now();
        let _ = exhaustive_consistent(&set, 3);
        println!("{:<8} {:>16}", k, t.elapsed().as_micros());
    }
}
