//! Experiment E3 — overspecialisation: the positive-only learner keeps every filter the examples
//! share, including those the schema already implies. Adding the schema (the paper's proposed
//! optimisation) prunes those filters; the table reports the query size before and after and the
//! relative reduction, per goal query.
//!
//! Regenerate with `cargo run -p qbe-bench --bin exp_overspecialisation`.

use qbe_schema::dms_from_dtd;
use qbe_twig::{learn_from_positives, learn_with_schema, parse_xpath, select};
use qbe_xml::xmark::{generate, xmark_dtd, XmarkConfig};

fn main() {
    println!("E3 — query size before/after schema-aware pruning (XMark DMS)");
    println!(
        "{:<26} {:>14} {:>13} {:>12} {:>12}",
        "goal", "size (naive)", "size (schema)", "reduction %", "same answers"
    );
    let doc = generate(&XmarkConfig::new(qbe_bench::param(0.1, 0.03), 5));
    let schema = dms_from_dtd(&xmark_dtd()).expect("XMark DTD is DMS-expressible");
    let goals = [
        "//person",
        "//person/name",
        "//open_auction",
        "//open_auction/bidder",
        "//item",
        "//closed_auction",
        "//category",
        "//bidder",
    ];
    let mut total_before = 0usize;
    let mut total_after = 0usize;
    for xpath in goals {
        let goal = parse_xpath(xpath).unwrap();
        let wanted: Vec<_> = select(&goal, &doc).into_iter().collect();
        if wanted.len() < 2 {
            continue;
        }
        let examples: Vec<_> = wanted.iter().take(2).map(|&n| (&doc, n)).collect();
        let naive = learn_from_positives(&examples).unwrap();
        let report = learn_with_schema(&examples, &schema).unwrap();
        let same = select(&naive, &doc) == select(&report.query, &doc);
        total_before += report.size_before;
        total_after += report.size_after;
        println!(
            "{:<26} {:>14} {:>13} {:>11.1}% {:>12}",
            xpath,
            report.size_before,
            report.size_after,
            report.reduction_percent(),
            same
        );
    }
    let overall = if total_before > 0 {
        100.0 * (total_before - total_after) as f64 / total_before as f64
    } else {
        0.0
    };
    println!(
        "\noverall size reduction: {overall:.1}% ({total_before} → {total_after} query nodes)"
    );
}
