//! Experiment E10 — the geographical-database use case: interactive path learning between two
//! cities, with and without the query-workload prior.
//!
//! For growing graphs the table reports, per proposal strategy, the average number of paths the
//! user labels before the constraint is identified, and the number of itineraries finally
//! extracted. The workload-prior row models the paper's scenario where previous users all asked
//! for highway-only paths.
//!
//! Regenerate with `cargo run -p qbe-bench --bin exp_graph_paths`.

use qbe_graph::{
    generate_geo_graph, interactive_path_learn, simple_paths, GeoConfig, PathConstraint,
    PathStrategy,
};

fn main() {
    println!("E10 — interactive path learning on geographical graphs");
    println!(
        "{:<8} {:>11} {:<16} {:>13} {:>10} {:>12}",
        "cities", "candidates", "strategy", "interactions", "inferred", "paths kept"
    );
    let goal = PathConstraint {
        road_type: Some("highway".to_string()),
        max_distance: None,
        via: None,
    };
    let workload = vec![goal.clone(), goal.clone(), goal.clone()];

    for cities in qbe_bench::param(vec![15usize, 25, 35, 50], vec![15]) {
        let graph = generate_geo_graph(&GeoConfig {
            cities,
            connectivity: 3,
            highway_fraction: 0.35,
            seed: cities as u64,
        });
        let from = graph.find_node_by_property("name", "city0").unwrap();
        let to = graph.find_node_by_property("name", "city5").unwrap();
        let candidates = simple_paths(&graph, from, to, 7).len();
        if candidates == 0 {
            continue;
        }
        for (strategy, wl) in [
            (PathStrategy::Random, Vec::new()),
            (PathStrategy::ShortestFirst, Vec::new()),
            (PathStrategy::Halving, Vec::new()),
            (PathStrategy::WorkloadPrior, workload.clone()),
        ] {
            let mut interactions = 0usize;
            let mut inferred = 0usize;
            let mut kept = 0usize;
            let runs = 5u64;
            for seed in 0..runs {
                let outcome =
                    interactive_path_learn(&graph, from, to, &goal, strategy, wl.clone(), seed);
                interactions += outcome.interactions;
                inferred += outcome.inferred;
                kept += outcome.accepted_paths.len();
            }
            println!(
                "{:<8} {:>11} {:<16} {:>13.1} {:>10.1} {:>12.1}",
                cities,
                candidates,
                format!("{strategy:?}"),
                interactions as f64 / runs as f64,
                inferred as f64 / runs as f64,
                kept as f64 / runs as f64
            );
        }
    }
}
