//! Experiment E5 — static analysis of the multiplicity schema formalisms.
//!
//! The paper's complexity map: DMS containment is PTIME (the technical contribution), query
//! satisfiability and implication reduce to dependency-graph embeddings and are PTIME for
//! disjunction-free schemas. The table measures those operations on schemas of growing size
//! (learned from generated corpora, so label counts are realistic) and confirms the polynomial
//! growth; DTD validation on the same documents is shown as the classical baseline.
//!
//! Regenerate with `cargo run -p qbe-bench --bin exp_schema_complexity`.

use std::time::Instant;

use qbe_schema::{dms_from_dtd, learn_dms, schema_contained_in, DependencyGraph};
use qbe_twig::{parse_xpath, query_satisfiable};
use qbe_xml::corpus::{generate_corpus, CorpusConfig};
use qbe_xml::xmark::{generate, xmark_dtd, XmarkConfig};

fn main() {
    println!("E5 — schema static analysis: timings on growing schemas");
    println!(
        "{:<12} {:>8} {:>18} {:>18} {:>20} {:>18}",
        "alphabet",
        "clauses",
        "containment (µs)",
        "depgraph (µs)",
        "satisfiability (µs)",
        "validation (µs)"
    );

    // Schemas of growing total size: every collection of the corpus has its own root label and
    // its own learned DMS (documents from different collections cannot share one schema), so the
    // row aggregates the per-collection timings; the totals grow with the number of collections.
    for collections in qbe_bench::param(vec![2usize, 4, 8, 12, 16, 20], vec![2, 4]) {
        let corpus = generate_corpus(&CorpusConfig {
            collections,
            documents_per_collection: 4,
            ..Default::default()
        });
        let mut total_alphabet = 0usize;
        let mut total_clauses = 0usize;
        let mut containment = 0u128;
        let mut depgraph = 0u128;
        let mut satisfiability = 0u128;
        let mut validation = 0u128;
        for entry in &corpus {
            let Ok(schema) = learn_dms(&entry.documents) else {
                continue;
            };
            let half = (entry.documents.len() / 2).max(1);
            let Ok(smaller) = learn_dms(&entry.documents[..half]) else {
                continue;
            };
            total_alphabet += schema.alphabet().len();
            total_clauses += schema.clause_count();

            let t0 = Instant::now();
            let _ = schema_contained_in(&smaller, &schema);
            containment += t0.elapsed().as_micros();

            let t1 = Instant::now();
            let graph = DependencyGraph::from_schema(&schema);
            depgraph += t1.elapsed().as_micros();
            let _ = graph;

            let query = parse_xpath("//a").unwrap();
            let t2 = Instant::now();
            let _ = query_satisfiable(&schema, &query);
            satisfiability += t2.elapsed().as_micros();

            let t3 = Instant::now();
            for d in &entry.documents {
                let _ = schema.validate(d);
            }
            validation += t3.elapsed().as_micros();
        }
        println!(
            "{:<12} {:>8} {:>18} {:>18} {:>20} {:>18}",
            total_alphabet, total_clauses, containment, depgraph, satisfiability, validation
        );
    }

    // XMark reference point: the schema the twig experiments use.
    let dms = dms_from_dtd(&xmark_dtd()).unwrap();
    let doc = generate(&XmarkConfig::new(qbe_bench::param(0.1, 0.02), 1));
    let t = Instant::now();
    let ok = dms.accepts(&doc);
    println!(
        "\nXMark DMS: {} labels, {} clauses; validating a scale-0.1 document ({} nodes): {} µs (valid: {ok})",
        dms.alphabet().len(),
        dms.clause_count(),
        doc.size(),
        t.elapsed().as_micros()
    );
}
