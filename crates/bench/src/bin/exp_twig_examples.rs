//! Experiment E2 — how many annotated examples the positive-only twig learner needs before it is
//! equivalent to the goal query on the benchmark documents (the paper reports "generally two").
//!
//! Two learners are compared: the plain positive-only learner and the schema-aware variant the
//! paper proposes, which removes filters implied by the (XMark) schema. Overspecialisation is
//! what slows convergence down — a filter that every annotated node happens to satisfy keeps
//! excluding not-yet-annotated answers — so goals whose answers are structurally homogeneous
//! converge within a couple of examples while heterogeneous ones need more; the schema-aware
//! learner removes the schema-implied part of that gap (the rest is addressed in E3).
//!
//! Regenerate with `cargo run -p qbe-bench --bin exp_twig_examples`.

use qbe_schema::dms_from_dtd;
use qbe_twig::{equivalent_on, learn_from_positives, learn_with_schema, parse_xpath, select};
use qbe_xml::xmark::{generate, xmark_dtd, XmarkConfig};
use qbe_xml::XmlTree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Cap on the number of examples tried before a goal is reported as "not reached".
const MAX_EXAMPLES: usize = 30;

/// Number of random annotation orders averaged per goal (the simulated user annotates goal nodes
/// in an arbitrary order, as in the original experiments).
const TRIALS: usize = 3;

/// Goal queries of increasing structural complexity over the XMark-like documents.
fn goals() -> Vec<(&'static str, &'static str)> {
    vec![
        ("persons", "//person"),
        ("person names", "//person/name"),
        ("open auction bidders", "//open_auction/bidder"),
        ("item descriptions", "//item/description"),
        ("closed auction prices", "//closed_auction/price"),
        ("category names", "//category/name"),
        ("bidder increases", "//bidder/increase"),
        ("region items", "/site/regions//item"),
    ]
}

/// One annotation order a simulated user could follow: the goal's answers, shuffled.
fn example_pool(
    goal: &qbe_twig::TwigQuery,
    docs: &[XmlTree],
    seed: u64,
) -> Vec<(usize, qbe_xml::NodeId)> {
    let mut pool = Vec::new();
    for (ix, doc) in docs.iter().enumerate() {
        for node in select(goal, doc) {
            pool.push((ix, node));
        }
    }
    pool.shuffle(&mut StdRng::seed_from_u64(seed));
    pool
}

/// Number of positive examples needed until `learn` produces a query selecting exactly the
/// goal's nodes on every document, or `None` if [`MAX_EXAMPLES`] is reached first.
fn examples_needed(
    goal: &qbe_twig::TwigQuery,
    docs: &[XmlTree],
    seed: u64,
    learn: &mut impl FnMut(&[(&XmlTree, qbe_xml::NodeId)]) -> Option<qbe_twig::TwigQuery>,
) -> Option<usize> {
    let pool = example_pool(goal, docs, seed);
    for k in 1..=pool.len().min(MAX_EXAMPLES) {
        let examples: Vec<(&XmlTree, qbe_xml::NodeId)> =
            pool.iter().take(k).map(|&(d, n)| (&docs[d], n)).collect();
        let learned = learn(&examples)?;
        if equivalent_on(&learned, goal, docs) {
            return Some(k);
        }
    }
    None
}

/// Average over [`TRIALS`] random annotation orders; `None` when no trial reached the goal.
fn mean_examples_needed(
    goal: &qbe_twig::TwigQuery,
    docs: &[XmlTree],
    mut learn: impl FnMut(&[(&XmlTree, qbe_xml::NodeId)]) -> Option<qbe_twig::TwigQuery>,
) -> Option<f64> {
    let counts: Vec<usize> = (0..TRIALS as u64)
        .filter_map(|seed| examples_needed(goal, docs, seed, &mut learn))
        .collect();
    if counts.is_empty() {
        None
    } else {
        Some(counts.iter().sum::<usize>() as f64 / counts.len() as f64)
    }
}

fn render(n: Option<f64>) -> String {
    match n {
        Some(k) => format!("{k:.1}"),
        None => format!("> {MAX_EXAMPLES}"),
    }
}

fn main() {
    println!("E2 — examples needed for the twig learner to reach the goal query");
    println!(
        "{:<26} {:<28} {:>10} {:>14} {:>20}",
        "goal", "xpath", "selected", "naive learner", "schema-aware learner"
    );
    let n_docs = qbe_bench::param(3, 2);
    let scale = qbe_bench::param(0.05, 0.02);
    let docs: Vec<XmlTree> = (0..n_docs)
        .map(|s| generate(&XmarkConfig::new(scale, s)))
        .collect();
    let schema = dms_from_dtd(&xmark_dtd()).expect("the XMark DTD is DMS-expressible");
    let mut naive_counts = Vec::new();
    let mut schema_counts = Vec::new();
    for (name, xpath) in goals() {
        let goal = parse_xpath(xpath).expect("goal queries parse");
        let selected: usize = docs.iter().map(|d| select(&goal, d).len()).sum();
        let naive = mean_examples_needed(&goal, &docs, |ex| learn_from_positives(ex).ok());
        let schema_aware = mean_examples_needed(&goal, &docs, |ex| {
            learn_with_schema(ex, &schema)
                .ok()
                .map(|report| report.query)
        });
        naive_counts.push(naive);
        schema_counts.push(schema_aware);
        println!(
            "{name:<26} {xpath:<28} {selected:>10} {:>14} {:>20}",
            render(naive),
            render(schema_aware)
        );
    }

    let summarise = |counts: &[Option<f64>]| {
        let solved: Vec<f64> = counts.iter().filter_map(|c| *c).collect();
        let with_two = solved.iter().filter(|&&k| k <= 2.0).count();
        let mean = if solved.is_empty() {
            f64::NAN
        } else {
            solved.iter().sum::<f64>() / solved.len() as f64
        };
        (solved.len(), with_two, mean)
    };
    let (naive_solved, naive_two, naive_mean) = summarise(&naive_counts);
    let (schema_solved, schema_two, schema_mean) = summarise(&schema_counts);
    let total = naive_counts.len();
    println!(
        "\nnaive learner:        reached the goal on {naive_solved}/{total} queries \
         (mean examples {naive_mean:.1}, ≤2 examples on {naive_two})"
    );
    println!(
        "schema-aware learner: reached the goal on {schema_solved}/{total} queries \
         (mean examples {schema_mean:.1}, ≤2 examples on {schema_two})"
    );
    println!(
        "\npaper's reference point: the positive-only algorithms \"are able to learn a query \
         equivalent to the goal query from a small number of examples (generally two)\". Goals \
         whose answers share one structure converge in 1-2 examples; goals whose answers differ \
         in optional content need a few more annotations before the overspecialised filters \
         disappear (the schema-implied part of those filters is the subject of E3)."
    );
}
