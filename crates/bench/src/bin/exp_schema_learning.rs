//! Experiment E6 — schema expressiveness and learnability.
//!
//! Two claims from the paper: (i) the disjunctive multiplicity schema can express the XMark DTD
//! and "many" real-world DTDs; (ii) DMS are identifiable in the limit from positive examples.
//! The first table reports DMS-expressibility over the synthetic web corpus by content-model
//! style; the second shows the learned schema converging as more documents are provided.
//!
//! Regenerate with `cargo run -p qbe-bench --bin exp_schema_learning`.

use qbe_schema::{dms_from_dtd, learn_dms, schema_contained_in, schema_equivalent};
use qbe_xml::corpus::{generate_corpus, CorpusConfig, SchemaStyle};
use qbe_xml::xmark::{generate, xmark_dtd, XmarkConfig};

fn main() {
    println!("E6a — DMS expressibility of DTDs (synthetic web corpus, 20 collections)");
    println!(
        "{:<22} {:>12} {:>14} {:>12}",
        "content-model style", "collections", "DMS-expressible", "fraction"
    );
    let corpus = generate_corpus(&CorpusConfig::default());
    let mut total = 0usize;
    let mut total_ok = 0usize;
    for style in [
        SchemaStyle::MultiplicityOnly,
        SchemaStyle::Disjunctive,
        SchemaStyle::OrderedSequences,
    ] {
        let of_style: Vec<_> = corpus.iter().filter(|e| e.style == style).collect();
        let ok = of_style
            .iter()
            .filter(|e| dms_from_dtd(&e.dtd).is_ok())
            .count();
        total += of_style.len();
        total_ok += ok;
        println!(
            "{:<22} {:>12} {:>14} {:>11.0}%",
            format!("{style:?}"),
            of_style.len(),
            ok,
            100.0 * ok as f64 / of_style.len().max(1) as f64
        );
    }
    println!(
        "{:<22} {:>12} {:>14} {:>11.0}%",
        "total",
        total,
        total_ok,
        100.0 * total_ok as f64 / total.max(1) as f64
    );
    println!(
        "XMark DTD expressible as DMS: {}",
        dms_from_dtd(&xmark_dtd()).is_ok()
    );

    println!("\nE6b — identification in the limit: learned DMS vs number of sample documents");
    println!(
        "{:<12} {:>10} {:>12} {:>22} {:>20}",
        "#documents", "labels", "clauses", "accepts all samples", "equal to previous"
    );
    let n_docs = qbe_bench::param(12u64, 4);
    let docs: Vec<_> = (0..n_docs)
        .map(|s| generate(&XmarkConfig::new(0.03, s)))
        .collect();
    let mut previous = None;
    for k in qbe_bench::param(vec![1usize, 2, 4, 6, 8, 10, 12], vec![1, 2, 4]) {
        let learned = learn_dms(&docs[..k]).unwrap();
        let accepts_all = docs[..k].iter().all(|d| learned.accepts(d));
        let stable = previous
            .as_ref()
            .map(|p| schema_equivalent(p, &learned))
            .unwrap_or(false);
        println!(
            "{:<12} {:>10} {:>12} {:>22} {:>20}",
            k,
            learned.alphabet().len(),
            learned.clause_count(),
            accepts_all,
            stable
        );
        if let Some(p) = &previous {
            // Monotone generalisation: the schema learned from fewer documents is contained in
            // the schema learned from more.
            assert!(schema_contained_in(p, &learned));
        }
        previous = Some(learned);
    }
}
