//! Experiment S1 — question-count/latency trade-offs of the pluggable selection strategies.
//!
//! The paper's interactive protocol minimises the number of questions a user must answer; this
//! experiment measures how much that number depends on *which* informative item the learner
//! asks about next. For each data model — twig learning over a shared XMark document, path
//! learning over the geographical graph, join learning over generated relation pairs — a fleet
//! of goal-driven sessions runs once per shipped model-agnostic strategy (`paper-order`,
//! `random`, `max-coverage`, `cheapest-first`; see `qbe_core::strategy`), all strategies of a
//! model inside one `SessionPool` so the per-strategy rows come from
//! `WorkloadMetrics::by_strategy` — the same aggregation path the serving layer uses.
//!
//! The table reports, per model × strategy: sessions, questions p50/p95/mean, and the summed
//! per-session wall clock (the strategy's compute cost, independent of pool parallelism).
//! Cheap strategies (`paper-order`, `cheapest-first`) spend almost nothing picking but ask
//! more questions; the informed ones buy fewer questions with more evaluation work — the
//! trade-off the active-learning lines in PAPERS.md frame.
//!
//! Regenerate with `cargo run --release -p qbe-bench --bin exp_strategies`.

use std::sync::Arc;

use qbe_core::graph::{generate_geo_graph, interactive::PathConstraint, GeoConfig, PropertyGraph};
use qbe_core::relational::{generate_join_instance, JoinInstanceConfig};
use qbe_core::twig::parse_xpath;
use qbe_core::workload::{SessionPool, StrategyAggregate};
use qbe_core::xml::xmark::{generate, XmarkConfig};
use qbe_core::xml::{NodeIndex, XmlTree};
use qbe_core::{JoinInteractive, PathInteractive, SessionConfig, TwigInteractive, STRATEGY_NAMES};

fn config(strategy: &str, seed: u64) -> SessionConfig {
    SessionConfig::new()
        .seed(seed)
        .strategy_named(strategy)
        .expect("every name in STRATEGY_NAMES resolves")
}

fn twig_pool(
    docs: &Arc<Vec<XmlTree>>,
    indexes: &Arc<Vec<NodeIndex>>,
    seeds: &[u64],
) -> SessionPool {
    let mut pool = SessionPool::new();
    for &strategy in STRATEGY_NAMES {
        for &seed in seeds {
            for goal in ["//person/name", "//item/name"] {
                let goal_query = parse_xpath(goal).expect("goal parses");
                let (docs, indexes) = (docs.clone(), indexes.clone());
                pool.push_learner(format!("twig {goal} {strategy}"), 32, move || {
                    Box::new(
                        TwigInteractive::with_config(docs, indexes, config(strategy, seed))
                            .with_goal(goal_query),
                    )
                });
            }
        }
    }
    pool
}

fn path_pool(graph: &Arc<PropertyGraph>, seeds: &[u64]) -> SessionPool {
    let mut pool = SessionPool::new();
    for &strategy in STRATEGY_NAMES {
        for &seed in seeds {
            let graph = graph.clone();
            let goal = PathConstraint {
                road_type: Some("highway".to_string()),
                max_distance: None,
                via: None,
            };
            pool.push_learner(format!("path highway {strategy}"), 24, move || {
                let from = graph
                    .find_node_by_property("name", "city0")
                    .expect("generator names cities");
                let to = graph
                    .find_node_by_property("name", "city5")
                    .expect("generator names cities");
                Box::new(
                    PathInteractive::with_config(graph, from, to, 8, config(strategy, seed))
                        .with_goal(goal),
                )
            });
        }
    }
    pool
}

fn join_pool(rows: usize, seeds: &[u64]) -> SessionPool {
    let mut pool = SessionPool::new();
    for &strategy in STRATEGY_NAMES {
        for &seed in seeds {
            pool.push_learner(format!("join rows={rows} {strategy}"), 30, move || {
                let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
                    left_rows: rows,
                    right_rows: rows,
                    extra_attributes: 2,
                    domain_size: 6,
                    seed,
                });
                Box::new(
                    JoinInteractive::with_config(
                        Arc::new(left),
                        Arc::new(right),
                        config(strategy, seed),
                    )
                    .with_goal(goal),
                )
            });
        }
    }
    pool
}

fn print_rows(model: &str, rows: &[StrategyAggregate]) {
    for r in rows {
        println!(
            "{:<6} {:<16} {:>8} {:>8} {:>8} {:>8.1} {:>11.1}ms",
            model,
            r.strategy,
            r.sessions,
            r.p50_questions.unwrap_or(0),
            r.p95_questions.unwrap_or(0),
            r.mean_questions().unwrap_or(0.0),
            r.wall.as_secs_f64() * 1e3,
        );
    }
}

/// Smoke-mode self-check: one row per shipped strategy, every session successful.
fn check(model: &str, rows: &[StrategyAggregate], expected_sessions: usize) {
    assert_eq!(
        rows.len(),
        STRATEGY_NAMES.len(),
        "{model}: one aggregate row per shipped strategy"
    );
    for r in rows {
        assert!(
            STRATEGY_NAMES.contains(&r.strategy.as_str()),
            "{model}: unexpected strategy {}",
            r.strategy
        );
        assert_eq!(
            r.sessions, expected_sessions,
            "{model}: every strategy runs the same fleet"
        );
        assert_eq!(
            r.successes, r.sessions,
            "{model}/{}: every session learns its goal",
            r.strategy
        );
        assert!(
            r.p50_questions.unwrap_or(0) <= r.p95_questions.unwrap_or(0),
            "{model}/{}: percentiles are monotone",
            r.strategy
        );
    }
}

fn main() {
    let scale = qbe_bench::param(0.03, 0.008);
    let seeds: Vec<u64> = qbe_bench::param(vec![1, 2, 3, 4], vec![1]);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!(
        "S1 — question-count/latency per selection strategy ({} seeds, {workers} workers)",
        seeds.len()
    );
    println!(
        "{:<6} {:<16} {:>8} {:>8} {:>8} {:>8} {:>13}",
        "model", "strategy", "sessions", "q_p50", "q_p95", "q_mean", "wall"
    );

    let docs = Arc::new(vec![generate(&XmarkConfig::new(scale, 7))]);
    let indexes: Arc<Vec<NodeIndex>> = Arc::new(docs.iter().map(NodeIndex::build).collect());
    let twig = twig_pool(&docs, &indexes, &seeds)
        .run(workers)
        .by_strategy();
    print_rows("twig", &twig);
    check("twig", &twig, seeds.len() * 2);

    let graph = Arc::new(generate_geo_graph(&GeoConfig {
        cities: qbe_bench::param(16, 10),
        connectivity: 3,
        ..Default::default()
    }));
    let path = path_pool(&graph, &seeds).run(workers).by_strategy();
    print_rows("path", &path);
    check("path", &path, seeds.len());

    let join = join_pool(qbe_bench::param(30, 12), &seeds)
        .run(workers)
        .by_strategy();
    print_rows("join", &join);
    check("join", &join, seeds.len());

    println!(
        "\nstrategies reconcile: {} rows across twig/path/join, all sessions successful",
        twig.len() + path.len() + join.len()
    );
}
