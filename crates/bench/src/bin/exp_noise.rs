//! exp_noise — noisy-oracle convergence curves behind `BENCH_PR10.json`.
//!
//! The unreliable-world question: how much does learning cost when the oracle lies with
//! probability p and the connection keeps dropping? For every learner model and each flip
//! probability on the grid, a resilient client drives a session over real TCP against a
//! fault-injected loopback server (deterministic connection drops + injected latency,
//! client-side socket sabotage on top), answering through the k-vote majority meta-strategy
//! with k chosen from the exact binomial bound so the whole session errs with probability
//! < δ. Reported per cell:
//!
//! * **votes/question (k)** — the re-asking overhead the bound demands at this p;
//! * **questions** — wire questions to convergence (should match the clean run: majority
//!   voting absorbs the noise, so the *transcript* is noise-free);
//! * **total votes** — questions × k, the real cost a crowd-sourced oracle would bill;
//! * **reconnects** — RESUME re-attaches the fault schedule forced;
//! * **converged** — learned hypothesis is byte-equal to the clean run's.
//!
//! Results go to stdout as a table and to JSON (default `BENCH_PR10.json`, override with
//! `--out <path>`). `--smoke` shrinks the grid to CI size.

use qbe_core::faults::{FaultProfile, FaultRegistry, SiteConfig};
use qbe_core::graph::QueryClass;
use qbe_server::{
    drive_goal_session, drive_goal_session_resilient, spawn, Goal, NoiseModel, RetryPolicy,
    ServerConfig, FAULT_SITE_CLIENT_DROP, FAULT_SITE_DROP,
};
use std::time::Duration;

/// Per-session error budget: the vote count per question is chosen so *all* majority
/// answers of a session are simultaneously correct with probability ≥ 1 − δ.
const DELTA: f64 = 1e-6;

/// Upper bound on questions per session fed to the union bound (tiny-corpus sessions top
/// out in the forties).
const QUESTION_BOUND: usize = 64;

struct Cell {
    p: f64,
    votes_per_question: usize,
    questions: usize,
    total_votes: u64,
    flips: u64,
    reconnects: u64,
    converged: bool,
}

struct ModelCurve {
    model: &'static str,
    clean_questions: usize,
    cells: Vec<Cell>,
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(20),
        request_timeout: Duration::from_secs(10),
        seed: 1,
    }
}

fn json_escape_free(curves: &[ModelCurve], smoke: bool, reps: usize, profile: &str) -> String {
    // Hand-rolled JSON: keys are fixed identifiers, values numeric — nothing needs escaping
    // (the profile string contains only site names, digits and punctuation).
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"delta\": {DELTA:e},\n"));
    out.push_str(&format!("  \"runs_per_cell\": {reps},\n"));
    out.push_str(&format!("  \"fault_profile\": \"{profile}\",\n"));
    out.push_str("  \"models\": {\n");
    for (mx, curve) in curves.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"clean_questions\": {}, \"curve\": [\n",
            curve.model, curve.clean_questions
        ));
        for (cx, cell) in curve.cells.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"p\": {:.2}, \"votes_per_question\": {}, \"questions\": {}, \"total_votes\": {}, \"flips\": {}, \"reconnects\": {}, \"converged\": {}}}{}\n",
                cell.p,
                cell.votes_per_question,
                cell.questions,
                cell.total_votes,
                cell.flips,
                cell.reconnects,
                cell.converged,
                if cx + 1 < curve.cells.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if mx + 1 < curves.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let smoke = qbe_bench::smoke();
    let ps: Vec<f64> = qbe_bench::param(vec![0.0, 0.05, 0.1, 0.15, 0.2], vec![0.0, 0.1]);
    let reps = qbe_bench::param(5usize, 1);

    // Deterministic chaos on both ends of the wire: the server drops every 9th ASK/ANSWER
    // and injects 1ms latency every 25th line; the client kills its own socket every 17th
    // faultable request. `every=` schedules make every run reproducible bit for bit.
    let server_profile = "seed=7;server.drop=0:every=9;server.latency=0:every=25:ms=1";
    let faulty = spawn(ServerConfig {
        faults: Some(FaultRegistry::shared(
            FaultProfile::parse(server_profile).expect("profile parses"),
        )),
        ..ServerConfig::default()
    })
    .expect("faulty server binds");
    let clean = spawn(ServerConfig::default()).expect("clean server binds");
    let client_faults = FaultRegistry::shared(
        FaultProfile::new(13).site(FAULT_SITE_CLIENT_DROP, SiteConfig::with_every(17)),
    );

    type Session = (&'static str, Goal, Vec<(&'static str, &'static str)>);
    let sessions: [Session; 4] = [
        ("twig", Goal::Twig("//person/name".to_string()), vec![]),
        (
            "path",
            Goal::PathRoadType("highway".to_string()),
            vec![("to", "city3")],
        ),
        ("join", Goal::Join, vec![]),
        ("graph", Goal::GraphPairs(QueryClass::Rpq), vec![]),
    ];

    println!("# exp_noise — questions & votes to convergence vs oracle flip probability");
    println!("# δ={DELTA:e}, {reps} run(s)/cell, faults: {server_profile} + {FAULT_SITE_DROP}-style client drops");
    println!(
        "{:<7} {:>5} {:>8} {:>10} {:>12} {:>11} {:>10}",
        "model", "p", "votes/q", "questions", "total votes", "reconnects", "converged"
    );

    let mut curves = Vec::new();
    let mut failures = 0usize;
    for (model, goal, params) in &sessions {
        let reference = drive_goal_session(clean.addr(), "tiny", goal, params)
            .unwrap_or_else(|e| panic!("{model}: clean reference failed: {e}"));
        let mut cells = Vec::new();
        for (px, &p) in ps.iter().enumerate() {
            let mut questions = Vec::new();
            let (mut total_votes, mut flips, mut reconnects) = (0u64, 0u64, 0u64);
            let mut converged = true;
            let mut votes_per_question = 1;
            for rep in 0..reps {
                let seed =
                    0xBAD5EED ^ ((px as u64) << 32) ^ ((rep as u64) << 8) ^ model.len() as u64;
                let noise = NoiseModel::with_bound(p, DELTA, QUESTION_BOUND, seed);
                votes_per_question = noise.votes;
                let outcome = drive_goal_session_resilient(
                    faulty.addr(),
                    "tiny",
                    goal,
                    params,
                    policy(),
                    Some(&noise),
                    Some(client_faults.clone()),
                )
                .unwrap_or_else(|e| panic!("{model} p={p} rep={rep}: session failed: {e}"));
                questions.push(outcome.session.questions);
                total_votes += outcome.votes_cast;
                flips += outcome.flips;
                reconnects += outcome.reconnects;
                converged &= outcome.session.consistent
                    && outcome.session.hypothesis == reference.hypothesis;
            }
            questions.sort_unstable();
            let cell = Cell {
                p,
                votes_per_question,
                questions: questions[questions.len() / 2],
                total_votes: total_votes / reps as u64,
                flips: flips / reps as u64,
                reconnects,
                converged,
            };
            println!(
                "{:<7} {:>5.2} {:>8} {:>10} {:>12} {:>11} {:>10}",
                model,
                cell.p,
                cell.votes_per_question,
                cell.questions,
                cell.total_votes,
                cell.reconnects,
                if cell.converged { "yes" } else { "NO" }
            );
            if !cell.converged {
                failures += 1;
            }
            cells.push(cell);
        }
        curves.push(ModelCurve {
            model,
            clean_questions: reference.questions,
            cells,
        });
    }
    faulty.shutdown();
    clean.shutdown();

    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|ix| args.get(ix + 1).cloned())
            .unwrap_or_else(|| "BENCH_PR10.json".to_string())
    };
    let json = json_escape_free(&curves, smoke, reps, server_profile);
    std::fs::write(&out_path, json).expect("snapshot file is writable");
    println!("snapshot written to {out_path}");
    assert_eq!(failures, 0, "{failures} cell(s) failed to converge");
}
