//! Experiment E1 — Figure 1: the four cross-model exchange scenarios run end to end with
//! *learned* source queries.
//!
//! For each scenario the table reports the learned source query, how many items it extracted,
//! how many target objects were produced, and how many user interactions (labels) the learning
//! phase needed. Regenerate with `cargo run -p qbe-bench --bin exp_exchange`.

use qbe_exchange::{
    learned_publish_relational_to_xml, learned_shred_xml_to_relational, publish_graph_to_xml,
    shred_xml_to_graph,
};
use qbe_graph::{
    generate_geo_graph, interactive_path_learn, GeoConfig, PathConstraint, PathStrategy,
};
use qbe_relational::{customers_orders_database, interactive_learn, JoinPredicate, Strategy};
use qbe_twig::{learn_from_positives, select};
use qbe_xml::xmark::{generate, XmarkConfig};

/// Keep the learned-query column readable: long overspecialised twigs are elided in the middle.
fn shorten(query: &str, max: usize) -> String {
    let chars: Vec<char> = query.chars().collect();
    if chars.len() <= max {
        return query.to_string();
    }
    let head: String = chars[..max / 2].iter().collect();
    let tail: String = chars[chars.len() - max / 2 + 1..].iter().collect();
    format!("{head}…{tail}")
}

fn main() {
    println!("E1 — cross-model exchange with learned source queries (Figure 1)");
    println!(
        "{:<22} {:<44} {:>9} {:>9} {:>13}",
        "scenario", "learned source query", "extracted", "produced", "interactions"
    );

    // Scenario 1: relational → XML.
    let db = customers_orders_database(40, 3, 3);
    let customers = db.relation("customers").unwrap();
    let orders = db.relation("orders").unwrap();
    let goal =
        JoinPredicate::from_names(customers.schema(), orders.schema(), &[("cid", "cid")]).unwrap();
    let session = interactive_learn(customers, orders, &goal, Strategy::HalveLattice, 1);
    let (_, report) = learned_publish_relational_to_xml(customers, orders, &goal, "sales", 1);
    println!(
        "{:<22} {:<44} {:>9} {:>9} {:>13}",
        "1 relational→XML",
        shorten(&report.source_query, 44),
        report.extracted_items,
        report.produced_items,
        session.interactions
    );

    // Scenario 2: XML → relational.
    let doc = generate(&XmarkConfig::new(qbe_bench::param(0.1, 0.02), 7));
    let goal_q = qbe_twig::parse_xpath("//person/name").unwrap();
    let selected: Vec<_> = select(&goal_q, &doc).into_iter().collect();
    let annotated: Vec<_> = selected.iter().copied().take(2).collect();
    let (_, report) = learned_shred_xml_to_relational(&doc, &annotated, "person_names").unwrap();
    println!(
        "{:<22} {:<44} {:>9} {:>9} {:>13}",
        "2 XML→relational",
        shorten(&report.source_query, 44),
        report.extracted_items,
        report.produced_items,
        annotated.len()
    );

    // Scenario 3: XML → graph.
    let items = doc.nodes_with_label("item");
    let examples: Vec<_> = items.iter().take(2).map(|&n| (&doc, n)).collect();
    let query = learn_from_positives(&examples).unwrap();
    let (_, report) = shred_xml_to_graph(&doc, &query);
    println!(
        "{:<22} {:<44} {:>9} {:>9} {:>13}",
        "3 XML→graph",
        shorten(&report.source_query, 44),
        report.extracted_items,
        report.produced_items,
        examples.len()
    );

    // Scenario 4: graph → XML. The simulated user wants the itineraries whose total distance
    // stays under the median of the candidate itineraries (one of the restrictions the paper's
    // use case names explicitly), so the learned constraint keeps a non-trivial set of paths.
    // A probe session with the unconstrained goal exposes the candidate set the interactive
    // session will reason about.
    let graph = generate_geo_graph(&GeoConfig {
        cities: qbe_bench::param(30, 12),
        ..Default::default()
    });
    let from = graph.find_node_by_property("name", "city0").unwrap();
    let to = graph.find_node_by_property("name", "city9").unwrap();
    let probe = interactive_path_learn(
        &graph,
        from,
        to,
        &PathConstraint::any(),
        PathStrategy::ShortestFirst,
        Vec::new(),
        4,
    );
    let mut distances: Vec<f64> = probe
        .candidates
        .iter()
        .map(|p| p.total_distance(&graph))
        .collect();
    distances.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
    let median = distances
        .get(distances.len() / 2)
        .copied()
        .unwrap_or(1_000.0);
    let goal = PathConstraint {
        road_type: None,
        max_distance: Some(median),
        via: None,
    };
    let outcome = interactive_path_learn(
        &graph,
        from,
        to,
        &goal,
        PathStrategy::Halving,
        Vec::new(),
        4,
    );
    let (_, report) = publish_graph_to_xml(&graph, &outcome.accepted_paths, &outcome.learned);
    println!(
        "{:<22} {:<44} {:>9} {:>9} {:>13}",
        "4 graph→XML",
        shorten(&report.source_query, 44),
        report.extracted_items,
        report.produced_items,
        outcome.interactions
    );
}
