//! Experiment E11 — crowdsourcing cost: when the oracle is a paid crowd worker, minimising
//! interactions is minimising money. The table prices interactive join-learning sessions under
//! the HIT cost model, comparing the plain strategies against the feature-guided variant that
//! pays a few feature-inference HITs up front (the Marcus-et-al. optimisation).
//!
//! Regenerate with `cargo run -p qbe-bench --bin exp_crowd_cost`.

use qbe_relational::crowd::crowdsourced_learn_with_features;
use qbe_relational::{
    crowdsourced_learn, generate_join_instance, HitPricing, JoinInstanceConfig, Strategy,
};

fn main() {
    println!("E11 — crowdsourced join learning: label HITs and total cost");
    println!(
        "{:<8} {:<26} {:>12} {:>14} {:>12}",
        "rows", "variant", "label HITs", "feature HITs", "total cost $"
    );
    let pricing = HitPricing {
        label_price: 0.05,
        feature_price: 0.02,
    };
    let seeds = qbe_bench::param(vec![3u64, 5, 8], vec![3]);
    for rows in qbe_bench::param(vec![20usize, 40, 80], vec![20]) {
        let mut rows_out: Vec<(String, f64, f64, f64)> = Vec::new();
        for (name, strategy) in [
            ("Random", Strategy::Random),
            ("MostSpecificFirst", Strategy::MostSpecificFirst),
            ("HalveLattice", Strategy::HalveLattice),
        ] {
            let mut label_hits = 0usize;
            let mut cost = 0.0;
            for &seed in &seeds {
                let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
                    left_rows: rows,
                    right_rows: rows,
                    extra_attributes: 2,
                    domain_size: 6,
                    seed,
                });
                let outcome = crowdsourced_learn(&left, &right, &goal, strategy, pricing, seed);
                label_hits += outcome.session.interactions;
                cost += outcome.total_cost;
            }
            let n = seeds.len() as f64;
            rows_out.push((name.to_string(), label_hits as f64 / n, 0.0, cost / n));
        }
        // Feature-guided variant: pay 3 feature HITs, then use the most benefiting strategy.
        {
            let mut label_hits = 0usize;
            let mut feature_hits = 0usize;
            let mut cost = 0.0;
            for &seed in &seeds {
                let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
                    left_rows: rows,
                    right_rows: rows,
                    extra_attributes: 2,
                    domain_size: 6,
                    seed,
                });
                let outcome =
                    crowdsourced_learn_with_features(&left, &right, &goal, 3, pricing, seed);
                label_hits += outcome.session.interactions;
                feature_hits += outcome.feature_hits;
                cost += outcome.total_cost;
            }
            let n = seeds.len() as f64;
            rows_out.push((
                "Features + MostSpecific".to_string(),
                label_hits as f64 / n,
                feature_hits as f64 / n,
                cost / n,
            ));
        }
        for (name, labels, features, cost) in rows_out {
            println!("{rows:<8} {name:<26} {labels:>12.1} {features:>14.1} {cost:>12.3}");
        }
    }
    println!(
        "\n(label HIT = ${:.2}, feature HIT = ${:.2})",
        pricing.label_price, pricing.feature_price
    );
}
