//! Experiment E12 — the relational baselines the paper positions itself against (§3 related
//! work): query by output (Tran et al.), view definition synthesis (Das Sarma et al.),
//! conditional functional dependency discovery (Fan et al.) and the Bancilhon–Paredaens
//! expressibility criterion.
//!
//! For each baseline the table reports whether it reverse-engineers the hidden goal query from
//! instance+output alone, how large the reconstruction is, and how long it takes — the contrast
//! the paper draws is that these approaches need the *whole* output to be given, while its
//! interactive framework only needs a handful of labelled examples (see E9).
//!
//! Regenerate with `cargo run -p qbe-bench --bin exp_baselines`.

use std::time::Instant;

use qbe_relational::bp::{bp_expressible, single_relation_instance};
use qbe_relational::cfd::{discover_constant_cfds, discover_fds};
use qbe_relational::query_by_output::{distinct_constants, query_by_output};
use qbe_relational::view_synthesis::synthesize_view;
use qbe_relational::{
    customers_orders_database, Condition, Instance, Relation, RelationSchema, SpjQuery, Tuple,
    Value,
};

/// A wider single-table instance: one row per order with customer attributes denormalised, so
/// selection queries over it have interesting correlated attributes.
fn orders_flat(customers: usize, orders_per_customer: usize, seed: u64) -> Relation {
    let db = customers_orders_database(customers, orders_per_customer, seed);
    let c = db
        .relation("customers")
        .expect("generator always emits customers");
    let o = db
        .relation("orders")
        .expect("generator always emits orders");
    let schema = RelationSchema::new(
        "orders_flat",
        &["oid", "cid", "city", "segment", "amount_band", "express"],
    );
    let mut out = Relation::new(schema);
    for (ix, order) in o.tuples().iter().enumerate() {
        let cid = order.get(o.schema().index_of("cid").expect("cid attribute"));
        let customer = c
            .tuples()
            .iter()
            .find(|t| t.get(c.schema().index_of("cid").expect("cid attribute")) == cid)
            .expect("every order references an existing customer");
        let city = customer
            .get(c.schema().index_of("city").expect("city attribute"))
            .clone();
        let amount = match order.get(o.schema().index_of("amount").expect("amount attribute")) {
            Value::Int(a) => *a,
            _ => 0,
        };
        out.insert(Tuple::new(vec![
            Value::Int(ix as i64),
            cid.clone(),
            city,
            Value::text(if ix % 3 == 0 { "consumer" } else { "business" }),
            Value::text(if amount > 50 { "high" } else { "low" }),
            Value::Bool(ix % 4 == 0),
        ]));
    }
    out
}

fn main() {
    println!("E12 — relational baselines: reverse-engineering queries from instance + output\n");

    // --- Query by output -------------------------------------------------------------------
    println!("query by output (TALOS-style decision tree):");
    println!(
        "{:<34} {:>9} {:>10} {:>11} {:>10} {:>10}",
        "goal query", "|output|", "recovered", "branches", "constants", "time (µs)"
    );
    let flat = orders_flat(12, 4, 7);
    let mut db = Instance::new();
    db.add(flat.clone());
    let goals: Vec<(&str, SpjQuery)> = vec![
        (
            "σ[city=Paris] π[oid]",
            SpjQuery::scan("orders_flat")
                .select(vec![Condition::AttrConst(
                    "city".into(),
                    Value::text("Paris"),
                )])
                .project(&["oid"]),
        ),
        (
            "σ[amount_band=high] π[oid]",
            SpjQuery::scan("orders_flat")
                .select(vec![Condition::AttrConst(
                    "amount_band".into(),
                    Value::text("high"),
                )])
                .project(&["oid"]),
        ),
        (
            "σ[segment=consumer ∧ express] π[oid]",
            SpjQuery::scan("orders_flat")
                .select(vec![
                    Condition::AttrConst("segment".into(), Value::text("consumer")),
                    Condition::AttrConst("express".into(), Value::Bool(true)),
                ])
                .project(&["oid"]),
        ),
        (
            "full projection π[cid]",
            SpjQuery::scan("orders_flat").project(&["cid"]),
        ),
    ];
    for (name, goal) in &goals {
        let output = goal
            .evaluate(&db)
            .expect("goal evaluates on the generated instance");
        let t = Instant::now();
        let learned = query_by_output(&db, &output);
        let micros = t.elapsed().as_micros();
        match learned {
            Ok(q) => println!(
                "{:<34} {:>9} {:>10} {:>11} {:>10} {:>10}",
                name,
                output.len(),
                "yes",
                q.branches.len(),
                distinct_constants(&q),
                micros
            ),
            Err(e) => println!(
                "{:<34} {:>9} {:>10} {:>11} {:>10} {:>10}",
                name,
                output.len(),
                format!("no ({e})"),
                "-",
                "-",
                micros
            ),
        }
    }

    // --- View synthesis ---------------------------------------------------------------------
    println!("\nview definition synthesis (most succinct exact definition):");
    println!(
        "{:<34} {:>8} {:>12} {:>12} {:>10}",
        "view", "|view|", "exact?", "conditions", "time (µs)"
    );
    for (name, goal) in &goals {
        let view = goal
            .evaluate(&db)
            .expect("goal evaluates on the generated instance");
        if view.is_empty() {
            continue;
        }
        let t = Instant::now();
        let outcome = synthesize_view(&db, &view);
        let micros = t.elapsed().as_micros();
        match outcome {
            Ok(o) => println!(
                "{:<34} {:>8} {:>12} {:>12} {:>10}",
                name,
                view.len(),
                if o.accuracy.is_exact() {
                    "exact"
                } else {
                    "approximate"
                },
                o.definition.size(),
                micros
            ),
            Err(e) => println!(
                "{:<34} {:>8} {:>12} {:>12} {:>10}",
                name,
                view.len(),
                format!("{e}"),
                "-",
                micros
            ),
        }
    }

    // --- CFD discovery ----------------------------------------------------------------------
    println!("\nconditional functional dependency discovery (levelwise, |lhs| ≤ 2):");
    println!(
        "{:<10} {:>8} {:>8} {:>14} {:>16} {:>12}",
        "rows", "minsup", "FDs", "constant CFDs", "all hold?", "time (µs)"
    );
    for rows in qbe_bench::param(vec![8usize, 16, 32, 64], vec![8, 16]) {
        let relation = orders_flat(rows, 3, rows as u64);
        for minsup in [2usize, 4] {
            let t = Instant::now();
            let fds = discover_fds(&relation, 2);
            let cfds = discover_constant_cfds(&relation, 2, minsup);
            let micros = t.elapsed().as_micros();
            let all_hold = cfds.iter().all(|c| c.holds(&relation));
            println!(
                "{:<10} {:>8} {:>8} {:>14} {:>16} {:>12}",
                relation.len(),
                minsup,
                fds.len(),
                cfds.len(),
                all_hold,
                micros
            );
        }
    }

    // --- BP-completeness --------------------------------------------------------------------
    println!("\nBancilhon–Paredaens expressibility (is there *any* algebra expression I → J?):");
    println!(
        "{:<44} {:>12} {:>14} {:>12}",
        "output", "expressible", "automorphisms", "time (µs)"
    );
    let input = single_relation_instance(orders_flat(10, 2, 3));
    let flat10 = orders_flat(10, 2, 3);
    let outputs: Vec<(&str, Relation)> = vec![
        (
            "π[cid] (projection of the input)",
            SpjQuery::scan("orders_flat")
                .project(&["cid"])
                .evaluate(&single_relation_instance(flat10.clone()))
                .expect("projection evaluates"),
        ),
        (
            "σ[express] π[oid]",
            SpjQuery::scan("orders_flat")
                .select(vec![Condition::AttrConst(
                    "express".into(),
                    Value::Bool(true),
                )])
                .project(&["oid"])
                .evaluate(&single_relation_instance(flat10.clone()))
                .expect("selection evaluates"),
        ),
        (
            "foreign constant {999}",
            Relation::with_tuples(
                RelationSchema::new("out", &["x"]),
                vec![Tuple::new(vec![Value::Int(999)])],
            ),
        ),
    ];
    for (name, output) in &outputs {
        let t = Instant::now();
        let verdict = bp_expressible(&input, output);
        let micros = t.elapsed().as_micros();
        println!(
            "{:<44} {:>12} {:>14} {:>12}",
            name, verdict.expressible, verdict.automorphism_count, micros
        );
    }

    println!(
        "\ncontrast with the paper's interactive framework: the baselines above need the full \
         output/view to be materialised by the user, while the interactive join learner (E9) \
         reaches the same goal query from a handful of labelled tuples."
    );
}
