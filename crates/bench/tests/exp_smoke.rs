//! Smoke test: every `exp_*` experiment binary must run to completion with
//! `--smoke`, so the experiment suite cannot silently rot.
//!
//! The binaries are invoked through `CARGO_BIN_EXE_<name>` (set by cargo for
//! integration tests of the package that owns them), so the already-built,
//! profile-matched executables run directly — no nested `cargo run`.

use std::process::Command;

/// The experiment binaries in `src/bin/`, with the paths cargo built them at.
/// Kept in sync with the directory by `all_experiment_binaries_are_listed`
/// below (a missing entry here is also a compile error in `env!`).
const EXPERIMENTS: &[(&str, &str)] = &[
    ("exp_algebra", env!("CARGO_BIN_EXE_exp_algebra")),
    ("exp_baselines", env!("CARGO_BIN_EXE_exp_baselines")),
    ("exp_crowd_cost", env!("CARGO_BIN_EXE_exp_crowd_cost")),
    ("exp_exchange", env!("CARGO_BIN_EXE_exp_exchange")),
    ("exp_graph_paths", env!("CARGO_BIN_EXE_exp_graph_paths")),
    ("exp_interactions", env!("CARGO_BIN_EXE_exp_interactions")),
    ("exp_noise", env!("CARGO_BIN_EXE_exp_noise")),
    (
        "exp_overspecialisation",
        env!("CARGO_BIN_EXE_exp_overspecialisation"),
    ),
    ("exp_perf", env!("CARGO_BIN_EXE_exp_perf")),
    (
        "exp_relational_consistency",
        env!("CARGO_BIN_EXE_exp_relational_consistency"),
    ),
    (
        "exp_schema_complexity",
        env!("CARGO_BIN_EXE_exp_schema_complexity"),
    ),
    (
        "exp_schema_learning",
        env!("CARGO_BIN_EXE_exp_schema_learning"),
    ),
    ("exp_sparql", env!("CARGO_BIN_EXE_exp_sparql")),
    ("exp_store", env!("CARGO_BIN_EXE_exp_store")),
    ("exp_strategies", env!("CARGO_BIN_EXE_exp_strategies")),
    (
        "exp_twig_consistency",
        env!("CARGO_BIN_EXE_exp_twig_consistency"),
    ),
    ("exp_twig_examples", env!("CARGO_BIN_EXE_exp_twig_examples")),
    ("exp_workload", env!("CARGO_BIN_EXE_exp_workload")),
    ("exp_xpathmark", env!("CARGO_BIN_EXE_exp_xpathmark")),
    // Not an exp_* table generator but held to the same bar: `qbe-server --smoke` serves one
    // session per model over loopback and self-checks the outcome.
    ("qbe-server", env!("CARGO_BIN_EXE_qbe-server")),
];

#[test]
fn every_experiment_runs_to_completion_in_smoke_mode() {
    for (name, exe) in EXPERIMENTS {
        let output = Command::new(exe)
            .arg("--smoke")
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn `{name}` ({exe}): {e}"));
        assert!(
            output.status.success(),
            "experiment `{name}` exited with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "experiment `{name}` printed nothing; every experiment reports a table"
        );
    }
}

#[test]
fn all_experiment_binaries_are_listed() {
    let manifest_dir = std::env::var("CARGO_MANIFEST_DIR").expect("cargo sets CARGO_MANIFEST_DIR");
    let bin_dir = std::path::Path::new(&manifest_dir).join("src/bin");
    let mut on_disk: Vec<String> = std::fs::read_dir(bin_dir)
        .expect("src/bin exists")
        .filter_map(|entry| {
            let name = entry.expect("readable dir entry").file_name();
            let name = name.to_string_lossy();
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    // Binary names may use dashes (`qbe-server`) while their source files use underscores;
    // compare under the filename convention.
    let mut listed: Vec<String> = EXPERIMENTS
        .iter()
        .map(|(n, _)| n.replace('-', "_"))
        .collect();
    listed.sort();
    assert_eq!(
        on_disk, listed,
        "src/bin and the EXPERIMENTS list are out of sync"
    );
}
