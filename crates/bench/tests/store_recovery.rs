//! Crash-recovery differential against the real `qbe-server` binary.
//!
//! A persistent server is killed with SIGKILL mid-session — no graceful shutdown, no `Close`
//! record, no final fsync — then restarted on the same `--data-dir`. The restarted server
//! must report the session as recovered, let a client `RESUME` it, and produce a continued
//! transcript byte-identical to an uninterrupted session driven with the same answer stream.
//!
//! The comparison uses a raw line-protocol wire (not [`qbe_server::Client`]) so replies are
//! compared verbatim, byte for byte, exactly as the acceptance criterion demands.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// Fresh per-test scratch directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qbe-store-recovery-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Spawn the server binary with persistence on, and parse the bound address out of the
/// "listening on" banner (the server binds an ephemeral port).
fn spawn_server(dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qbe-server"))
        .args(["--addr", "127.0.0.1:0", "--persist", "--data-dir"])
        .arg(dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("qbe-server spawns");
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("server prints its banner");
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_string();
    (child, addr)
}

/// One raw protocol connection: send a line, read the verbatim reply line.
struct Wire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Wire {
    fn connect(addr: &str) -> Wire {
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().unwrap();
        let mut wire = Wire {
            reader: BufReader::new(stream),
            writer,
        };
        let greeting = wire.read();
        assert!(greeting.starts_with("+OK"), "greeting: {greeting:?}");
        wire
    }

    fn read(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reply arrives");
        line.trim_end_matches(['\r', '\n']).to_string()
    }

    fn send(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("request sends");
        self.read()
    }
}

/// Drive up to `rounds` ASK/ANSWER rounds, answering from `answers` via the shared counter
/// `next`, stopping at the first non-question reply. Returns every reply verbatim.
fn run_rounds(wire: &mut Wire, rounds: usize, answers: &[bool], next: &mut usize) -> Vec<String> {
    let mut replies = Vec::new();
    for _ in 0..rounds {
        let ask = wire.send("ASK");
        let is_question = ask.starts_with("+ASK");
        replies.push(ask);
        if !is_question {
            break;
        }
        let positive = answers[*next % answers.len()];
        *next += 1;
        replies.push(wire.send(if positive { "ANSWER yes" } else { "ANSWER no" }));
    }
    replies
}

#[test]
fn sigkilled_server_resumes_sessions_byte_identically() {
    let dir = temp_dir("sigkill");
    let answers = [true, false, false, true, true, false];
    const PRE: usize = 3; // rounds before the kill
    const POST: usize = 64; // generous: both runs stop at +DONE on their own

    // Original server: start a session, answer a few questions, then die hard.
    let (mut server_a, addr_a) = spawn_server(&dir);
    let mut wire = Wire::connect(&addr_a);
    assert!(wire.send("CORPUS tiny").starts_with("+OK"));
    assert_eq!(
        wire.send("START twig seed=7"),
        "+OK session id=1 model=twig"
    );
    let mut next = 0usize;
    let pre_replies = run_rounds(&mut wire, PRE, &answers, &mut next);
    server_a.kill().expect("SIGKILL delivered");
    server_a.wait().expect("killed server reaped");
    drop(wire);

    // Restarted server on the same data dir: the session must come back.
    let (mut server_b, addr_b) = spawn_server(&dir);
    let mut resumed = Wire::connect(&addr_b);
    assert_eq!(resumed.send("RESUME 1"), "+OK session id=1 model=twig");
    let metrics = resumed.send("METRICS");
    assert!(metrics.contains(" recovered=1"), "metrics: {metrics:?}");
    let mut next_resumed = next;
    let resumed_replies = run_rounds(&mut resumed, POST, &answers, &mut next_resumed);
    let resumed_query = resumed.send("QUERY");
    let resumed_eval = resumed.send("EVAL");

    // Reference: an uninterrupted session on the restarted server, same seed, same answer
    // stream from the top. Its id must be past the recovered one (the allocator moved on).
    let mut reference = Wire::connect(&addr_b);
    assert!(reference.send("CORPUS tiny").starts_with("+OK"));
    let started = reference.send("START twig seed=7");
    let fresh_id: u64 = started
        .strip_prefix("+OK session id=")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|id| id.parse().ok())
        .unwrap_or_else(|| panic!("unexpected START reply: {started:?}"));
    assert!(
        fresh_id > 1,
        "fresh ids must not collide with recovered ones"
    );
    let mut next_ref = 0usize;
    let ref_pre = run_rounds(&mut reference, PRE, &answers, &mut next_ref);
    let ref_post = run_rounds(&mut reference, POST, &answers, &mut next_ref);
    let ref_query = reference.send("QUERY");
    let ref_eval = reference.send("EVAL");

    assert_eq!(pre_replies, ref_pre, "pre-kill transcripts diverge");
    assert_eq!(
        resumed_replies, ref_post,
        "post-recovery transcripts diverge"
    );
    assert_eq!(next_resumed, next_ref, "answer consumption diverges");
    assert_eq!(resumed_query, ref_query);
    assert_eq!(resumed_eval, ref_eval);

    assert_eq!(resumed.send("QUIT"), "+OK bye");
    assert_eq!(reference.send("QUIT"), "+OK bye");
    server_b.kill().ok();
    server_b.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quit_sessions_stay_closed_across_a_kill() {
    let dir = temp_dir("closed");
    let (mut server_a, addr_a) = spawn_server(&dir);
    let mut wire = Wire::connect(&addr_a);
    assert!(wire.send("CORPUS tiny").starts_with("+OK"));
    assert_eq!(
        wire.send("START join seed=1"),
        "+OK session id=1 model=join"
    );
    assert_eq!(wire.send("QUIT"), "+OK bye");
    drop(wire);
    server_a.kill().expect("SIGKILL delivered");
    server_a.wait().expect("killed server reaped");

    let (mut server_b, addr_b) = spawn_server(&dir);
    let mut wire = Wire::connect(&addr_b);
    assert_eq!(wire.send("RESUME 1"), "-ERR unknown session 1");
    let metrics = wire.send("METRICS");
    assert!(metrics.contains(" recovered=0"), "metrics: {metrics:?}");
    server_b.kill().ok();
    server_b.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}
