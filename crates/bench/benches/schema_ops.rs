//! Criterion bench for E5: the static-analysis primitives of the multiplicity schemas — schema
//! containment, dependency-graph construction, query satisfiability, document validation and
//! schema learning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbe_schema::{dms_from_dtd, learn_dms, schema_contained_in, DependencyGraph, Dms};
use qbe_twig::{parse_xpath, query_satisfiable};
use qbe_xml::xmark::{generate, xmark_dtd, XmarkConfig};
use qbe_xml::XmlTree;
use std::hint::black_box;

fn xmark_schema() -> Dms {
    dms_from_dtd(&xmark_dtd()).expect("XMark DTD converts")
}

fn bench_containment(c: &mut Criterion) {
    let schema = xmark_schema();
    let docs: Vec<XmlTree> = (0..4)
        .map(|s| generate(&XmarkConfig::new(0.03, s)))
        .collect();
    let learned = learn_dms(&docs).unwrap();
    c.bench_function("schema_ops/containment", |b| {
        b.iter(|| schema_contained_in(black_box(&learned), black_box(&schema)))
    });
}

fn bench_dependency_graph(c: &mut Criterion) {
    let schema = xmark_schema();
    c.bench_function("schema_ops/dependency_graph", |b| {
        b.iter(|| DependencyGraph::from_schema(black_box(&schema)))
    });
}

fn bench_query_satisfiability(c: &mut Criterion) {
    let schema = xmark_schema();
    let queries = ["//person/name", "//item/description", "//bidder/increase"];
    let mut group = c.benchmark_group("schema_ops/satisfiability");
    for xpath in queries {
        let q = parse_xpath(xpath).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(xpath), &q, |b, q| {
            b.iter(|| query_satisfiable(black_box(&schema), black_box(q)))
        });
    }
    group.finish();
}

fn bench_validation(c: &mut Criterion) {
    let schema = xmark_schema();
    let mut group = c.benchmark_group("schema_ops/validate");
    group.sample_size(30);
    for scale in [0.02f64, 0.05, 0.1] {
        let doc = generate(&XmarkConfig::new(scale, 9));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scale}({} nodes)", doc.size())),
            &doc,
            |b, doc| b.iter(|| schema.validate(black_box(doc))),
        );
    }
    group.finish();
}

fn bench_schema_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("schema_ops/learn_dms");
    group.sample_size(20);
    for n in [2usize, 4, 8] {
        let docs: Vec<XmlTree> = (0..n as u64)
            .map(|s| generate(&XmarkConfig::new(0.02, s)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &docs, |b, docs| {
            b.iter(|| learn_dms(black_box(docs)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_containment,
    bench_dependency_graph,
    bench_query_satisfiability,
    bench_validation,
    bench_schema_learning
);
criterion_main!(benches);
