//! Criterion bench for E9: full interactive join-learning sessions — wall time per strategy and
//! per instance size (the user-facing cost, the number of interactions, is reported by the
//! `exp_interactions` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbe_relational::{generate_join_instance, interactive_learn, JoinInstanceConfig, Strategy};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("interactive/strategy");
    group.sample_size(20);
    let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
        left_rows: 40,
        right_rows: 40,
        extra_attributes: 2,
        domain_size: 6,
        seed: 5,
    });
    for strategy in [
        Strategy::Random,
        Strategy::MostSpecificFirst,
        Strategy::HalveLattice,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    interactive_learn(
                        black_box(&left),
                        black_box(&right),
                        black_box(&goal),
                        strategy,
                        7,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_instance_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("interactive/rows");
    group.sample_size(10);
    for rows in [20usize, 40, 80, 160] {
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
            left_rows: rows,
            right_rows: rows,
            extra_attributes: 2,
            domain_size: 6,
            seed: 9,
        });
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| {
                interactive_learn(
                    black_box(&left),
                    black_box(&right),
                    black_box(&goal),
                    Strategy::HalveLattice,
                    3,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_instance_size);
criterion_main!(benches);
