//! Criterion bench for E8: batch join learning and the join/semijoin consistency checks on
//! instances of growing size and arity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbe_relational::{
    generate_join_instance, join_consistent, semijoin_consistent_exact, semijoin_learn_greedy,
    JoinInstanceConfig, LabelledPair, LabelledTuple,
};
use std::hint::black_box;

fn labels_for(
    left: &qbe_relational::Relation,
    right: &qbe_relational::Relation,
    goal: &qbe_relational::JoinPredicate,
    n: usize,
) -> Vec<LabelledPair> {
    (0..n)
        .map(|i| {
            let l = i % left.len();
            let r = (i * 7 + 3) % right.len();
            LabelledPair::new(
                l,
                r,
                goal.satisfied_by(&left.tuples()[l], &right.tuples()[r]),
            )
        })
        .collect()
}

fn bench_join_consistency_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_learning/consistency_rows");
    for rows in [50usize, 100, 200, 400] {
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
            left_rows: rows,
            right_rows: rows,
            extra_attributes: 2,
            domain_size: 8,
            seed: 1,
        });
        let labels = labels_for(&left, &right, &goal, rows);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &labels, |b, labels| {
            b.iter(|| join_consistent(black_box(&left), black_box(&right), black_box(labels)))
        });
    }
    group.finish();
}

fn bench_semijoin_exact_vs_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_learning/semijoin");
    group.sample_size(10);
    for extra in [1usize, 2, 3] {
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
            left_rows: 25,
            right_rows: 25,
            extra_attributes: extra,
            domain_size: 6,
            seed: 2,
        });
        let labels: Vec<LabelledTuple> = (0..left.len())
            .map(|i| {
                let has = right
                    .tuples()
                    .iter()
                    .any(|r| goal.satisfied_by(&left.tuples()[i], r));
                LabelledTuple::new(i, has)
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("exact", extra), &labels, |b, labels| {
            b.iter(|| {
                semijoin_consistent_exact(black_box(&left), black_box(&right), black_box(labels))
            })
        });
        group.bench_with_input(BenchmarkId::new("greedy", extra), &labels, |b, labels| {
            b.iter(|| semijoin_learn_greedy(black_box(&left), black_box(&right), black_box(labels)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_join_consistency_rows,
    bench_semijoin_exact_vs_greedy
);
criterion_main!(benches);
