//! Criterion bench for E7: evaluating and learning the twig-expressible queries of the
//! XPathMark-like suite over XMark-like documents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbe_twig::xpathmark::{suite, twig_goals};
use qbe_twig::{learn_from_positives, select};
use qbe_xml::xmark::{generate, XmarkConfig};
use std::hint::black_box;

fn bench_suite_evaluation(c: &mut Criterion) {
    let doc = generate(&XmarkConfig::new(0.1, 3));
    let mut group = c.benchmark_group("xpathmark/evaluate");
    for q in suite() {
        let Some(twig) = q.as_twig() else { continue };
        group.bench_with_input(BenchmarkId::from_parameter(q.id), &twig, |b, twig| {
            b.iter(|| select(black_box(twig), black_box(&doc)))
        });
    }
    group.finish();
}

fn bench_suite_learning(c: &mut Criterion) {
    let doc = generate(&XmarkConfig::new(0.05, 3));
    let mut group = c.benchmark_group("xpathmark/learn");
    for (id, goal) in twig_goals() {
        let nodes: Vec<_> = select(&goal, &doc).into_iter().take(2).collect();
        if nodes.len() < 2 {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(id), &nodes, |b, nodes| {
            b.iter(|| {
                let examples: Vec<_> = nodes.iter().map(|&n| (&doc, n)).collect();
                learn_from_positives(black_box(&examples)).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suite_evaluation, bench_suite_learning);
criterion_main!(benches);
