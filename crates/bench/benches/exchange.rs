//! Criterion bench for E1: the end-to-end cross-model exchange pipelines (learning included),
//! one benchmark per Figure-1 scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use qbe_exchange::{
    learned_publish_relational_to_xml, learned_shred_xml_to_relational, publish_graph_to_xml,
    shred_xml_to_graph,
};
use qbe_graph::{
    generate_geo_graph, interactive_path_learn, GeoConfig, PathConstraint, PathStrategy,
};
use qbe_relational::{customers_orders_database, JoinPredicate};
use qbe_twig::{learn_from_positives, parse_xpath, select};
use qbe_xml::xmark::{generate, XmarkConfig};
use std::hint::black_box;

fn bench_scenario_1(c: &mut Criterion) {
    let db = customers_orders_database(30, 2, 3);
    let customers = db.relation("customers").unwrap().clone();
    let orders = db.relation("orders").unwrap().clone();
    let goal =
        JoinPredicate::from_names(customers.schema(), orders.schema(), &[("cid", "cid")]).unwrap();
    c.bench_function("exchange/relational_to_xml", |b| {
        b.iter(|| {
            learned_publish_relational_to_xml(
                black_box(&customers),
                black_box(&orders),
                black_box(&goal),
                "sales",
                1,
            )
        })
    });
}

fn bench_scenario_2(c: &mut Criterion) {
    let doc = generate(&XmarkConfig::new(0.05, 7));
    let goal = parse_xpath("//person/name").unwrap();
    let annotated: Vec<_> = select(&goal, &doc).into_iter().take(2).collect();
    c.bench_function("exchange/xml_to_relational", |b| {
        b.iter(|| {
            learned_shred_xml_to_relational(black_box(&doc), black_box(&annotated), "names")
                .unwrap()
        })
    });
}

fn bench_scenario_3(c: &mut Criterion) {
    let doc = generate(&XmarkConfig::new(0.05, 7));
    let items = doc.nodes_with_label("item");
    let examples: Vec<_> = items.iter().take(2).map(|&n| (&doc, n)).collect();
    let query = learn_from_positives(&examples).unwrap();
    c.bench_function("exchange/xml_to_graph", |b| {
        b.iter(|| shred_xml_to_graph(black_box(&doc), black_box(&query)))
    });
}

fn bench_scenario_4(c: &mut Criterion) {
    let graph = generate_geo_graph(&GeoConfig {
        cities: 25,
        ..Default::default()
    });
    let from = graph.find_node_by_property("name", "city0").unwrap();
    let to = graph.find_node_by_property("name", "city6").unwrap();
    let goal = PathConstraint {
        road_type: Some("highway".to_string()),
        max_distance: None,
        via: None,
    };
    let outcome = interactive_path_learn(
        &graph,
        from,
        to,
        &goal,
        PathStrategy::Halving,
        Vec::new(),
        2,
    );
    c.bench_function("exchange/graph_to_xml", |b| {
        b.iter(|| {
            publish_graph_to_xml(
                black_box(&graph),
                black_box(&outcome.accepted_paths),
                black_box(&outcome.learned),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_scenario_1,
    bench_scenario_2,
    bench_scenario_3,
    bench_scenario_4
);
criterion_main!(benches);
