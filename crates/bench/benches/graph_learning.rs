//! Criterion bench for E10: the graph substrate — RPQ evaluation, simple-path enumeration,
//! block-path-query learning, and full interactive path sessions on geographical graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbe_graph::{
    evaluate, generate_geo_graph, interactive_path_learn, learn_path_query_with_negatives,
    simple_paths, GeoConfig, PathConstraint, PathRegex, PathStrategy,
};
use std::hint::black_box;

fn bench_rpq_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_learning/rpq");
    group.sample_size(30);
    let regex = PathRegex::Concat(vec![
        PathRegex::label("road"),
        PathRegex::Star(Box::new(PathRegex::label("road"))),
    ]);
    for cities in [20usize, 40, 80] {
        let graph = generate_geo_graph(&GeoConfig {
            cities,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(cities), &graph, |b, graph| {
            b.iter(|| evaluate(black_box(graph), black_box(&regex)))
        });
    }
    group.finish();
}

fn bench_simple_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_learning/simple_paths");
    group.sample_size(20);
    for cities in [20usize, 35, 50] {
        let graph = generate_geo_graph(&GeoConfig {
            cities,
            ..Default::default()
        });
        let from = graph.find_node_by_property("name", "city0").unwrap();
        let to = graph.find_node_by_property("name", "city5").unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(cities), &graph, |b, graph| {
            b.iter(|| simple_paths(black_box(graph), from, to, 6))
        });
    }
    group.finish();
}

fn bench_path_query_learning(c: &mut Criterion) {
    let positives: Vec<Vec<String>> = (1..6)
        .map(|n| std::iter::repeat_n("highway".to_string(), n).collect())
        .collect();
    let negatives = vec![
        vec!["highway".to_string(), "local".to_string()],
        vec!["national".to_string()],
    ];
    c.bench_function("graph_learning/learn_block_query", |b| {
        b.iter(|| {
            learn_path_query_with_negatives(black_box(&positives), black_box(&negatives)).unwrap()
        })
    });
}

fn bench_interactive_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_learning/interactive");
    group.sample_size(10);
    let goal = PathConstraint {
        road_type: Some("highway".to_string()),
        max_distance: None,
        via: None,
    };
    for cities in [20usize, 30, 40] {
        let graph = generate_geo_graph(&GeoConfig {
            cities,
            ..Default::default()
        });
        let from = graph.find_node_by_property("name", "city0").unwrap();
        let to = graph.find_node_by_property("name", "city5").unwrap();
        if simple_paths(&graph, from, to, 7).is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(cities), &graph, |b, graph| {
            b.iter(|| {
                interactive_path_learn(
                    black_box(graph),
                    from,
                    to,
                    &goal,
                    PathStrategy::Halving,
                    Vec::new(),
                    3,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rpq_evaluation,
    bench_simple_paths,
    bench_path_query_learning,
    bench_interactive_session
);
criterion_main!(benches);
