//! Criterion benchmarks for the related-work baselines (experiment E12): query by output,
//! view synthesis, CFD discovery and the BP-expressibility test, on instances of growing size —
//! plus the twig-evaluation baseline pair (naive embedding table vs the indexed engine) that
//! quantifies the speedup the interactive sessions ride on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qbe_core::relational::bp::{bp_expressible, single_relation_instance};
use qbe_core::relational::cfd::discover_constant_cfds;
use qbe_core::relational::query_by_output::query_by_output;
use qbe_core::relational::view_synthesis::synthesize_view;
use qbe_core::relational::{
    customers_orders_database, Condition, Instance, Relation, SpjQuery, Value,
};
use qbe_core::twig::{eval, eval_indexed, parse_xpath};
use qbe_core::xml::xmark::{generate, XmarkConfig};
use qbe_core::xml::NodeIndex;

/// The orders relation of the generated customers/orders database, as a standalone instance.
fn orders_instance(
    customers: usize,
    orders_per_customer: usize,
    seed: u64,
) -> (Instance, Relation) {
    let db = customers_orders_database(customers, orders_per_customer, seed);
    let orders = db.relation("orders").expect("orders relation").clone();
    let mut single = Instance::new();
    single.add(orders.clone());
    (single, orders)
}

fn goal_output(db: &Instance) -> Relation {
    SpjQuery::scan("orders")
        .select(vec![Condition::AttrConst("cid".into(), Value::Int(1))])
        .project(&["oid"])
        .evaluate(db)
        .expect("goal query evaluates")
}

fn bench_query_by_output(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/query_by_output");
    group.sample_size(20);
    for customers in [5usize, 10, 20] {
        let (db, _) = orders_instance(customers, 4, 7);
        let output = goal_output(&db);
        group.bench_with_input(BenchmarkId::from_parameter(customers * 4), &db, |b, db| {
            b.iter(|| query_by_output(black_box(db), black_box(&output)))
        });
    }
    group.finish();
}

fn bench_view_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/view_synthesis");
    group.sample_size(20);
    for customers in [5usize, 10, 20] {
        let (db, _) = orders_instance(customers, 4, 7);
        let view = goal_output(&db);
        group.bench_with_input(BenchmarkId::from_parameter(customers * 4), &db, |b, db| {
            b.iter(|| synthesize_view(black_box(db), black_box(&view)))
        });
    }
    group.finish();
}

fn bench_cfd_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/cfd_discovery");
    group.sample_size(20);
    for customers in [5usize, 10, 20] {
        let (_, orders) = orders_instance(customers, 4, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(orders.len()),
            &orders,
            |b, orders| b.iter(|| discover_constant_cfds(black_box(orders), 2, 2)),
        );
    }
    group.finish();
}

fn bench_bp_expressibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/bp_expressibility");
    group.sample_size(10);
    for customers in [4usize, 6, 8] {
        let (db, orders) = orders_instance(customers, 2, 7);
        let output = goal_output(&db);
        let single = single_relation_instance(orders);
        group.bench_with_input(
            BenchmarkId::from_parameter(customers * 2),
            &single,
            |b, single| b.iter(|| bp_expressible(black_box(single), black_box(&output))),
        );
    }
    group.finish();
}

/// Twig `select` on an XMark document: the naive dense-table evaluator against the indexed
/// postings-intersection evaluator over a prebuilt `NodeIndex`. Same queries, same document —
/// the ratio between the two groups is the per-evaluation speedup every learner session sees.
fn bench_twig_select(c: &mut Criterion) {
    let doc = generate(&XmarkConfig::new(0.05, 7));
    let index = NodeIndex::build(&doc);
    let queries = [
        "//person/name",
        "/site/people/person[emailaddress]",
        "//item[name]",
        "/site//open_auction",
    ];
    let mut group = c.benchmark_group("baselines/twig_select_naive");
    for q in queries {
        let query = parse_xpath(q).expect("query parses");
        group.bench_with_input(BenchmarkId::from_parameter(q), &doc, |b, doc| {
            b.iter(|| eval::select(black_box(&query), black_box(doc)))
        });
    }
    group.finish();
    let mut group = c.benchmark_group("baselines/twig_select_indexed");
    for q in queries {
        let query = parse_xpath(q).expect("query parses");
        group.bench_with_input(BenchmarkId::from_parameter(q), &doc, |b, doc| {
            b.iter(|| eval_indexed::select(black_box(&query), black_box(doc), black_box(&index)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_query_by_output,
    bench_view_synthesis,
    bench_cfd_discovery,
    bench_bp_expressibility,
    bench_twig_select
);
criterion_main!(benches);
