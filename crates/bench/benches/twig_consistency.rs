//! Criterion bench for E4: consistency checking with positive and negative examples — the
//! polynomial most-specific check versus the exhaustive (exponential) search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbe_twig::consistency::exhaustive_consistent;
use qbe_twig::{most_specific_consistent, parse_xpath, ExampleSet};
use qbe_xml::random::{RandomTreeConfig, RandomTreeGenerator};
use qbe_xml::XmlTree;
use std::hint::black_box;

fn example_set(negatives: usize, seed: u64) -> ExampleSet {
    let cfg = RandomTreeConfig {
        alphabet: ('a'..='e').map(|c| c.to_string()).collect(),
        max_depth: 4,
        max_children: 3,
        ..Default::default()
    };
    let mut gen = RandomTreeGenerator::new(cfg, seed);
    let mut docs = gen.generate_many(3);
    for d in &mut docs {
        d.set_label(XmlTree::ROOT, "root");
    }
    let goal = parse_xpath("//a[b]").unwrap();
    ExampleSet::from_goal(&goal, docs, 2, negatives, seed)
}

fn bench_polynomial_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("twig_consistency/most_specific");
    for negatives in [2usize, 8, 32, 128] {
        let set = example_set(negatives, negatives as u64);
        group.bench_with_input(BenchmarkId::from_parameter(negatives), &set, |b, set| {
            b.iter(|| most_specific_consistent(black_box(set)))
        });
    }
    group.finish();
}

fn bench_exhaustive_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("twig_consistency/exhaustive");
    group.sample_size(10);
    for max_nodes in [2usize, 3, 4] {
        let set = example_set(4, 7);
        group.bench_with_input(BenchmarkId::from_parameter(max_nodes), &set, |b, set| {
            b.iter(|| exhaustive_consistent(black_box(set), max_nodes))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_polynomial_check, bench_exhaustive_search);
criterion_main!(benches);
