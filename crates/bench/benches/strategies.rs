//! Criterion benchmark for the pluggable question-selection strategies: one goal-driven
//! session per shipped strategy, on the two workloads the paper leads with — twig learning
//! over an XMark document and path learning over the geographical (RPQ) graph.
//!
//! Wall-clock per strategy is what criterion measures; the questions each strategy asked (the
//! paper's cost metric) are printed once per benchmark so a run shows both sides of the
//! trade-off: informed strategies spend more picking to ask less.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbe_core::graph::{generate_geo_graph, interactive::PathConstraint, GeoConfig};
use qbe_core::relational::{generate_join_instance, JoinInstanceConfig};
use qbe_core::session::drive;
use qbe_core::twig::parse_xpath;
use qbe_core::xml::xmark::{generate, XmarkConfig};
use qbe_core::xml::NodeIndex;
use qbe_core::{JoinInteractive, PathInteractive, SessionConfig, TwigInteractive, STRATEGY_NAMES};
use std::sync::Arc;

fn config(strategy: &str, seed: u64) -> SessionConfig {
    SessionConfig::new()
        .seed(seed)
        .strategy_named(strategy)
        .expect("shipped strategy names resolve")
}

fn bench_twig_strategies(c: &mut Criterion) {
    let docs = Arc::new(vec![generate(&XmarkConfig::new(0.01, 7))]);
    let indexes: Arc<Vec<NodeIndex>> = Arc::new(docs.iter().map(NodeIndex::build).collect());
    let goal = parse_xpath("//person/name").unwrap();
    let mut group = c.benchmark_group("strategies/twig_xmark");
    group.sample_size(10);
    for &strategy in STRATEGY_NAMES {
        // Report the question count once, so the bench table reads next to the cost table.
        let mut learner =
            TwigInteractive::with_config(docs.clone(), indexes.clone(), config(strategy, 7))
                .with_goal(goal.clone());
        let report = drive(strategy, &mut learner);
        println!(
            "strategies/twig_xmark/{strategy}: {} questions",
            report.questions
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut learner = TwigInteractive::with_config(
                        docs.clone(),
                        indexes.clone(),
                        config(strategy, 7),
                    )
                    .with_goal(goal.clone());
                    drive(strategy, &mut learner)
                })
            },
        );
    }
    group.finish();
}

fn bench_path_strategies(c: &mut Criterion) {
    let graph = Arc::new(generate_geo_graph(&GeoConfig {
        cities: 16,
        connectivity: 3,
        ..Default::default()
    }));
    let from = graph.find_node_by_property("name", "city0").unwrap();
    let to = graph.find_node_by_property("name", "city5").unwrap();
    let goal = PathConstraint {
        road_type: Some("highway".to_string()),
        max_distance: None,
        via: None,
    };
    let mut group = c.benchmark_group("strategies/path_geo");
    group.sample_size(10);
    for &strategy in STRATEGY_NAMES {
        let mut learner =
            PathInteractive::with_config(graph.clone(), from, to, 8, config(strategy, 5))
                .with_goal(goal.clone());
        let report = drive(strategy, &mut learner);
        println!(
            "strategies/path_geo/{strategy}: {} questions",
            report.questions
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut learner = PathInteractive::with_config(
                        graph.clone(),
                        from,
                        to,
                        8,
                        config(strategy, 5),
                    )
                    .with_goal(goal.clone());
                    drive(strategy, &mut learner)
                })
            },
        );
    }
    group.finish();
}

fn bench_join_strategies(c: &mut Criterion) {
    let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
        left_rows: 30,
        right_rows: 30,
        extra_attributes: 2,
        domain_size: 6,
        seed: 11,
    });
    let (left, right) = (Arc::new(left), Arc::new(right));
    let mut group = c.benchmark_group("strategies/join_pairs");
    group.sample_size(10);
    for &strategy in STRATEGY_NAMES {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut learner = JoinInteractive::with_config(
                        left.clone(),
                        right.clone(),
                        config(strategy, 11),
                    )
                    .with_goal(goal.clone());
                    drive(strategy, &mut learner)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_twig_strategies,
    bench_path_strategies,
    bench_join_strategies
);
criterion_main!(benches);
