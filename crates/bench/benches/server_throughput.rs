//! Criterion benchmark for the serving layer: full learning sessions over loopback TCP,
//! on both engines, plus the 10k-connection soak the event-driven rewrite exists for.
//!
//! Part 1 (criterion group): one `qbe-server` instance per engine serves complete twig
//! sessions (connect, CORPUS, START, ASK/ANSWER to convergence, QUERY, EVAL, QUIT) with 1
//! client and with N concurrent clients. The 1-vs-N ratio shows how much of the service's
//! capacity concurrent users actually get; the event-vs-blocking comparison shows the
//! readiness loop costs nothing at small scale.
//!
//! Part 2 (soak, printed report): the server runs as a *subprocess* (each side of the
//! loopback then owns its half of the fds, so 10k+ concurrent connections fit inside
//! commodity `RLIMIT_NOFILE` limits), 10k+ connections each open a live learning session and
//! go idle, and request-round latency is sampled through the crowd before and after. The
//! p50/p95 round latencies are printed side by side — the acceptance criterion is that p95
//! stays flat (idle readiness costs nothing per event-loop turn), and a full learning session
//! still converges through the 10k-session crowd.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbe_core::workload::duration_percentile;
use qbe_server::client::{drive_goal_session, Goal};
use qbe_server::server::{spawn, Engine, ServerConfig};

fn bench_server_throughput(c: &mut Criterion) {
    // At least 2 so the concurrent arm is a real multiplexing measurement even on one core
    // (sessions interleave through the serving layer regardless of core count).
    let parallel = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4)
        .max(2);
    let mut group = c.benchmark_group("server/throughput");
    group.sample_size(10);
    for engine in [Engine::Event, Engine::Blocking] {
        let handle = spawn(ServerConfig {
            engine,
            ..Default::default()
        })
        .expect("bind 127.0.0.1:0");
        let addr = handle.addr();
        // Warm the corpus cache so the first measured session does not pay the build.
        drive_goal_session(addr, "tiny", &Goal::Twig("//person/name".to_string()), &[])
            .expect("warm-up session");
        for clients in [1usize, parallel] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{}/clients={clients}", engine.name())),
                &clients,
                |b, &clients| {
                    b.iter(|| {
                        // Every client runs the same goal (distinct seeds/sessions), so the
                        // 1-vs-N ratio isolates serving-layer multiplexing from per-goal
                        // learning cost.
                        std::thread::scope(|scope| {
                            let handles: Vec<_> = (0..clients)
                                .map(|ix| {
                                    let seed = ix.to_string();
                                    scope.spawn(move || {
                                        drive_goal_session(
                                            addr,
                                            "tiny",
                                            &Goal::Twig("//person/name".to_string()),
                                            &[("seed", &seed)],
                                        )
                                        .expect("session completes")
                                    })
                                })
                                .collect();
                            let outcomes: Vec<_> =
                                handles.into_iter().map(|h| h.join().unwrap()).collect();
                            assert!(outcomes.iter().all(|o| o.consistent));
                            outcomes
                        })
                    })
                },
            );
        }
        handle.shutdown();
    }
    group.finish();

    soak_10k_sessions();
}

/// Spawn the service binary on an ephemeral port and parse the bound address from its
/// banner. Subprocess, not in-process: the bench process needs its fd budget for the client
/// side of 10k+ connections.
fn spawn_server_subprocess(max_connections: usize) -> (std::process::Child, SocketAddr) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_qbe-server"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--engine",
            "event",
            "--max-connections",
            &max_connections.to_string(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("qbe-server subprocess starts");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("server banner");
    // "qbe-server listening on 127.0.0.1:PORT (engine event; …)"
    let addr = banner
        .split_whitespace()
        .find_map(|tok| tok.parse::<SocketAddr>().ok())
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"));
    (child, addr)
}

/// A one-fd protocol connection: `Client` duplicates its stream (two fds per connection),
/// which would halve how many crowd members fit in the process's `RLIMIT_NOFILE`.
struct LeanConn {
    reader: BufReader<TcpStream>,
    line: String,
}

impl LeanConn {
    fn connect(addr: SocketAddr) -> std::io::Result<LeanConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut conn = LeanConn {
            reader: BufReader::new(stream),
            line: String::new(),
        };
        let greeting = conn.read_line()?;
        if !greeting.starts_with("+OK") {
            return Err(std::io::Error::other(greeting));
        }
        Ok(conn)
    }

    fn read_line(&mut self) -> std::io::Result<&str> {
        self.line.clear();
        self.reader.read_line(&mut self.line)?;
        Ok(self.line.trim_end())
    }

    fn roundtrip(&mut self, request: &str) -> std::io::Result<&str> {
        let mut sock = self.reader.get_ref();
        sock.write_all(request.as_bytes())?;
        sock.write_all(b"\n")?;
        self.read_line()
    }

    fn expect_ok(&mut self, request: &str) {
        let reply = self.roundtrip(request).expect("reply");
        assert!(reply.starts_with("+OK"), "{request}: {reply}");
    }
}

/// `samples` HELLO round trips on one fresh connection: the serving layer's full
/// request-round path (readiness loop → worker pool → reply flush), independent of learner
/// semantics.
fn sample_round_latency(addr: SocketAddr, samples: usize) -> Vec<Duration> {
    let mut conn = LeanConn::connect(addr).expect("latency probe connects");
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            conn.expect_ok("HELLO");
            start.elapsed()
        })
        .collect()
}

fn soak_10k_sessions() {
    // Full size: the ISSUE's 10k+ concurrent sessions. Smoke: enough connections to exceed
    // any thread-per-connection comfort zone while staying CI-fast.
    let target: usize = qbe_bench::param(10_000, 256);
    // Stay within this process's fd budget: the client side holds one fd per connection plus
    // the binary's own overhead (the server side lives in the subprocess's own fd table).
    let budget = qbe_server::poll::raise_fd_limit(target as u64 + 512);
    let conns = target.min(budget.saturating_sub(512) as usize);
    if conns < target {
        println!(
            "server/soak: RLIMIT_NOFILE {budget} caps the soak at {conns} connections \
             (wanted {target})"
        );
    }
    let (mut child, addr) = spawn_server_subprocess(conns + 64);

    let samples = qbe_bench::param(300, 50);
    let baseline = sample_round_latency(addr, samples);

    // Open the crowd: every connection CORPUSes and STARTs a twig session, then goes idle —
    // live sessions in the registry, live sockets in the readiness loop.
    let threads = qbe_bench::param(16usize, 8);
    let opened = Instant::now();
    let crowd: Vec<LeanConn> = std::thread::scope(|scope| {
        let per = conns.div_ceil(threads);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let quota = per.min(conns.saturating_sub(t * per));
                    (0..quota)
                        .map(|i| {
                            let mut conn = LeanConn::connect(addr)
                                .unwrap_or_else(|e| panic!("conn {t}/{i}: {e}"));
                            conn.expect_ok("CORPUS tiny");
                            conn.expect_ok(&format!("START twig seed={t}{i}"));
                            conn
                        })
                        .collect::<Vec<LeanConn>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let opened_in = opened.elapsed();
    assert_eq!(crowd.len(), conns);

    // The acceptance measurement: round latency through the full crowd.
    let loaded = sample_round_latency(addr, samples);
    // And a complete learning session still converges through it.
    let outcome = drive_goal_session(
        addr,
        "tiny",
        &Goal::Twig("//person/name".to_string()),
        &[("seed", "7")],
    )
    .expect("session converges through the crowd");
    assert!(outcome.consistent);

    let p = |v: &[Duration], q: f64| duration_percentile(v.iter().copied(), q).unwrap();
    println!(
        "server/soak: {conns} concurrent sessions (opened in {opened_in:.1?}); round latency \
         idle p50 {:.1?} p95 {:.1?} → loaded p50 {:.1?} p95 {:.1?}",
        p(&baseline, 50.0),
        p(&baseline, 95.0),
        p(&loaded, 50.0),
        p(&loaded, 95.0),
    );
    // "Flat" with headroom for CI noise: an O(connections) cost per round (the bug class the
    // readiness loop exists to avoid) would blow far past this.
    assert!(
        p(&loaded, 95.0) < Duration::from_millis(250),
        "p95 round latency {}µs through {conns} sessions is not flat",
        p(&loaded, 95.0).as_micros()
    );

    drop(crowd);
    let _ = child.kill();
    let _ = child.wait();
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
