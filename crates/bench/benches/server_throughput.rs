//! Criterion benchmark for the serving layer: full learning sessions over loopback TCP.
//!
//! One `qbe-server` instance serves the whole benchmark; each iteration drives complete twig
//! sessions through the wire protocol (connect, CORPUS, START, ASK/ANSWER to convergence,
//! QUERY, EVAL, QUIT) with 1 client and with N concurrent clients. The 1-vs-N ratio shows how
//! much of the thread-per-connection service's capacity concurrent users actually get — the
//! serving-layer analogue of the `workload` bench's in-process scaling measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbe_server::client::{drive_goal_session, Goal};
use qbe_server::server::{spawn, ServerConfig};

fn bench_server_throughput(c: &mut Criterion) {
    let handle = spawn(ServerConfig::default()).expect("bind 127.0.0.1:0");
    let addr = handle.addr();
    // Warm the corpus cache so the first measured session does not pay the build.
    drive_goal_session(addr, "tiny", &Goal::Twig("//person/name".to_string()), &[])
        .expect("warm-up session");

    // At least 2 so the concurrent arm is a real multiplexing measurement even on one core
    // (the server is thread-per-connection; sessions interleave regardless of core count).
    let parallel = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4)
        .max(2);
    let mut group = c.benchmark_group("server/throughput");
    group.sample_size(10);
    for clients in [1usize, parallel] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("clients={clients}")),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    // Every client runs the same goal (distinct seeds/sessions), so the 1-vs-N
                    // ratio isolates serving-layer multiplexing from per-goal learning cost.
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..clients)
                            .map(|ix| {
                                let seed = ix.to_string();
                                scope.spawn(move || {
                                    drive_goal_session(
                                        addr,
                                        "tiny",
                                        &Goal::Twig("//person/name".to_string()),
                                        &[("seed", &seed)],
                                    )
                                    .expect("session completes")
                                })
                            })
                            .collect();
                        let outcomes: Vec<_> =
                            handles.into_iter().map(|h| h.join().unwrap()).collect();
                        assert!(outcomes.iter().all(|o| o.consistent));
                        outcomes
                    })
                })
            },
        );
    }
    group.finish();
    handle.shutdown();
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
