//! Criterion benchmark for the concurrent workload driver: the same fleet of twig-learning
//! sessions over one shared XMark corpus and `NodeIndex`, run with 1 worker (serial baseline)
//! and with all available workers, so the wall-time ratio shows the scaling the `SessionPool`
//! buys on the machine at hand.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbe_core::twig::{parse_xpath, NodeStrategy};
use qbe_core::workload::SessionPool;
use qbe_core::xml::xmark::{generate, XmarkConfig};
use qbe_core::xml::{NodeIndex, XmlTree};
use qbe_core::TwigInteractive;
use std::sync::Arc;

fn build_pool(docs: &Arc<Vec<XmlTree>>, indexes: &Arc<Vec<NodeIndex>>) -> SessionPool {
    let mut pool = SessionPool::new();
    for seed in 0u64..4 {
        for goal in ["//person/name", "//open_auction"] {
            let goal_query = parse_xpath(goal).expect("goal parses");
            let docs = docs.clone();
            let indexes = indexes.clone();
            pool.push_learner(format!("{goal}#{seed}"), 16, move || {
                Box::new(
                    TwigInteractive::with_shared(docs, indexes, NodeStrategy::LabelAffinity, seed)
                        .with_goal(goal_query),
                )
            });
        }
    }
    pool
}

fn bench_session_pool(c: &mut Criterion) {
    let docs = Arc::new(vec![generate(&XmarkConfig::new(0.01, 7))]);
    let indexes: Arc<Vec<NodeIndex>> = Arc::new(docs.iter().map(NodeIndex::build).collect());
    let parallel = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut group = c.benchmark_group("workload/session_pool");
    group.sample_size(10);
    for workers in [1usize, parallel] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("workers={workers}")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let metrics = build_pool(&docs, &indexes).run(workers);
                    assert_eq!(metrics.sessions(), 8);
                    metrics
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_session_pool);
criterion_main!(benches);
