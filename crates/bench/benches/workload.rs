//! Criterion benchmark for the concurrent workload driver: the same fleet of twig-learning
//! sessions over one shared XMark corpus and `NodeIndex`, run with 1 worker (serial baseline)
//! and with all available workers, so the wall-time ratio shows the scaling the `SessionPool`
//! buys on the machine at hand.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbe_core::twig::{interactive::GoalNodeOracle, parse_xpath, NodeStrategy, TwigSession};
use qbe_core::workload::{SessionJob, SessionPool, SessionReport};
use qbe_core::xml::xmark::{generate, XmarkConfig};
use qbe_core::xml::{NodeIndex, XmlTree};
use std::sync::Arc;
use std::time::Duration;

fn build_pool(docs: &Arc<Vec<XmlTree>>, indexes: &Arc<Vec<NodeIndex>>) -> SessionPool {
    let mut pool = SessionPool::new();
    for seed in 0u64..4 {
        for goal in ["//person/name", "//open_auction"] {
            let label = format!("{goal}#{seed}");
            let goal_query = parse_xpath(goal).expect("goal parses");
            let docs = docs.clone();
            let indexes = indexes.clone();
            let job_label = label.clone();
            pool.push(SessionJob::new(label, 16, move || {
                let mut oracle = GoalNodeOracle::new(&docs, goal_query.clone());
                let session = TwigSession::with_shared(
                    docs.clone(),
                    indexes.clone(),
                    NodeStrategy::LabelAffinity,
                    seed,
                );
                let outcome = session.run(&mut oracle);
                SessionReport {
                    label: job_label,
                    questions: outcome.interactions,
                    inferred: outcome.pruned,
                    success: outcome.consistent,
                    wall: Duration::ZERO,
                }
            }));
        }
    }
    pool
}

fn bench_session_pool(c: &mut Criterion) {
    let docs = Arc::new(vec![generate(&XmarkConfig::new(0.01, 7))]);
    let indexes: Arc<Vec<NodeIndex>> = Arc::new(docs.iter().map(NodeIndex::build).collect());
    let parallel = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut group = c.benchmark_group("workload/session_pool");
    group.sample_size(10);
    for workers in [1usize, parallel] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("workers={workers}")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let metrics = build_pool(&docs, &indexes).run(workers);
                    assert_eq!(metrics.sessions(), 8);
                    metrics
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_session_pool);
criterion_main!(benches);
