//! Criterion bench for E2: learning twig queries from positive examples, as a function of the
//! number of examples and of the document size (XMark scale factor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbe_twig::{learn_from_positives, parse_xpath, select};
use qbe_xml::xmark::{generate, XmarkConfig};
use qbe_xml::{NodeId, XmlTree};
use std::hint::black_box;

fn examples_for(doc: &XmlTree, xpath: &str, k: usize) -> Vec<NodeId> {
    let goal = parse_xpath(xpath).unwrap();
    select(&goal, doc).into_iter().take(k).collect()
}

fn bench_examples_count(c: &mut Criterion) {
    let doc = generate(&XmarkConfig::new(0.05, 1));
    let mut group = c.benchmark_group("twig_learning/examples");
    for k in [1usize, 2, 4, 8] {
        let nodes = examples_for(&doc, "//person/name", k);
        if nodes.len() < k {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(k), &nodes, |b, nodes| {
            b.iter(|| {
                let examples: Vec<_> = nodes.iter().map(|&n| (&doc, n)).collect();
                learn_from_positives(black_box(&examples)).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_document_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("twig_learning/scale");
    group.sample_size(20);
    for scale in [0.02f64, 0.05, 0.1, 0.2] {
        let doc = generate(&XmarkConfig::new(scale, 3));
        let nodes = examples_for(&doc, "//open_auction/bidder", 2);
        if nodes.len() < 2 {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scale}({} nodes)", doc.size())),
            &doc,
            |b, doc| {
                b.iter(|| {
                    let examples: Vec<_> = nodes.iter().map(|&n| (doc, n)).collect();
                    learn_from_positives(black_box(&examples)).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let doc = generate(&XmarkConfig::new(0.1, 5));
    let queries = [
        "//person",
        "//person/name",
        "/site/regions//item",
        "//open_auction/bidder/increase",
    ];
    let mut group = c.benchmark_group("twig_learning/evaluate");
    for xpath in queries {
        let q = parse_xpath(xpath).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(xpath), &q, |b, q| {
            b.iter(|| select(black_box(q), black_box(&doc)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_examples_count,
    bench_document_scale,
    bench_evaluation
);
criterion_main!(benches);
