//! # qbe-store — persistent corpus snapshots and a session write-ahead log
//!
//! The serving tier (`qbe-server`) holds two kinds of state worth surviving a restart:
//!
//! * **Corpora** — immutable, expensively built index bundles (XMark documents with their
//!   [`qbe_xml::NodeIndex`]es, property graphs with their [`qbe_graph::GraphIndex`]es, the
//!   relational pair). [`snapshot`] serialises them into a flat, little-endian binary with a
//!   versioned + checksummed header and a per-section table, behind a [`backend::Backend`]
//!   trait (in-memory and file-backed), so a server opens a named corpus from disk in
//!   O(sections touched) instead of regenerating and re-indexing it.
//! * **Sessions** — seed-deterministic interactive learners. [`wal`] is an append-only,
//!   fsync-batched log of session lifecycle events (`START` parameters, each `ANSWER` label,
//!   `QUIT`) with per-record checksums and torn-tail truncation; because learners are
//!   deterministic in their seed and answer stream, replaying the log reconstructs
//!   byte-identical learner state after a crash.
//!
//! The split follows the storage architecture of production graph stores (a key-value-ish
//! backend trait under a bulk loader and flat binary formats): the format layer knows nothing
//! about sockets or sessions, the serving layer composes it.
//!
//! Nothing here depends on serde (the build environment has no registry): the codec is a
//! hand-rolled little-endian byte format in [`codec`], checksummed with FNV-1a 64.

#![warn(missing_docs)]

pub mod backend;
pub mod codec;
pub mod corpus;
pub mod snapshot;
pub mod wal;

pub use backend::{Backend, FaultyBackend, FileBackend, MemBackend};
pub use codec::{fnv1a64, fnv1a64_words, Dec, Enc};
pub use corpus::CorpusSnapshot;
pub use snapshot::{SnapshotReader, SnapshotWriter, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use wal::{WalRecord, WalWriter, WAL_MAGIC, WAL_VERSION};

use std::fmt;
use std::io;

/// Why a snapshot or WAL could not be read. Every variant renders a descriptive message —
/// these strings surface verbatim in server startup errors and `-ERR` replies, so an operator
/// can tell a truncated download from a version skew from bit rot.
#[derive(Debug)]
pub enum StoreError {
    /// The file does not start with the expected magic bytes — not one of ours.
    BadMagic {
        /// The magic the format expected.
        expected: &'static [u8; 4],
        /// What the file actually started with.
        found: [u8; 4],
    },
    /// The file ends before its fixed-size header does.
    ShortHeader {
        /// Bytes the header needs.
        needed: usize,
        /// Bytes the file has.
        got: usize,
    },
    /// A checksum did not match its payload.
    ChecksumMismatch {
        /// What was being verified (header, a section name, a WAL record position).
        what: String,
    },
    /// The file was written by a newer format version than this build understands.
    FutureVersion {
        /// Version found in the file.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// The payload ended mid-value or a structural invariant failed while decoding.
    Corrupt(String),
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(*expected),
                String::from_utf8_lossy(found),
            ),
            StoreError::ShortHeader { needed, got } => {
                write!(f, "short header: need {needed} bytes, file has {got}")
            }
            StoreError::ChecksumMismatch { what } => write!(f, "checksum mismatch in {what}"),
            StoreError::FutureVersion { found, supported } => write!(
                f,
                "format version {found} is newer than supported version {supported}"
            ),
            StoreError::Corrupt(why) => write!(f, "corrupt payload: {why}"),
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}
