//! Corpus payload: section encoders for every substrate a serving corpus carries.
//!
//! A [`CorpusSnapshot`] is the flat, owned form of a server corpus — XMark documents and
//! their node indexes, the geographical property graph and its adjacency index, the typed
//! road view and its index, and the relational pair with its demo join goal.
//! [`CorpusSnapshot::encode`] lays each substrate into its own snapshot section so a reader
//! can pull one substrate without deserialising the rest; [`CorpusSnapshot::decode`]
//! reverses it through the `from_parts` constructors the index crates expose.
//!
//! Encoding is byte-deterministic: hash-map-backed structures (label postings, node-label
//! sets) are serialised in sorted label order, and everything else follows arena id order.

use crate::backend::Backend;
use crate::codec::{Dec, Enc};
use crate::snapshot::{SnapshotReader, SnapshotWriter};
use crate::StoreError;
use qbe_bitset::DenseSet;
use qbe_graph::{GNodeId, GraphIndex, PropValue, PropertyGraph};
use qbe_relational::{JoinPredicate, Relation, RelationSchema, Tuple, Value};
use qbe_xml::{NodeId, NodeIndex, XmlTree};
use std::collections::HashMap;

/// Section kinds of a corpus snapshot.
pub mod section {
    /// Corpus name and substrate counts.
    pub const META: u32 = 1;
    /// The XMark document trees.
    pub const DOCS: u32 = 2;
    /// One [`qbe_xml::NodeIndex`] per document.
    pub const NODE_INDEXES: u32 = 3;
    /// The geographical property graph.
    pub const GRAPH: u32 = 4;
    /// Adjacency index of the geographical graph.
    pub const GRAPH_INDEX: u32 = 5;
    /// The typed road view of the graph.
    pub const TYPED_GRAPH: u32 = 6;
    /// Adjacency index of the typed view.
    pub const TYPED_INDEX: u32 = 7;
    /// The relational pair plus the demo join goal.
    pub const RELATIONS: u32 = 8;
}

/// Owned, serialisable form of one serving corpus.
#[derive(Debug, Clone)]
pub struct CorpusSnapshot {
    /// Corpus name (`tiny`, `small`, ...).
    pub name: String,
    /// XMark documents.
    pub docs: Vec<XmlTree>,
    /// One node index per document, same order.
    pub indexes: Vec<NodeIndex>,
    /// Geographical property graph.
    pub graph: PropertyGraph,
    /// Adjacency index of `graph`.
    pub graph_index: GraphIndex,
    /// Typed road view of the graph.
    pub typed_graph: PropertyGraph,
    /// Adjacency index of `typed_graph`.
    pub typed_index: GraphIndex,
    /// Left relation of the join-learning pair.
    pub left: Relation,
    /// Right relation of the join-learning pair.
    pub right: Relation,
    /// Demo equi-join goal over the pair.
    pub demo_join_goal: JoinPredicate,
}

impl CorpusSnapshot {
    /// Serialise into a complete snapshot byte stream (header + sections).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        let mut meta = Enc::new();
        meta.str(&self.name);
        meta.u32(self.docs.len() as u32);
        w.section(section::META, meta.into_bytes());

        let mut docs = Enc::new();
        docs.u32(self.docs.len() as u32);
        for doc in &self.docs {
            enc_tree(&mut docs, doc);
        }
        w.section(section::DOCS, docs.into_bytes());

        let mut idx = Enc::new();
        idx.u32(self.indexes.len() as u32);
        for index in &self.indexes {
            enc_node_index(&mut idx, index);
        }
        w.section(section::NODE_INDEXES, idx.into_bytes());

        let mut g = Enc::new();
        enc_graph(&mut g, &self.graph);
        w.section(section::GRAPH, g.into_bytes());

        let mut gi = Enc::new();
        enc_graph_index(&mut gi, &self.graph_index);
        w.section(section::GRAPH_INDEX, gi.into_bytes());

        let mut tg = Enc::new();
        enc_graph(&mut tg, &self.typed_graph);
        w.section(section::TYPED_GRAPH, tg.into_bytes());

        let mut ti = Enc::new();
        enc_graph_index(&mut ti, &self.typed_index);
        w.section(section::TYPED_INDEX, ti.into_bytes());

        let mut rel = Enc::new();
        enc_relation(&mut rel, &self.left);
        enc_relation(&mut rel, &self.right);
        let pairs: Vec<(usize, usize)> = self.demo_join_goal.pairs().collect();
        rel.u32(pairs.len() as u32);
        for (l, r) in pairs {
            rel.u32(l as u32);
            rel.u32(r as u32);
        }
        w.section(section::RELATIONS, rel.into_bytes());

        w.finish()
    }

    /// Deserialise a corpus from an opened snapshot.
    pub fn decode<B: Backend>(reader: &SnapshotReader<B>) -> Result<CorpusSnapshot, StoreError> {
        let meta = reader.read_section(section::META)?;
        let mut d = Dec::new(&meta);
        let name = d.str()?;
        let doc_count = d.u32()? as usize;
        d.finish()?;

        let docs_bytes = reader.read_section(section::DOCS)?;
        let mut d = Dec::new(&docs_bytes);
        let n = d.u32()? as usize;
        if n != doc_count {
            return Err(StoreError::Corrupt(format!(
                "meta declares {doc_count} documents, DOCS section holds {n}"
            )));
        }
        let mut docs = Vec::with_capacity(n);
        for _ in 0..n {
            docs.push(dec_tree(&mut d)?);
        }
        d.finish()?;

        let idx_bytes = reader.read_section(section::NODE_INDEXES)?;
        let mut d = Dec::new(&idx_bytes);
        let n = d.u32()? as usize;
        if n != doc_count {
            return Err(StoreError::Corrupt(format!(
                "meta declares {doc_count} documents, NODE_INDEXES section holds {n}"
            )));
        }
        let mut indexes = Vec::with_capacity(n);
        for _ in 0..n {
            indexes.push(dec_node_index(&mut d)?);
        }
        d.finish()?;

        let graph = dec_section_graph(reader, section::GRAPH)?;
        let graph_index = dec_section_graph_index(reader, section::GRAPH_INDEX)?;
        let typed_graph = dec_section_graph(reader, section::TYPED_GRAPH)?;
        let typed_index = dec_section_graph_index(reader, section::TYPED_INDEX)?;

        let rel_bytes = reader.read_section(section::RELATIONS)?;
        let mut d = Dec::new(&rel_bytes);
        let left = dec_relation(&mut d)?;
        let right = dec_relation(&mut d)?;
        let npairs = d.u32()? as usize;
        let mut pairs = Vec::with_capacity(npairs);
        for _ in 0..npairs {
            let l = d.u32()? as usize;
            let r = d.u32()? as usize;
            pairs.push((l, r));
        }
        d.finish()?;

        Ok(CorpusSnapshot {
            name,
            docs,
            indexes,
            graph,
            graph_index,
            typed_graph,
            typed_index,
            left,
            right,
            demo_join_goal: JoinPredicate::from_pairs(pairs),
        })
    }
}

const NO_PARENT: u32 = u32::MAX;

fn enc_bitset<T: qbe_bitset::DenseId>(e: &mut Enc, bits: &DenseSet<T>) {
    for w in bits.words() {
        e.u64(*w);
    }
}

fn dec_bitset<T: qbe_bitset::DenseId>(
    d: &mut Dec<'_>,
    universe: usize,
) -> Result<DenseSet<T>, StoreError> {
    // Bitsets are the bulk of an index section; one bounds-checked raw read beats a
    // per-word decode loop.
    let nwords = universe.div_ceil(64);
    let raw = d.raw(nwords * 8)?;
    let words = raw
        .chunks_exact(8)
        .map(|chunk| u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")))
        .collect();
    Ok(DenseSet::from_words(universe, words))
}

fn enc_tree(e: &mut Enc, tree: &XmlTree) {
    e.u32(tree.size() as u32);
    for id in tree.node_ids() {
        e.str(tree.label(id));
        e.u32(tree.parent(id).map_or(NO_PARENT, |p| p.index() as u32));
        match tree.text(id) {
            Some(t) => {
                e.bool(true);
                e.str(t);
            }
            None => e.bool(false),
        }
        let attrs: Vec<(&str, &str)> = tree.attributes(id).collect();
        e.u32(attrs.len() as u32);
        for (k, v) in attrs {
            e.str(k);
            e.str(v);
        }
    }
}

fn dec_tree(d: &mut Dec<'_>) -> Result<XmlTree, StoreError> {
    let n = d.u32()? as usize;
    if n == 0 {
        return Err(StoreError::Corrupt("tree with zero nodes".to_string()));
    }
    let mut tree: Option<XmlTree> = None;
    for ix in 0..n {
        let label = d.str()?;
        let parent = d.u32()?;
        let id = match (&mut tree, parent) {
            (None, NO_PARENT) => {
                tree = Some(XmlTree::new(label));
                NodeId::ROOT
            }
            (None, p) => {
                return Err(StoreError::Corrupt(format!(
                    "tree root declares parent {p}"
                )))
            }
            (Some(_), NO_PARENT) => {
                return Err(StoreError::Corrupt(format!(
                    "non-root node {ix} has no parent"
                )))
            }
            (Some(t), p) => {
                if p as usize >= ix {
                    return Err(StoreError::Corrupt(format!(
                        "node {ix} declares parent {p}, which does not precede it"
                    )));
                }
                t.add_child(NodeId::from_index(p as usize), label)
            }
        };
        let t = tree.as_mut().expect("tree exists after root");
        if d.bool()? {
            let text = d.str()?;
            t.set_text(id, text);
        }
        let attrs = d.u32()? as usize;
        for _ in 0..attrs {
            let k = d.str()?;
            let v = d.str()?;
            t.set_attribute(id, k, v);
        }
    }
    Ok(tree.expect("n > 0"))
}

fn enc_node_index(e: &mut Enc, index: &NodeIndex) {
    let n = index.node_count();
    e.u32(n as u32);
    let mut postings: Vec<(&str, &DenseSet<NodeId>)> = index.posting_entries().collect();
    postings.sort_by_key(|(label, _)| *label);
    e.u32(postings.len() as u32);
    for (label, bits) in postings {
        e.str(label);
        enc_bitset(e, bits);
    }
    for &v in index.pre_ranks() {
        e.u32(v);
    }
    for &v in index.subtree_ends() {
        e.u32(v);
    }
    for &v in index.depths() {
        e.u32(v);
    }
    for p in index.parents() {
        e.u32(p.map_or(NO_PARENT, |p| p.index() as u32));
    }
}

fn dec_node_index(d: &mut Dec<'_>) -> Result<NodeIndex, StoreError> {
    let n = d.u32()? as usize;
    let nlabels = d.u32()? as usize;
    let mut postings = HashMap::with_capacity(nlabels);
    for _ in 0..nlabels {
        let label = d.str()?;
        let bits = dec_bitset::<NodeId>(d, n)?;
        if postings.insert(label, bits).is_some() {
            return Err(StoreError::Corrupt(
                "duplicate posting label in node index".to_string(),
            ));
        }
    }
    let mut arr = |_: &str| -> Result<Vec<u32>, StoreError> { (0..n).map(|_| d.u32()).collect() };
    let pre = arr("pre")?;
    let subtree_end = arr("subtree_end")?;
    let depth = arr("depth")?;
    let mut parent = Vec::with_capacity(n);
    for ix in 0..n {
        let p = d.u32()?;
        if p == NO_PARENT {
            parent.push(None);
        } else if (p as usize) < n {
            parent.push(Some(NodeId::from_index(p as usize)));
        } else {
            return Err(StoreError::Corrupt(format!(
                "node {ix} declares out-of-range parent {p}"
            )));
        }
    }
    Ok(NodeIndex::from_parts(
        postings,
        pre,
        subtree_end,
        depth,
        parent,
    ))
}

const PROP_INT: u8 = 0;
const PROP_FLOAT: u8 = 1;
const PROP_TEXT: u8 = 2;

fn enc_prop(e: &mut Enc, value: &PropValue) {
    match value {
        PropValue::Int(i) => {
            e.u8(PROP_INT);
            e.i64(*i);
        }
        PropValue::Float(f) => {
            e.u8(PROP_FLOAT);
            e.f64(*f);
        }
        PropValue::Text(s) => {
            e.u8(PROP_TEXT);
            e.str(s);
        }
    }
}

fn dec_prop(d: &mut Dec<'_>) -> Result<PropValue, StoreError> {
    match d.u8()? {
        PROP_INT => Ok(PropValue::Int(d.i64()?)),
        PROP_FLOAT => Ok(PropValue::Float(d.f64()?)),
        PROP_TEXT => Ok(PropValue::Text(d.str()?)),
        other => Err(StoreError::Corrupt(format!(
            "unknown property value tag {other}"
        ))),
    }
}

fn enc_graph(e: &mut Enc, graph: &PropertyGraph) {
    e.u32(graph.node_count() as u32);
    for node in graph.node_ids() {
        e.str(graph.node_label(node));
        let props: Vec<(&str, &PropValue)> = graph.node_properties(node).collect();
        e.u32(props.len() as u32);
        for (k, v) in props {
            e.str(k);
            enc_prop(e, v);
        }
    }
    e.u32(graph.edge_count() as u32);
    for edge in graph.edge_ids() {
        e.u32(graph.source(edge).0);
        e.u32(graph.target(edge).0);
        e.str(graph.edge_label(edge));
        let props: Vec<(&str, &PropValue)> = graph.edge_properties(edge).collect();
        e.u32(props.len() as u32);
        for (k, v) in props {
            e.str(k);
            enc_prop(e, v);
        }
    }
}

fn dec_graph(d: &mut Dec<'_>) -> Result<PropertyGraph, StoreError> {
    let mut graph = PropertyGraph::new();
    let nodes = d.u32()? as usize;
    for _ in 0..nodes {
        let label = d.str()?;
        let node = graph.add_node(label);
        let nprops = d.u32()? as usize;
        for _ in 0..nprops {
            let k = d.str()?;
            let v = dec_prop(d)?;
            graph.set_node_property(node, k, v);
        }
    }
    let edges = d.u32()? as usize;
    for ix in 0..edges {
        let from = d.u32()?;
        let to = d.u32()?;
        if from as usize >= nodes || to as usize >= nodes {
            return Err(StoreError::Corrupt(format!(
                "edge {ix} references node out of range ({from} -> {to}, {nodes} nodes)"
            )));
        }
        let label = d.str()?;
        let edge = graph.add_edge(GNodeId(from), GNodeId(to), label);
        let nprops = d.u32()? as usize;
        for _ in 0..nprops {
            let k = d.str()?;
            let v = dec_prop(d)?;
            graph.set_edge_property(edge, k, v);
        }
    }
    Ok(graph)
}

/// One node's labelled adjacency: `(interned label id, neighbour bitset)` entries.
type AdjacencyRow = Vec<(u32, DenseSet<GNodeId>)>;

fn enc_adjacency_rows(e: &mut Enc, rows: &[&[(u32, DenseSet<GNodeId>)]]) {
    for row in rows {
        e.u32(row.len() as u32);
        for (lid, bits) in row.iter() {
            e.u32(*lid);
            enc_bitset(e, bits);
        }
    }
}

fn dec_adjacency_rows(d: &mut Dec<'_>, n: usize) -> Result<Vec<AdjacencyRow>, StoreError> {
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let entries = d.u32()? as usize;
        let mut row = Vec::with_capacity(entries);
        for _ in 0..entries {
            let lid = d.u32()?;
            let bits = dec_bitset::<GNodeId>(d, n)?;
            row.push((lid, bits));
        }
        rows.push(row);
    }
    Ok(rows)
}

fn enc_graph_index(e: &mut Enc, index: &GraphIndex) {
    e.u32(index.label_count() as u32);
    for lid in 0..index.label_count() as u32 {
        e.str(index.label(lid));
    }
    let n = index.node_count();
    e.u32(n as u32);
    let out_rows: Vec<&[(u32, DenseSet<GNodeId>)]> = (0..n as u32)
        .map(|v| index.successor_bits(GNodeId(v)))
        .collect();
    enc_adjacency_rows(e, &out_rows);
    let in_rows: Vec<&[(u32, DenseSet<GNodeId>)]> = (0..n as u32)
        .map(|v| index.predecessor_bits(GNodeId(v)))
        .collect();
    enc_adjacency_rows(e, &in_rows);
    for lid in 0..index.label_count() as u32 {
        e.u64(index.label_edge_count(lid) as u64);
    }
    let mut node_labels: Vec<(&str, &DenseSet<GNodeId>)> = index.node_label_entries().collect();
    node_labels.sort_by_key(|(label, _)| *label);
    e.u32(node_labels.len() as u32);
    for (label, bits) in node_labels {
        e.str(label);
        enc_bitset(e, bits);
    }
}

fn dec_graph_index(d: &mut Dec<'_>) -> Result<GraphIndex, StoreError> {
    let nlabels = d.u32()? as usize;
    let mut labels = Vec::with_capacity(nlabels);
    for _ in 0..nlabels {
        labels.push(d.str()?);
    }
    let n = d.u32()? as usize;
    let out_bits = dec_adjacency_rows(d, n)?;
    let in_bits = dec_adjacency_rows(d, n)?;
    for row in out_bits.iter().chain(in_bits.iter()) {
        for (lid, _) in row {
            if *lid as usize >= nlabels {
                return Err(StoreError::Corrupt(format!(
                    "adjacency row references label id {lid}, only {nlabels} labels interned"
                )));
            }
        }
    }
    let mut label_edge_counts = Vec::with_capacity(nlabels);
    for _ in 0..nlabels {
        label_edge_counts.push(d.u64()? as usize);
    }
    let nsets = d.u32()? as usize;
    let mut node_label_sets = HashMap::with_capacity(nsets);
    for _ in 0..nsets {
        let label = d.str()?;
        let bits = dec_bitset::<GNodeId>(d, n)?;
        if node_label_sets.insert(label, bits).is_some() {
            return Err(StoreError::Corrupt(
                "duplicate node label set in graph index".to_string(),
            ));
        }
    }
    Ok(GraphIndex::from_parts(
        labels,
        out_bits,
        in_bits,
        label_edge_counts,
        node_label_sets,
    ))
}

fn dec_section_graph<B: Backend>(
    reader: &SnapshotReader<B>,
    kind: u32,
) -> Result<PropertyGraph, StoreError> {
    let bytes = reader.read_section(kind)?;
    let mut d = Dec::new(&bytes);
    let graph = dec_graph(&mut d)?;
    d.finish()?;
    Ok(graph)
}

fn dec_section_graph_index<B: Backend>(
    reader: &SnapshotReader<B>,
    kind: u32,
) -> Result<GraphIndex, StoreError> {
    let bytes = reader.read_section(kind)?;
    let mut d = Dec::new(&bytes);
    let index = dec_graph_index(&mut d)?;
    d.finish()?;
    Ok(index)
}

const VALUE_INT: u8 = 0;
const VALUE_TEXT: u8 = 1;
const VALUE_BOOL: u8 = 2;
const VALUE_NULL: u8 = 3;

fn enc_value(e: &mut Enc, value: &Value) {
    match value {
        Value::Int(i) => {
            e.u8(VALUE_INT);
            e.i64(*i);
        }
        Value::Text(s) => {
            e.u8(VALUE_TEXT);
            e.str(s);
        }
        Value::Bool(b) => {
            e.u8(VALUE_BOOL);
            e.bool(*b);
        }
        Value::Null => e.u8(VALUE_NULL),
    }
}

fn dec_value(d: &mut Dec<'_>) -> Result<Value, StoreError> {
    match d.u8()? {
        VALUE_INT => Ok(Value::Int(d.i64()?)),
        VALUE_TEXT => Ok(Value::Text(d.str()?)),
        VALUE_BOOL => Ok(Value::Bool(d.bool()?)),
        VALUE_NULL => Ok(Value::Null),
        other => Err(StoreError::Corrupt(format!("unknown value tag {other}"))),
    }
}

fn enc_relation(e: &mut Enc, relation: &Relation) {
    e.str(relation.schema().name());
    let attrs = relation.schema().attributes();
    e.u32(attrs.len() as u32);
    for a in attrs {
        e.str(a);
    }
    e.u32(relation.len() as u32);
    for tuple in relation.tuples() {
        for v in tuple.values() {
            enc_value(e, v);
        }
    }
}

fn dec_relation(d: &mut Dec<'_>) -> Result<Relation, StoreError> {
    let name = d.str()?;
    let nattrs = d.u32()? as usize;
    let mut attrs = Vec::with_capacity(nattrs);
    for _ in 0..nattrs {
        attrs.push(d.str()?);
    }
    let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
    let schema = RelationSchema::new(name, &attr_refs);
    let ntuples = d.u32()? as usize;
    let mut tuples = Vec::with_capacity(ntuples);
    for _ in 0..ntuples {
        let mut values = Vec::with_capacity(nattrs);
        for _ in 0..nattrs {
            values.push(dec_value(d)?);
        }
        tuples.push(Tuple::new(values));
    }
    Ok(Relation::with_tuples(schema, tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn sample() -> CorpusSnapshot {
        let mut doc = XmlTree::new("site");
        let people = doc.add_child(XmlTree::ROOT, "people");
        let person = doc.add_child(people, "person");
        doc.set_attribute(person, "id", "person0");
        let name = doc.add_child(person, "name");
        doc.set_text(name, "Alice");
        let mut doc2 = XmlTree::new("site");
        doc2.add_child(XmlTree::ROOT, "regions");

        let mut graph = PropertyGraph::new();
        let a = graph.add_node("city");
        graph.set_node_property(a, "name", "Lille");
        graph.set_node_property(a, "population", 234_000i64);
        let b = graph.add_node("city");
        graph.set_node_property(b, "name", "Paris");
        let e = graph.add_edge(a, b, "road");
        graph.set_edge_property(e, "distance", 225.0);
        graph.set_edge_property(e, "type", "highway");
        graph.add_edge(b, a, "train");

        let mut typed = PropertyGraph::new();
        let x = typed.add_node("city");
        let y = typed.add_node("city");
        typed.add_edge(x, y, "highway");

        let left = Relation::with_tuples(
            RelationSchema::new("parent", &["p", "c"]),
            vec![
                Tuple::new(vec![Value::text("ann"), Value::text("bob")]),
                Tuple::new(vec![Value::Int(1), Value::Null]),
                Tuple::new(vec![Value::Bool(true), Value::text("x")]),
            ],
        );
        let right = Relation::with_tuples(
            RelationSchema::new("age", &["n", "a"]),
            vec![Tuple::new(vec![Value::text("bob"), Value::Int(7)])],
        );

        CorpusSnapshot {
            name: "unit".to_string(),
            indexes: vec![NodeIndex::build(&doc), NodeIndex::build(&doc2)],
            docs: vec![doc, doc2],
            graph_index: GraphIndex::build(&graph),
            graph,
            typed_index: GraphIndex::build(&typed),
            typed_graph: typed,
            left,
            right,
            demo_join_goal: JoinPredicate::from_pairs([(1usize, 0usize)]),
        }
    }

    fn assert_graphs_equal(a: &PropertyGraph, b: &PropertyGraph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for node in a.node_ids() {
            assert_eq!(a.node_label(node), b.node_label(node));
            let pa: Vec<_> = a.node_properties(node).collect();
            let pb: Vec<_> = b.node_properties(node).collect();
            assert_eq!(pa, pb);
        }
        for edge in a.edge_ids() {
            assert_eq!(a.source(edge), b.source(edge));
            assert_eq!(a.target(edge), b.target(edge));
            assert_eq!(a.edge_label(edge), b.edge_label(edge));
            let pa: Vec<_> = a.edge_properties(edge).collect();
            let pb: Vec<_> = b.edge_properties(edge).collect();
            assert_eq!(pa, pb);
        }
    }

    fn assert_graph_indexes_equal(a: &GraphIndex, b: &GraphIndex) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.label_count(), b.label_count());
        for lid in 0..a.label_count() as u32 {
            assert_eq!(a.label(lid), b.label(lid));
            assert_eq!(a.label_edge_count(lid), b.label_edge_count(lid));
        }
        for v in 0..a.node_count() as u32 {
            assert_eq!(a.successor_bits(GNodeId(v)), b.successor_bits(GNodeId(v)));
            assert_eq!(
                a.predecessor_bits(GNodeId(v)),
                b.predecessor_bits(GNodeId(v))
            );
            assert_eq!(a.out_edges(GNodeId(v)), b.out_edges(GNodeId(v)));
        }
        let mut la: Vec<_> = a.node_label_entries().collect();
        let mut lb: Vec<_> = b.node_label_entries().collect();
        la.sort_by_key(|(l, _)| *l);
        lb.sort_by_key(|(l, _)| *l);
        assert_eq!(la, lb);
    }

    #[test]
    fn corpus_round_trips_through_the_snapshot_format() {
        let original = sample();
        let bytes = original.encode();
        let reader = SnapshotReader::open(MemBackend::new(bytes)).unwrap();
        let decoded = CorpusSnapshot::decode(&reader).unwrap();

        assert_eq!(decoded.name, original.name);
        assert_eq!(decoded.docs, original.docs);
        assert_eq!(decoded.indexes.len(), original.indexes.len());
        for (a, b) in decoded.indexes.iter().zip(original.indexes.iter()) {
            assert_eq!(a.node_count(), b.node_count());
            assert_eq!(a.pre_ranks(), b.pre_ranks());
            assert_eq!(a.subtree_ends(), b.subtree_ends());
            assert_eq!(a.depths(), b.depths());
            assert_eq!(a.parents(), b.parents());
            let mut pa: Vec<_> = a.posting_entries().collect();
            let mut pb: Vec<_> = b.posting_entries().collect();
            pa.sort_by_key(|(l, _)| *l);
            pb.sort_by_key(|(l, _)| *l);
            assert_eq!(pa, pb);
        }
        assert_graphs_equal(&decoded.graph, &original.graph);
        assert_graph_indexes_equal(&decoded.graph_index, &original.graph_index);
        assert_graphs_equal(&decoded.typed_graph, &original.typed_graph);
        assert_graph_indexes_equal(&decoded.typed_index, &original.typed_index);
        assert_eq!(decoded.left, original.left);
        assert_eq!(decoded.right, original.right);
        assert_eq!(decoded.demo_join_goal, original.demo_join_goal);
    }

    #[test]
    fn encoding_is_byte_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }

    #[test]
    fn mismatched_document_counts_are_corrupt() {
        let mut snapshot = sample();
        snapshot.indexes.pop();
        let bytes = snapshot.encode();
        let reader = SnapshotReader::open(MemBackend::new(bytes)).unwrap();
        assert!(matches!(
            CorpusSnapshot::decode(&reader),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn edge_referencing_a_missing_node_is_corrupt() {
        let mut e = Enc::new();
        e.u32(1); // one node
        e.str("city");
        e.u32(0); // no props
        e.u32(1); // one edge
        e.u32(0);
        e.u32(5); // target out of range
        e.str("road");
        e.u32(0);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(dec_graph(&mut d), Err(StoreError::Corrupt(_))));
    }
}
