//! Storage backends for snapshot readers.
//!
//! A [`Backend`] is the minimal random-access-read surface the snapshot reader needs:
//! total length plus positioned reads. Keeping it a trait separates the format from its
//! storage — tests exercise the full reader against [`MemBackend`] without touching disk,
//! and the server opens real files through [`FileBackend`], which reads sections lazily
//! with positioned I/O (`pread`) so a shared handle needs no seek mutex and unopened
//! sections are never paged in. [`FaultyBackend`] wraps any backend with seeded fault
//! injection (failed and short reads) for unreliable-world tests.

use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;

use qbe_faults::FaultRegistry;

/// Random-access read source for a snapshot.
pub trait Backend {
    /// Total length in bytes.
    fn len(&self) -> u64;

    /// True when the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fill `buf` from `offset`; reading past the end is an error.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
}

/// In-memory backend over an owned byte buffer.
#[derive(Debug, Clone)]
pub struct MemBackend {
    bytes: Vec<u8>,
}

impl MemBackend {
    /// Wrap a byte buffer.
    pub fn new(bytes: Vec<u8>) -> MemBackend {
        MemBackend { bytes }
    }
}

impl Backend for MemBackend {
    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let start = usize::try_from(offset)
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "offset beyond buffer"))?;
        let end = start
            .checked_add(buf.len())
            .filter(|e| *e <= self.bytes.len());
        match end {
            Some(end) => {
                buf.copy_from_slice(&self.bytes[start..end]);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "read of {} bytes at offset {offset} past end ({} bytes total)",
                    buf.len(),
                    self.bytes.len()
                ),
            )),
        }
    }
}

/// File-backed backend using positioned reads.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    len: u64,
}

impl FileBackend {
    /// Open a file read-only.
    pub fn open(path: &Path) -> io::Result<FileBackend> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(FileBackend { file, len })
    }
}

impl Backend for FileBackend {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        // read_exact_at loops over short reads for us.
        self.file.read_exact_at(buf, offset)
    }
}

/// A backend decorator that injects read faults from a seeded
/// [`FaultRegistry`]. Two sites:
///
/// * [`SITE_READ`](FaultyBackend::SITE_READ) — the positioned read fails
///   outright with an injected I/O error;
/// * [`SITE_SHORT_READ`](FaultyBackend::SITE_SHORT_READ) — the read returns
///   only a prefix of the requested bytes (the tail of `buf` is left
///   untouched) and reports `UnexpectedEof`, the observable result of a
///   short `pread` whose retry loop hit end-of-file.
///
/// Length queries are never faulted: they model metadata already held in
/// memory, and failing them would only re-test the same error path as
/// [`SITE_READ`](FaultyBackend::SITE_READ).
#[derive(Debug)]
pub struct FaultyBackend<B> {
    inner: B,
    faults: Arc<FaultRegistry>,
}

impl<B: Backend> FaultyBackend<B> {
    /// Fault site for failed reads.
    pub const SITE_READ: &'static str = "store.read";
    /// Fault site for short reads.
    pub const SITE_SHORT_READ: &'static str = "store.short_read";

    /// Wraps `inner`, consulting `faults` on every read.
    pub fn new(inner: B, faults: Arc<FaultRegistry>) -> FaultyBackend<B> {
        FaultyBackend { inner, faults }
    }
}

impl<B: Backend> Backend for FaultyBackend<B> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.faults.io_error(Self::SITE_READ)?;
        if !buf.is_empty() && self.faults.fire(Self::SITE_SHORT_READ) {
            let short = buf.len() / 2;
            self.inner.read_at(offset, &mut buf[..short])?;
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "{} at {}: read {short} of {} bytes at offset {offset}",
                    qbe_faults::INJECTED_MARKER,
                    Self::SITE_SHORT_READ,
                    buf.len()
                ),
            ));
        }
        self.inner.read_at(offset, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbe_faults::{FaultProfile, SiteConfig};

    #[test]
    fn mem_backend_reads_in_bounds_and_rejects_overruns() {
        let b = MemBackend::new(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let mut buf = [0u8; 3];
        b.read_at(1, &mut buf).unwrap();
        assert_eq!(buf, [2, 3, 4]);
        assert!(b.read_at(3, &mut buf).is_err());
        assert!(b.read_at(u64::MAX, &mut buf).is_err());
    }

    #[test]
    fn file_backend_round_trips_through_a_temp_file() {
        let path =
            std::env::temp_dir().join(format!("qbe-store-backend-test-{}.bin", std::process::id()));
        std::fs::write(&path, [9u8, 8, 7, 6]).unwrap();
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.len(), 4);
        let mut buf = [0u8; 2];
        b.read_at(2, &mut buf).unwrap();
        assert_eq!(buf, [7, 6]);
        assert!(b.read_at(3, &mut buf).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn faulty_backend_injects_failed_reads_on_schedule() {
        let faults = FaultRegistry::shared(FaultProfile::new(0).site(
            FaultyBackend::<MemBackend>::SITE_READ,
            SiteConfig::with_every(2),
        ));
        let b = FaultyBackend::new(MemBackend::new(vec![1, 2, 3, 4]), faults.clone());
        assert_eq!(b.len(), 4, "len is never faulted");
        let mut buf = [0u8; 2];
        b.read_at(0, &mut buf).unwrap(); // check 1: passes
        assert_eq!(buf, [1, 2]);
        let err = b.read_at(0, &mut buf).unwrap_err(); // check 2: fires
        assert!(err.to_string().contains(qbe_faults::INJECTED_MARKER));
        b.read_at(2, &mut buf).unwrap(); // check 3: passes
        assert_eq!(buf, [3, 4]);
        assert_eq!(faults.injected(), 1);
    }

    #[test]
    fn faulty_backend_short_reads_fill_a_prefix_and_report_eof() {
        let faults = FaultRegistry::shared(FaultProfile::new(0).site(
            FaultyBackend::<MemBackend>::SITE_SHORT_READ,
            SiteConfig::with_probability(1.0),
        ));
        let b = FaultyBackend::new(MemBackend::new(vec![7, 8, 9, 10]), faults);
        let mut buf = [0u8; 4];
        let err = b.read_at(0, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(&buf[..2], &[7, 8], "the delivered prefix is real data");
        assert_eq!(&buf[2..], &[0, 0], "the tail was never written");
    }
}
