//! Storage backends for snapshot readers.
//!
//! A [`Backend`] is the minimal random-access-read surface the snapshot reader needs:
//! total length plus positioned reads. Keeping it a trait separates the format from its
//! storage — tests exercise the full reader against [`MemBackend`] without touching disk,
//! and the server opens real files through [`FileBackend`], which reads sections lazily
//! with positioned I/O (`pread`) so a shared handle needs no seek mutex and unopened
//! sections are never paged in.

use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;

/// Random-access read source for a snapshot.
pub trait Backend {
    /// Total length in bytes.
    fn len(&self) -> u64;

    /// True when the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fill `buf` from `offset`; reading past the end is an error.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
}

/// In-memory backend over an owned byte buffer.
#[derive(Debug, Clone)]
pub struct MemBackend {
    bytes: Vec<u8>,
}

impl MemBackend {
    /// Wrap a byte buffer.
    pub fn new(bytes: Vec<u8>) -> MemBackend {
        MemBackend { bytes }
    }
}

impl Backend for MemBackend {
    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let start = usize::try_from(offset)
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "offset beyond buffer"))?;
        let end = start
            .checked_add(buf.len())
            .filter(|e| *e <= self.bytes.len());
        match end {
            Some(end) => {
                buf.copy_from_slice(&self.bytes[start..end]);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "read of {} bytes at offset {offset} past end ({} bytes total)",
                    buf.len(),
                    self.bytes.len()
                ),
            )),
        }
    }
}

/// File-backed backend using positioned reads.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    len: u64,
}

impl FileBackend {
    /// Open a file read-only.
    pub fn open(path: &Path) -> io::Result<FileBackend> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(FileBackend { file, len })
    }
}

impl Backend for FileBackend {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        // read_exact_at loops over short reads for us.
        self.file.read_exact_at(buf, offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_reads_in_bounds_and_rejects_overruns() {
        let b = MemBackend::new(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let mut buf = [0u8; 3];
        b.read_at(1, &mut buf).unwrap();
        assert_eq!(buf, [2, 3, 4]);
        assert!(b.read_at(3, &mut buf).is_err());
        assert!(b.read_at(u64::MAX, &mut buf).is_err());
    }

    #[test]
    fn file_backend_round_trips_through_a_temp_file() {
        let path =
            std::env::temp_dir().join(format!("qbe-store-backend-test-{}.bin", std::process::id()));
        std::fs::write(&path, [9u8, 8, 7, 6]).unwrap();
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.len(), 4);
        let mut buf = [0u8; 2];
        b.read_at(2, &mut buf).unwrap();
        assert_eq!(buf, [7, 6]);
        assert!(b.read_at(3, &mut buf).is_err());
        std::fs::remove_file(&path).ok();
    }
}
